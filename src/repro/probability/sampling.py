"""Monte-Carlo estimation of event probabilities.

The exact engine enumerates ``2^|support|`` sub-instances; when the
support is too large, :class:`MonteCarloSampler` draws random instances
from the dictionary (each fact independently with its probability) and
estimates probabilities, conditional probabilities and independence from
the sample.  All estimates carry a standard-error so callers can decide
how much to trust them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..exceptions import ProbabilityError
from ..relational.instance import Instance
from ..relational.tuples import Fact
from .dictionary import Dictionary
from .events import Event

__all__ = ["Estimate", "MonteCarloSampler"]


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate: point value, standard error and sample size."""

    value: float
    standard_error: float
    samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """A normal-approximation confidence interval (default 95%)."""
        return (
            max(0.0, self.value - z * self.standard_error),
            min(1.0, self.value + z * self.standard_error),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Estimate({self.value:.4f} ± {self.standard_error:.4f}, n={self.samples})"


class MonteCarloSampler:
    """Draws instances from a dictionary and estimates event probabilities."""

    def __init__(
        self,
        dictionary: Dictionary,
        seed: Optional[int] = 0,
        restrict_to: Optional[Iterable[Fact]] = None,
    ):
        self._dictionary = dictionary
        self._rng = random.Random(seed)
        self._facts: List[Fact] = (
            sorted(restrict_to) if restrict_to is not None else dictionary.tuple_space()
        )
        self._probabilities = [float(dictionary.probability_of(f)) for f in self._facts]

    @property
    def dictionary(self) -> Dictionary:
        """The dictionary being sampled."""
        return self._dictionary

    def sample_instance(self) -> Instance:
        """Draw one instance: each fact present independently with its probability."""
        present = [
            fact
            for fact, probability in zip(self._facts, self._probabilities)
            if self._rng.random() < probability
        ]
        return Instance(present)

    def sample_instances(self, count: int) -> List[Instance]:
        """Draw ``count`` independent instances."""
        return [self.sample_instance() for _ in range(count)]

    # -- estimates ---------------------------------------------------------------
    def estimate_probability(self, event: Event, samples: int = 10_000) -> Estimate:
        """Estimate ``P[event]`` from ``samples`` random instances."""
        if samples <= 0:
            raise ProbabilityError("sample count must be positive")
        hits = sum(1 for _ in range(samples) if event.occurs(self.sample_instance()))
        p = hits / samples
        stderr = math.sqrt(max(p * (1 - p), 1e-12) / samples)
        return Estimate(p, stderr, samples)

    def estimate_conditional(
        self, event: Event, given: Event, samples: int = 10_000
    ) -> Estimate:
        """Estimate ``P[event | given]`` by rejection sampling."""
        if samples <= 0:
            raise ProbabilityError("sample count must be positive")
        conditioning_hits = 0
        joint_hits = 0
        for _ in range(samples):
            instance = self.sample_instance()
            if given.occurs(instance):
                conditioning_hits += 1
                if event.occurs(instance):
                    joint_hits += 1
        if conditioning_hits == 0:
            raise ProbabilityError(
                "no sample satisfied the conditioning event; "
                "increase the sample count or use the exact engine"
            )
        p = joint_hits / conditioning_hits
        stderr = math.sqrt(max(p * (1 - p), 1e-12) / conditioning_hits)
        return Estimate(p, stderr, conditioning_hits)

    def appear_independent(
        self,
        left: Event,
        right: Event,
        samples: int = 10_000,
        tolerance_sigmas: float = 4.0,
    ) -> bool:
        """Heuristic independence check: is the empirical difference
        ``P[l∧r] − P[l]·P[r]`` within ``tolerance_sigmas`` standard errors?

        This is a screening tool, not a decision procedure — use
        :mod:`repro.core.security` for exact decisions.
        """
        if samples <= 0:
            raise ProbabilityError("sample count must be positive")
        left_hits = right_hits = joint_hits = 0
        for _ in range(samples):
            instance = self.sample_instance()
            l = left.occurs(instance)
            r = right.occurs(instance)
            left_hits += l
            right_hits += r
            joint_hits += l and r
        p_left = left_hits / samples
        p_right = right_hits / samples
        p_joint = joint_hits / samples
        difference = abs(p_joint - p_left * p_right)
        stderr = math.sqrt(max(p_joint * (1 - p_joint), 1e-12) / samples)
        return difference <= tolerance_sigmas * stderr
