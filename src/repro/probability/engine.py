"""Exact probability computations by enumeration of the instance space.

The engine computes probabilities of :class:`~repro.probability.events.Event`
objects exactly (with rational arithmetic) by enumerating the subsets of
the events' joint support — Eq. (2) of the paper.  It is deliberately
faithful to the paper's exponential definitions; the guard
``max_support_size`` protects against accidental blow-ups and callers can
fall back to :mod:`repro.probability.sampling` for larger spaces.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..cq.evaluation import evaluate
from ..cq.query import ConjunctiveQuery
from ..exceptions import IntractableAnalysisError, ProbabilityError
from ..relational.instance import Instance
from ..relational.tuples import Fact
from .dictionary import Dictionary
from .events import And, Event, QueryAnswerIs, query_support

__all__ = ["ExactEngine"]

#: Default bound on the number of facts whose subsets are enumerated.
DEFAULT_MAX_SUPPORT = 22


class ExactEngine:
    """Exact, enumeration-based probability engine over a dictionary."""

    def __init__(self, dictionary: Dictionary, max_support_size: int = DEFAULT_MAX_SUPPORT):
        self._dictionary = dictionary
        self._max_support_size = max_support_size

    @property
    def dictionary(self) -> Dictionary:
        """The dictionary (domain + tuple probabilities) in use."""
        return self._dictionary

    # -- support handling ------------------------------------------------------
    def _support_of(self, events: Sequence[Event]) -> List[Fact]:
        schema = self._dictionary.schema
        supports = [event.support(schema) for event in events]
        if any(s is None for s in supports):
            facts = self._dictionary.tuple_space()
        else:
            union: set[Fact] = set()
            for s in supports:
                union |= s  # type: ignore[arg-type]
            facts = sorted(union)
        if len(facts) > self._max_support_size:
            raise IntractableAnalysisError(
                f"event support has {len(facts)} facts; exact enumeration of "
                f"2^{len(facts)} sub-instances exceeds the configured bound "
                f"({self._max_support_size}); use MonteCarloSampler instead",
                size_estimate=2 ** len(facts),
            )
        return facts

    def _sub_instances(self, facts: Sequence[Fact]) -> Iterator[Instance]:
        for r in range(len(facts) + 1):
            for combo in itertools.combinations(facts, r):
                yield Instance(combo)

    # -- probabilities ----------------------------------------------------------
    def probability(self, event: Event) -> Fraction:
        """``P[event]`` computed exactly."""
        return self.joint_probability([event])

    def joint_probability(self, events: Sequence[Event]) -> Fraction:
        """``P[e1 ∧ e2 ∧ ...]`` computed exactly."""
        facts = self._support_of(list(events))
        total = Fraction(0)
        for instance in self._sub_instances(facts):
            if all(event.occurs(instance) for event in events):
                total += self._dictionary.instance_probability(instance, over_facts=facts)
        return total

    def conditional_probability(self, event: Event, given: Event) -> Fraction:
        """``P[event | given]``; raises when ``P[given] = 0``."""
        joint = self.joint_probability([event, given])
        marginal = self.probability(given)
        if marginal == 0:
            raise ProbabilityError(
                f"cannot condition on event with probability zero: {given.describe()}"
            )
        return joint / marginal

    def are_independent(self, left: Event, right: Event) -> bool:
        """Exact test of ``P[left ∧ right] = P[left]·P[right]``."""
        joint = self.joint_probability([left, right])
        return joint == self.probability(left) * self.probability(right)

    # -- query-answer distributions ---------------------------------------------
    def answer_distribution(
        self, query: ConjunctiveQuery
    ) -> Dict[FrozenSet[Tuple[object, ...]], Fraction]:
        """The full distribution of ``Q(I)``: answer set → probability (Eq. 2)."""
        schema = self._dictionary.schema
        facts = sorted(query_support(query, schema))
        if len(facts) > self._max_support_size:
            raise IntractableAnalysisError(
                f"query support has {len(facts)} facts; distribution enumeration "
                f"exceeds the configured bound ({self._max_support_size})",
                size_estimate=2 ** len(facts),
            )
        distribution: Dict[FrozenSet[Tuple[object, ...]], Fraction] = {}
        for instance in self._sub_instances(facts):
            answer = evaluate(query, instance)
            probability = self._dictionary.instance_probability(instance, over_facts=facts)
            distribution[answer] = distribution.get(answer, Fraction(0)) + probability
        return distribution

    def possible_answers(
        self, query: ConjunctiveQuery
    ) -> List[FrozenSet[Tuple[object, ...]]]:
        """All answers the query attains with non-zero structural possibility.

        "Structurally possible" means attained on *some* instance of the
        support's powerset, irrespective of the probabilities (matching
        the ∀s,v̄ quantification of Definition 4.1, which ranges over all
        possible answers).
        """
        schema = self._dictionary.schema
        facts = sorted(query_support(query, schema))
        if len(facts) > self._max_support_size:
            raise IntractableAnalysisError(
                f"query support has {len(facts)} facts; answer enumeration "
                f"exceeds the configured bound ({self._max_support_size})",
                size_estimate=2 ** len(facts),
            )
        seen: set[FrozenSet[Tuple[object, ...]]] = set()
        ordered: List[FrozenSet[Tuple[object, ...]]] = []
        for instance in self._sub_instances(facts):
            answer = evaluate(query, instance)
            if answer not in seen:
                seen.add(answer)
                ordered.append(answer)
        return ordered

    def joint_answer_distribution(
        self, queries: Sequence[ConjunctiveQuery]
    ) -> Dict[Tuple[FrozenSet[Tuple[object, ...]], ...], Fraction]:
        """Joint distribution of several queries' answers."""
        schema = self._dictionary.schema
        union: set[Fact] = set()
        for query in queries:
            union |= query_support(query, schema)
        facts = sorted(union)
        if len(facts) > self._max_support_size:
            raise IntractableAnalysisError(
                f"joint support has {len(facts)} facts; enumeration exceeds the "
                f"configured bound ({self._max_support_size})",
                size_estimate=2 ** len(facts),
            )
        distribution: Dict[Tuple[FrozenSet[Tuple[object, ...]], ...], Fraction] = {}
        for instance in self._sub_instances(facts):
            key = tuple(evaluate(query, instance) for query in queries)
            probability = self._dictionary.instance_probability(instance, over_facts=facts)
            distribution[key] = distribution.get(key, Fraction(0)) + probability
        return distribution
