"""Exact probability computations over the instance space.

The engine computes probabilities of :class:`~repro.probability.events.Event`
objects exactly (with rational arithmetic) over the subsets of the
events' joint support — Eq. (2) of the paper.  Since the kernel rewrite,
:class:`ExactEngine` is a thin façade over the compiled
:class:`~repro.probability.kernel.ProbabilityKernel` shared per
dictionary: queries are compiled once into bitset mask tables, subset
probabilities come from meet-in-the-middle mass tables, and disconnected
supports are factorized into independent components.  Results in the
default exact mode are equal, as :class:`~fractions.Fraction` values, to
the seed enumeration's.

:class:`NaiveExactEngine` preserves that seed enumeration — a fresh
backtracking evaluation and an ``n``-term probability product on each of
the ``2^n`` sub-instances — as the reference implementation for
cross-validation tests and the ``bench_exact_kernel`` ablation.
``max_support_size`` guards against accidental blow-ups in both; callers
can fall back to :mod:`repro.probability.sampling` for larger spaces.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..cq.evaluation import evaluate
from ..cq.query import ConjunctiveQuery
from ..exceptions import IntractableAnalysisError, ProbabilityError
from ..relational.instance import Instance
from ..relational.tuples import Fact
from .dictionary import Dictionary
from .events import Event, query_support
from .kernel import DEFAULT_MAX_SUPPORT, ProbabilityKernel

__all__ = ["ExactEngine", "NaiveExactEngine", "DEFAULT_MAX_SUPPORT", "SEED_MAX_SUPPORT"]

#: The seed engine's original support bound.  :class:`NaiveExactEngine`
#: keeps it: per-subset re-evaluation gets none of the compiled speedup,
#: so the raised kernel default would gut its blow-up guard.
SEED_MAX_SUPPORT = 22


class ExactEngine:
    """Exact probability engine over a dictionary (kernel-backed).

    Engines with the same dictionary object share one
    :class:`~repro.probability.kernel.ProbabilityKernel`, so compiled
    query tables and joint distributions are computed once per process
    regardless of how many engines are constructed.  ``exact=False``
    selects the kernel's fast float mode (probabilities become floats;
    compilation and structural results are unchanged).
    """

    def __init__(
        self,
        dictionary: Dictionary,
        max_support_size: Optional[int] = None,
        exact: bool = True,
    ):
        # The shared kernel holds its dictionary weakly; this strong
        # reference keeps it alive for as long as the engine is.
        self._dictionary = dictionary
        self._kernel = ProbabilityKernel.shared(dictionary, exact=exact)
        # None defers to the kernel defaults: DEFAULT_MAX_SUPPORT per
        # structural component, PREDICATE_MAX_SUPPORT per component that
        # needs the opaque-predicate fallback.  An explicit bound is
        # honoured verbatim, as the seed engine honoured its.
        self._max_support_size = max_support_size

    @property
    def dictionary(self) -> Dictionary:
        """The dictionary (domain + tuple probabilities) in use."""
        return self._dictionary

    @property
    def kernel(self) -> ProbabilityKernel:
        """The shared compiled kernel answering this engine's queries."""
        return self._kernel

    # -- probabilities ----------------------------------------------------------
    def probability(self, event: Event) -> Fraction:
        """``P[event]`` computed exactly."""
        return self._kernel.probability(event, max_support_size=self._max_support_size)

    def joint_probability(self, events: Sequence[Event]) -> Fraction:
        """``P[e1 ∧ e2 ∧ ...]`` computed exactly."""
        return self._kernel.joint_probability(
            events, max_support_size=self._max_support_size
        )

    def conditional_probability(self, event: Event, given: Event) -> Fraction:
        """``P[event | given]``; raises when ``P[given] = 0``."""
        return self._kernel.conditional_probability(
            event, given, max_support_size=self._max_support_size
        )

    def are_independent(self, left: Event, right: Event) -> bool:
        """Exact test of ``P[left ∧ right] = P[left]·P[right]``."""
        return self._kernel.are_independent(
            left, right, max_support_size=self._max_support_size
        )

    # -- query-answer distributions ---------------------------------------------
    def answer_distribution(
        self, query: ConjunctiveQuery
    ) -> Dict[FrozenSet[Tuple[object, ...]], Fraction]:
        """The full distribution of ``Q(I)``: answer set → probability (Eq. 2)."""
        return self._kernel.answer_distribution(
            query, max_support_size=self._max_support_size
        )

    def possible_answers(
        self, query: ConjunctiveQuery
    ) -> List[FrozenSet[Tuple[object, ...]]]:
        """All answers the query attains with non-zero structural possibility.

        "Structurally possible" means attained on *some* instance of the
        support's powerset, irrespective of the probabilities (matching
        the ∀s,v̄ quantification of Definition 4.1, which ranges over all
        possible answers).
        """
        return self._kernel.possible_answers(
            query, max_support_size=self._max_support_size
        )

    def joint_answer_distribution(
        self, queries: Sequence[ConjunctiveQuery]
    ) -> Dict[Tuple[FrozenSet[Tuple[object, ...]], ...], Fraction]:
        """Joint distribution of several queries' answers."""
        return self._kernel.joint_answer_distribution(
            queries, max_support_size=self._max_support_size
        )


class NaiveExactEngine:
    """The seed enumeration engine, kept as the cross-validation reference.

    Every question re-evaluates the queries on each of the ``2^n``
    sub-instances and recomputes the Eq. (1) product per subset.  It is
    deliberately faithful to the paper's exponential definitions; the
    compiled kernel must agree with it Fraction-for-Fraction, which is
    exactly what ``tests/test_exact_kernel.py`` and
    ``benchmarks/bench_exact_kernel.py`` check.
    """

    def __init__(self, dictionary: Dictionary, max_support_size: int = SEED_MAX_SUPPORT):
        self._dictionary = dictionary
        self._max_support_size = max_support_size

    @property
    def dictionary(self) -> Dictionary:
        """The dictionary (domain + tuple probabilities) in use."""
        return self._dictionary

    # -- support handling ------------------------------------------------------
    def _support_of(self, events: Sequence[Event]) -> List[Fact]:
        schema = self._dictionary.schema
        supports = [event.support(schema) for event in events]
        if any(s is None for s in supports):
            facts = self._dictionary.tuple_space()
        else:
            union: set[Fact] = set()
            for s in supports:
                union |= s  # type: ignore[arg-type]
            # key=repr: analysis domains may mix numeric and string
            # constants, which Python refuses to order directly.
            facts = sorted(union, key=repr)
        if len(facts) > self._max_support_size:
            raise IntractableAnalysisError(
                f"event support has {len(facts)} facts; exact enumeration of "
                f"2^{len(facts)} sub-instances exceeds the configured bound "
                f"({self._max_support_size}); use MonteCarloSampler instead",
                size_estimate=2 ** len(facts),
            )
        return facts

    def _sub_instances(self, facts: Sequence[Fact]) -> Iterator[Instance]:
        for r in range(len(facts) + 1):
            for combo in itertools.combinations(facts, r):
                yield Instance(combo)

    # -- probabilities ----------------------------------------------------------
    def probability(self, event: Event) -> Fraction:
        """``P[event]`` computed exactly."""
        return self.joint_probability([event])

    def joint_probability(self, events: Sequence[Event]) -> Fraction:
        """``P[e1 ∧ e2 ∧ ...]`` computed exactly."""
        facts = self._support_of(list(events))
        total = Fraction(0)
        for instance in self._sub_instances(facts):
            if all(event.occurs(instance) for event in events):
                total += self._dictionary.instance_probability(instance, over_facts=facts)
        return total

    def conditional_probability(self, event: Event, given: Event) -> Fraction:
        """``P[event | given]``; raises when ``P[given] = 0``."""
        joint = self.joint_probability([event, given])
        marginal = self.probability(given)
        if marginal == 0:
            raise ProbabilityError(
                f"cannot condition on event with probability zero: {given.describe()}"
            )
        return joint / marginal

    def are_independent(self, left: Event, right: Event) -> bool:
        """Exact test of ``P[left ∧ right] = P[left]·P[right]``."""
        joint = self.joint_probability([left, right])
        return joint == self.probability(left) * self.probability(right)

    # -- query-answer distributions ---------------------------------------------
    def answer_distribution(
        self, query: ConjunctiveQuery
    ) -> Dict[FrozenSet[Tuple[object, ...]], Fraction]:
        """The full distribution of ``Q(I)``: answer set → probability (Eq. 2)."""
        schema = self._dictionary.schema
        facts = sorted(query_support(query, schema), key=repr)
        if len(facts) > self._max_support_size:
            raise IntractableAnalysisError(
                f"query support has {len(facts)} facts; distribution enumeration "
                f"exceeds the configured bound ({self._max_support_size})",
                size_estimate=2 ** len(facts),
            )
        distribution: Dict[FrozenSet[Tuple[object, ...]], Fraction] = {}
        for instance in self._sub_instances(facts):
            answer = evaluate(query, instance)
            probability = self._dictionary.instance_probability(instance, over_facts=facts)
            distribution[answer] = distribution.get(answer, Fraction(0)) + probability
        return distribution

    def possible_answers(
        self, query: ConjunctiveQuery
    ) -> List[FrozenSet[Tuple[object, ...]]]:
        """All answers the query attains with non-zero structural possibility."""
        schema = self._dictionary.schema
        facts = sorted(query_support(query, schema), key=repr)
        if len(facts) > self._max_support_size:
            raise IntractableAnalysisError(
                f"query support has {len(facts)} facts; answer enumeration "
                f"exceeds the configured bound ({self._max_support_size})",
                size_estimate=2 ** len(facts),
            )
        seen: set[FrozenSet[Tuple[object, ...]]] = set()
        ordered: List[FrozenSet[Tuple[object, ...]]] = []
        for instance in self._sub_instances(facts):
            answer = evaluate(query, instance)
            if answer not in seen:
                seen.add(answer)
                ordered.append(answer)
        return ordered

    def joint_answer_distribution(
        self, queries: Sequence[ConjunctiveQuery]
    ) -> Dict[Tuple[FrozenSet[Tuple[object, ...]], ...], Fraction]:
        """Joint distribution of several queries' answers."""
        schema = self._dictionary.schema
        union: set[Fact] = set()
        for query in queries:
            union |= query_support(query, schema)
        facts = sorted(union, key=repr)
        if len(facts) > self._max_support_size:
            raise IntractableAnalysisError(
                f"joint support has {len(facts)} facts; enumeration exceeds the "
                f"configured bound ({self._max_support_size})",
                size_estimate=2 ** len(facts),
            )
        distribution: Dict[Tuple[FrozenSet[Tuple[object, ...]], ...], Fraction] = {}
        for instance in self._sub_instances(facts):
            key = tuple(evaluate(query, instance) for query in queries)
            probability = self._dictionary.instance_probability(instance, over_facts=facts)
            distribution[key] = distribution.get(key, Fraction(0)) + probability
        return distribution
