"""Dictionaries: tuple-independent probability distributions over instances.

A *dictionary* (Section 3.2) is a pair ``(D, P)`` of a finite domain and
a probability ``P(t) ∈ [0, 1]`` for every tuple ``t ∈ tup(D)``; tuples
are independent events, so the probability of an instance ``I`` is

    P[I] = Π_{t ∈ I} P(t) · Π_{t ∉ I} (1 − P(t))          (Eq. 1)

:class:`Dictionary` stores the schema, domain and per-tuple
probabilities and provides the instance probability of Eq. (1).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from ..exceptions import ProbabilityError
from ..relational.domain import Domain
from ..relational.instance import Instance
from ..relational.schema import Schema
from ..relational.tuples import Fact, tuple_space

__all__ = ["Dictionary", "Probability"]

#: Probabilities may be exact fractions or floats.
Probability = Union[Fraction, float, int]


def _as_fraction(value: Probability) -> Fraction:
    if isinstance(value, Fraction):
        result = value
    elif isinstance(value, int):
        result = Fraction(value)
    elif isinstance(value, float):
        result = Fraction(value).limit_denominator(10**9)
    else:
        raise ProbabilityError(f"invalid probability value {value!r}")
    if result < 0 or result > 1:
        raise ProbabilityError(f"probability {value!r} is outside [0, 1]")
    return result


class Dictionary:
    """A tuple-independent distribution over database instances.

    Parameters
    ----------
    schema:
        The database schema (defines ``tup(D)`` together with ``domain``).
    probabilities:
        Mapping from :class:`Fact` to its occurrence probability.  Facts
        of the tuple space that are missing from the mapping receive
        ``default``.
    default:
        Probability of facts not listed explicitly (default ``0``; a
        dictionary with default 0 simply never generates those facts).
    domain:
        Optional override of the schema's global domain.
    """

    def __init__(
        self,
        schema: Schema,
        probabilities: Optional[Mapping[Fact, Probability]] = None,
        default: Probability = 0,
        domain: Optional[Domain] = None,
    ):
        self._schema = schema
        self._domain = domain or schema.domain
        self._default = _as_fraction(default)
        self._probabilities: Dict[Fact, Fraction] = {}
        for fact, probability in (probabilities or {}).items():
            self._probabilities[fact] = _as_fraction(probability)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        schema: Schema,
        probability: Probability,
        domain: Optional[Domain] = None,
    ) -> "Dictionary":
        """Every tuple of ``tup(D)`` occurs with the same probability."""
        return cls(schema, {}, default=probability, domain=domain)

    @classmethod
    def with_expected_size(
        cls,
        schema: Schema,
        expected_size: Probability,
        domain: Optional[Domain] = None,
    ) -> "Dictionary":
        """Uniform dictionary whose expected instance size is ``expected_size``.

        This is the distribution used by the paper's hospital example
        (``P(t) = 200/n``) and by the practical-security model of
        Section 6.2 (expected size held constant as the domain grows).
        """
        from ..relational.tuples import tuple_space_size

        n = tuple_space_size(schema, domain)
        if n == 0:
            raise ProbabilityError("empty tuple space")
        if isinstance(expected_size, float):
            size = Fraction(expected_size).limit_denominator(10**9)
        else:
            size = Fraction(expected_size)
        if size < 0:
            raise ProbabilityError("expected size must be non-negative")
        probability = size / n
        if probability > 1:
            raise ProbabilityError(
                f"expected size {expected_size} exceeds the tuple space size {n}"
            )
        return cls.uniform(schema, probability, domain=domain)

    # -- access ---------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The schema over which the dictionary is defined."""
        return self._schema

    @property
    def domain(self) -> Domain:
        """The finite domain ``D``."""
        return self._domain

    @property
    def default(self) -> Fraction:
        """Probability assigned to facts without an explicit entry."""
        return self._default

    @property
    def explicit_probabilities(self) -> Dict[Fact, Fraction]:
        """A copy of the per-fact probability overrides."""
        return dict(self._probabilities)

    @property
    def is_uniform(self) -> bool:
        """True when every tuple has the default probability.

        Uniform dictionaries are the ones the JSON document format can
        express (``tuple_probability`` / ``expected_size``), so this is
        the serialisability predicate of :func:`repro.io.dictionary_to_dict`.
        """
        return all(
            probability == self._default
            for probability in self._probabilities.values()
        )

    def probability_of(self, fact: Fact) -> Fraction:
        """``P(t)`` for one fact."""
        return self._probabilities.get(fact, self._default)

    def tuple_space(self) -> list[Fact]:
        """The tuple space ``tup(D)`` of the dictionary (deterministic order)."""
        return tuple_space(self._schema, self._domain)

    def expected_instance_size(self) -> Fraction:
        """Expected number of facts in a random instance."""
        return sum((self.probability_of(t) for t in self.tuple_space()), Fraction(0))

    def is_non_trivial(self) -> bool:
        """True when no tuple has probability exactly 0 or 1.

        Theorem 4.8 requires a distribution with ``P(t) ∉ {0, 1}`` for
        all tuples; this predicate checks that requirement.
        """
        return all(0 < self.probability_of(t) < 1 for t in self.tuple_space())

    # -- derived dictionaries --------------------------------------------------
    def with_probability(self, fact: Fact, probability: Probability) -> "Dictionary":
        """A copy of this dictionary with one tuple probability overridden."""
        updated = dict(self._probabilities)
        updated[fact] = _as_fraction(probability)
        return Dictionary(self._schema, updated, default=self._default, domain=self._domain)

    def with_domain(self, domain: Domain) -> "Dictionary":
        """A copy of this dictionary over a different domain."""
        return Dictionary(
            self._schema, self._probabilities, default=self._default, domain=domain
        )

    # -- instance probability (Eq. 1) ------------------------------------------
    def instance_probability(
        self, instance: Instance, over_facts: Optional[Sequence[Fact]] = None
    ) -> Fraction:
        """``P[I]`` per Eq. (1), optionally restricted to a sub-space of facts.

        When ``over_facts`` is given, the product ranges only over those
        facts; this computes the *marginal* probability of the instance's
        intersection with that sub-space, which is what the enumeration
        engine uses when an event only depends on a subset of the tuple
        space (the remaining factor sums to 1 by independence).
        """
        facts = list(over_facts) if over_facts is not None else self.tuple_space()
        probability = Fraction(1)
        for fact in facts:
            p = self.probability_of(fact)
            probability *= p if fact in instance else (1 - p)
            if probability == 0:
                return Fraction(0)
        return probability

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dictionary(schema={self._schema!r}, default={self._default}, "
            f"explicit={len(self._probabilities)})"
        )
