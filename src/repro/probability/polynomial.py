"""Multilinear query polynomials ``f_Q`` (Section 4.3 of the paper).

For a boolean query ``Q`` over a tuple space ``{t1, ..., tn}``, the
probability that ``Q`` is true is a polynomial ``f_Q(x1, ..., xn)`` in
the tuple probabilities ``xi = P(ti)``.  The proofs of Theorems 4.5 and
4.8 rest on elementary properties of these polynomials
(Proposition 4.13):

1. every variable has degree ≤ 1 (the polynomial is multilinear),
2. ``xi`` has degree 1 **iff** ``ti ∈ crit(Q)``,
3. if ``crit(Q1) ∩ crit(Q2) = ∅`` then ``f_{Q1∧Q2} = f_{Q1}·f_{Q2}``,
4. monotone queries have non-negative coefficients for each variable
   once the others are fixed in ``[0,1]``,
5. Shannon expansion: ``f_{Q[tn=false]} = f_Q[xn=0]`` and
   ``f_{Q[tn=true]} = f_Q[xn=1]``.

:class:`MultilinearPolynomial` represents such polynomials exactly (with
:class:`~fractions.Fraction` coefficients) in the monomial basis indexed
by sets of facts, and :func:`query_polynomial` builds ``f_Q`` from a
boolean query by a subset Möbius transform of its truth table.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cq.query import ConjunctiveQuery
from ..exceptions import IntractableAnalysisError, ProbabilityError
from ..relational.tuples import Fact

__all__ = ["MultilinearPolynomial", "query_polynomial", "truth_table"]

Monomial = FrozenSet[Fact]

#: Guard on the number of facts for exact polynomial construction.
DEFAULT_MAX_FACTS = 18


class MultilinearPolynomial:
    """A multilinear polynomial over variables indexed by facts.

    The polynomial is stored as a mapping ``monomial → coefficient``
    where a monomial is a frozenset of facts (the product of their
    variables) and coefficients are exact fractions.  The zero polynomial
    has an empty mapping.
    """

    def __init__(self, coefficients: Optional[Mapping[Monomial, Fraction]] = None):
        self._coefficients: Dict[Monomial, Fraction] = {}
        for monomial, coefficient in (coefficients or {}).items():
            coefficient = Fraction(coefficient)
            if coefficient != 0:
                self._coefficients[frozenset(monomial)] = coefficient

    # -- constructors -----------------------------------------------------------
    @classmethod
    def zero(cls) -> "MultilinearPolynomial":
        """The zero polynomial."""
        return cls()

    @classmethod
    def constant(cls, value: Fraction | int) -> "MultilinearPolynomial":
        """A constant polynomial."""
        return cls({frozenset(): Fraction(value)})

    @classmethod
    def variable(cls, fact: Fact) -> "MultilinearPolynomial":
        """The polynomial ``x_t`` for one fact."""
        return cls({frozenset({fact}): Fraction(1)})

    # -- inspection --------------------------------------------------------------
    @property
    def coefficients(self) -> Dict[Monomial, Fraction]:
        """A copy of the monomial → coefficient mapping."""
        return dict(self._coefficients)

    def coefficient(self, monomial: Iterable[Fact]) -> Fraction:
        """Coefficient of one monomial (0 when absent)."""
        return self._coefficients.get(frozenset(monomial), Fraction(0))

    @property
    def variables(self) -> FrozenSet[Fact]:
        """Facts whose variable occurs in some monomial with non-zero coefficient."""
        result: set[Fact] = set()
        for monomial in self._coefficients:
            result |= monomial
        return frozenset(result)

    def degree_in(self, fact: Fact) -> int:
        """Degree of the polynomial in the variable of ``fact`` (0 or 1)."""
        return 1 if any(fact in monomial for monomial in self._coefficients) else 0

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self._coefficients

    # -- algebra ------------------------------------------------------------------
    def __add__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        result = dict(self._coefficients)
        for monomial, coefficient in other._coefficients.items():
            result[monomial] = result.get(monomial, Fraction(0)) + coefficient
        return MultilinearPolynomial(result)

    def __sub__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        return self + other.__neg__()

    def __neg__(self) -> "MultilinearPolynomial":
        return MultilinearPolynomial(
            {m: -c for m, c in self._coefficients.items()}
        )

    def __mul__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        """Product of two polynomials.

        The product of two multilinear polynomials is multilinear only
        when they share no variables; in general squared variables are
        *not* reduced (``x·x`` stays degree 2 conceptually), but since we
        store monomials as sets, a shared variable would silently be
        idempotent.  To avoid silent mistakes we raise when the operands
        share variables — which is exactly the situation Proposition
        4.13(3) excludes.
        """
        shared = self.variables & other.variables
        if shared:
            raise ProbabilityError(
                "refusing to multiply polynomials sharing variables "
                f"({len(shared)} shared facts); multilinearity would be violated"
            )
        result: Dict[Monomial, Fraction] = {}
        for m1, c1 in self._coefficients.items():
            for m2, c2 in other._coefficients.items():
                monomial = m1 | m2
                result[monomial] = result.get(monomial, Fraction(0)) + c1 * c2
        return MultilinearPolynomial(result)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MultilinearPolynomial):
            return self._coefficients == other._coefficients
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._coefficients.items()))

    # -- evaluation and specialisation ---------------------------------------------
    def evaluate(self, assignment: Mapping[Fact, Fraction | float | int]) -> Fraction:
        """Evaluate the polynomial at the given tuple probabilities."""
        total = Fraction(0)
        for monomial, coefficient in self._coefficients.items():
            term = coefficient
            for fact in monomial:
                if fact not in assignment:
                    raise ProbabilityError(f"no value supplied for variable {fact!r}")
                term *= Fraction(assignment[fact])
            total += term
        return total

    def substitute(self, fact: Fact, value: Fraction | int) -> "MultilinearPolynomial":
        """Set one variable to a constant (Shannon expansion helper)."""
        value = Fraction(value)
        result: Dict[Monomial, Fraction] = {}
        for monomial, coefficient in self._coefficients.items():
            if fact in monomial:
                reduced = frozenset(monomial - {fact})
                result[reduced] = result.get(reduced, Fraction(0)) + coefficient * value
            else:
                result[monomial] = result.get(monomial, Fraction(0)) + coefficient
        return MultilinearPolynomial(result)

    def restricted_coefficient_of(self, fact: Fact) -> "MultilinearPolynomial":
        """The polynomial ``∂f/∂x_t``: the coefficient of ``x_t`` as a polynomial
        in the remaining variables (used to check Proposition 4.13(4))."""
        result: Dict[Monomial, Fraction] = {}
        for monomial, coefficient in self._coefficients.items():
            if fact in monomial:
                reduced = frozenset(monomial - {fact})
                result[reduced] = result.get(reduced, Fraction(0)) + coefficient
        return MultilinearPolynomial(result)

    # -- rendering -------------------------------------------------------------------
    def pretty(self, names: Optional[Mapping[Fact, str]] = None) -> str:
        """Render the polynomial with short variable names (``x1``, ``x2``, ...)."""
        if names is None:
            ordered = sorted(self.variables)
            names = {fact: f"x{i + 1}" for i, fact in enumerate(ordered)}
        terms: List[str] = []
        for monomial in sorted(self._coefficients, key=lambda m: (len(m), sorted(map(repr, m)))):
            coefficient = self._coefficients[monomial]
            factors = [names[f] for f in sorted(monomial)]
            if not factors:
                terms.append(str(coefficient))
            elif coefficient == 1:
                terms.append("*".join(factors))
            elif coefficient == -1:
                terms.append("-" + "*".join(factors))
            else:
                terms.append(f"{coefficient}*" + "*".join(factors))
        if not terms:
            return "0"
        rendered = " + ".join(terms)
        return rendered.replace("+ -", "- ")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultilinearPolynomial({self.pretty()})"


def truth_table(
    query: ConjunctiveQuery, facts: Sequence[Fact]
) -> List[bool]:
    """Truth value of the boolean query on every subset of ``facts``.

    Entry ``i`` corresponds to the subset whose bitmask is ``i`` with
    bit ``j`` meaning ``facts[j]`` is present.  Computed through the
    compiled kernel: one satisfying-assignment enumeration on the full
    support plus a subset zeta transform, instead of ``2^n`` backtracking
    evaluations.
    """
    from .compiled_event import query_truth_bits

    n = len(facts)
    size = 1 << n
    bits = query_truth_bits(query, list(facts))
    # Unpack via one to_bytes pass: per-mask `bits >> mask & 1` would
    # re-copy the whole 2^n-bit integer for every mask (Θ(4^n) traffic).
    data = bits.to_bytes((size + 7) >> 3, "little")
    table: List[bool] = []
    for byte in data:
        for bit in range(8):
            table.append(bool(byte >> bit & 1))
    del table[size:]
    return table


def query_polynomial(
    query: ConjunctiveQuery,
    facts: Sequence[Fact],
    max_facts: int = DEFAULT_MAX_FACTS,
) -> MultilinearPolynomial:
    """Build ``f_Q`` over the given facts by a subset Möbius transform.

    The multilinear extension of a boolean function ``Q`` over subsets of
    ``facts`` has monomial coefficients

        c_T = Σ_{I ⊆ T} (−1)^{|T| − |I|} [Q(I)]

    which are computed for all ``T`` simultaneously with an in-place
    Möbius transform of the truth table in ``O(n·2^n)`` time.
    """
    facts = list(facts)
    n = len(facts)
    if n > max_facts:
        raise IntractableAnalysisError(
            f"polynomial construction over {n} facts requires 2^{n} evaluations; "
            f"exceeds the configured bound ({max_facts})",
            size_estimate=2**n,
        )
    values = [Fraction(1) if truth else Fraction(0) for truth in truth_table(query, facts)]
    # Subset Möbius transform: after processing bit j, values[mask] holds
    # Σ_{I ⊆ mask, agreeing outside bit j's processed prefix} (−1)^{...} Q(I).
    for j in range(n):
        bit = 1 << j
        for mask in range(1 << n):
            if mask & bit:
                values[mask] = values[mask] - values[mask ^ bit]
    coefficients: Dict[Monomial, Fraction] = {}
    for mask in range(1 << n):
        if values[mask] != 0:
            monomial = frozenset(facts[j] for j in range(n) if mask >> j & 1)
            coefficients[monomial] = values[mask]
    return MultilinearPolynomial(coefficients)
