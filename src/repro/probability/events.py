"""Events over random database instances.

An :class:`Event` is a boolean predicate on instances together with a
*support*: a set of facts such that the event's truth value only depends
on which of those facts are present.  Declaring the support lets the
exact engine enumerate only ``2^|support|`` sub-instances instead of the
full ``inst(D)``; events whose support is unknown fall back to the whole
tuple space.

The events needed by the paper are provided:

* ``S(I) = s``                      — :class:`QueryAnswerIs` (Definition 4.1)
* ``s ⊆ S(I)``                      — :class:`QueryContains` (monotone, Section 6.1)
* boolean query truth               — :class:`QueryTrue`
* presence / absence of one fact    — :class:`FactPresent` / :class:`FactAbsent`
* boolean combinations              — :class:`And`, :class:`Or`, :class:`Not`
* arbitrary predicates              — :class:`PredicateEvent` (prior knowledge ``K``)
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..cq.evaluation import evaluate, evaluate_boolean
from ..cq.query import ConjunctiveQuery
from ..relational.instance import Instance
from ..relational.schema import Schema
from ..relational.tuples import Fact, facts_of_relation

__all__ = [
    "Event",
    "QueryAnswerIs",
    "QueryContains",
    "QueryTrue",
    "FactPresent",
    "FactAbsent",
    "And",
    "Or",
    "Not",
    "PredicateEvent",
    "views_answer_event",
    "query_support",
]


def query_support(query: ConjunctiveQuery, schema: Schema) -> FrozenSet[Fact]:
    """All facts that could possibly influence the query's answer.

    The answer of a conjunctive query only depends on the facts of the
    relations it mentions, so the support is the union of those
    relations' slices of the tuple space.
    """
    facts: set[Fact] = set()
    for name in query.relation_names:
        relation = schema.relation(name)
        facts.update(facts_of_relation(relation, schema.domain))
    return frozenset(facts)


class Event:
    """Base class for events: a predicate on instances plus a support."""

    def occurs(self, instance: Instance) -> bool:
        """Whether the event holds on the given instance."""
        raise NotImplementedError

    def support(self, schema: Schema) -> Optional[FrozenSet[Fact]]:
        """Facts the event depends on, or ``None`` when unknown (whole space)."""
        return None

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return repr(self)

    # -- boolean algebra -------------------------------------------------------
    def __and__(self, other: "Event") -> "Event":
        return And((self, other))

    def __or__(self, other: "Event") -> "Event":
        return Or((self, other))

    def __invert__(self) -> "Event":
        return Not(self)


class QueryAnswerIs(Event):
    """The event ``Q(I) = answer`` for a specific answer set."""

    def __init__(self, query: ConjunctiveQuery, answer: Iterable[Tuple[object, ...]]):
        self.query = query
        self.answer = frozenset(tuple(row) for row in answer)

    def occurs(self, instance: Instance) -> bool:
        return evaluate(self.query, instance) == self.answer

    def support(self, schema: Schema) -> FrozenSet[Fact]:
        return query_support(self.query, schema)

    def describe(self) -> str:
        rows = sorted(self.answer, key=repr)
        return f"{self.query.name}(I) = {{{', '.join(map(repr, rows))}}}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryAnswerIs({self.query.name}, {sorted(self.answer, key=repr)})"


class QueryContains(Event):
    """The monotone event ``rows ⊆ Q(I)`` (Section 6.1's atomic statements)."""

    def __init__(self, query: ConjunctiveQuery, rows: Iterable[Tuple[object, ...]]):
        self.query = query
        self.rows = frozenset(tuple(row) for row in rows)

    def occurs(self, instance: Instance) -> bool:
        return self.rows <= evaluate(self.query, instance)

    def support(self, schema: Schema) -> FrozenSet[Fact]:
        return query_support(self.query, schema)

    def describe(self) -> str:
        rows = sorted(self.rows, key=repr)
        return f"{{{', '.join(map(repr, rows))}}} ⊆ {self.query.name}(I)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryContains({self.query.name}, {sorted(self.rows, key=repr)})"


class QueryTrue(Event):
    """The event 'the (boolean) query is true on the instance'."""

    def __init__(self, query: ConjunctiveQuery):
        self.query = query

    def occurs(self, instance: Instance) -> bool:
        return evaluate_boolean(self.query, instance)

    def support(self, schema: Schema) -> FrozenSet[Fact]:
        return query_support(self.query, schema)

    def describe(self) -> str:
        return f"{self.query.name}(I) is true"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryTrue({self.query.name})"


class FactPresent(Event):
    """The event ``t ∈ I`` for one fact."""

    def __init__(self, fact: Fact):
        self.fact = fact

    def occurs(self, instance: Instance) -> bool:
        return self.fact in instance

    def support(self, schema: Schema) -> FrozenSet[Fact]:
        return frozenset({self.fact})

    def describe(self) -> str:
        return f"{self.fact!r} ∈ I"


class FactAbsent(Event):
    """The event ``t ∉ I`` for one fact."""

    def __init__(self, fact: Fact):
        self.fact = fact

    def occurs(self, instance: Instance) -> bool:
        return self.fact not in instance

    def support(self, schema: Schema) -> FrozenSet[Fact]:
        return frozenset({self.fact})

    def describe(self) -> str:
        return f"{self.fact!r} ∉ I"


class And(Event):
    """Conjunction of several events."""

    def __init__(self, events: Sequence[Event]):
        self.events = tuple(events)

    def occurs(self, instance: Instance) -> bool:
        return all(event.occurs(instance) for event in self.events)

    def support(self, schema: Schema) -> Optional[FrozenSet[Fact]]:
        return _union_support(self.events, schema)

    def describe(self) -> str:
        return " ∧ ".join(f"({e.describe()})" for e in self.events)


class Or(Event):
    """Disjunction of several events."""

    def __init__(self, events: Sequence[Event]):
        self.events = tuple(events)

    def occurs(self, instance: Instance) -> bool:
        return any(event.occurs(instance) for event in self.events)

    def support(self, schema: Schema) -> Optional[FrozenSet[Fact]]:
        return _union_support(self.events, schema)

    def describe(self) -> str:
        return " ∨ ".join(f"({e.describe()})" for e in self.events)


class Not(Event):
    """Negation of an event."""

    def __init__(self, event: Event):
        self.event = event

    def occurs(self, instance: Instance) -> bool:
        return not self.event.occurs(instance)

    def support(self, schema: Schema) -> Optional[FrozenSet[Fact]]:
        return self.event.support(schema)

    def describe(self) -> str:
        return f"¬({self.event.describe()})"


class PredicateEvent(Event):
    """An event defined by an arbitrary predicate on instances.

    Used for prior knowledge ``K`` that is not expressible as a
    conjunctive query (key constraints, cardinality constraints, ...).
    A support may be supplied when known; otherwise the engine
    enumerates the full tuple space.
    """

    def __init__(
        self,
        predicate: Callable[[Instance], bool],
        description: str = "K",
        support: Optional[Iterable[Fact]] = None,
    ):
        self._predicate = predicate
        self._description = description
        self._support = frozenset(support) if support is not None else None

    def occurs(self, instance: Instance) -> bool:
        return self._predicate(instance)

    def support(self, schema: Schema) -> Optional[FrozenSet[Fact]]:
        return self._support

    def describe(self) -> str:
        return self._description


def _union_support(events: Sequence[Event], schema: Schema) -> Optional[FrozenSet[Fact]]:
    supports = [event.support(schema) for event in events]
    if any(s is None for s in supports):
        return None
    result: set[Fact] = set()
    for s in supports:
        result |= s  # type: ignore[arg-type]
    return frozenset(result)


def views_answer_event(
    views: Sequence[ConjunctiveQuery],
    answers: Sequence[Iterable[Tuple[object, ...]]],
) -> Event:
    """The event ``V̄(I) = v̄``: every view attains its designated answer."""
    if len(views) != len(answers):
        raise ValueError("views and answers must have the same length")
    return And(tuple(QueryAnswerIs(v, a) for v, a in zip(views, answers)))
