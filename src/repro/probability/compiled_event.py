"""Bitset compilation of queries and events over a fixed support.

The exact engine answers questions of the form "what does ``Q`` (or an
event) do on *every* subset of a support ``{t_0, ..., t_{n-1}}``".  The
seed implementation re-ran a backtracking homomorphism search on each of
the ``2^n`` sub-instances; this module compiles the question **once**
against the full support and derives all ``2^n`` answers with bit
operations, in the lineage / knowledge-compilation style of
probabilistic-database engines:

1. Sub-instances are identified with *masks*: bit ``j`` of ``m`` means
   ``facts[j]`` is present.  A boolean property of sub-instances is a
   *mask table* — a single Python ``int`` with ``2^n`` bits whose bit
   ``m`` is the property's value on mask ``m``.  Big-int ``&``/``|``/
   ``^`` then evaluate the property on all sub-instances at once.
2. Each satisfying assignment of ``Q`` on the **full** support grounds
   the body into a *witness mask* ``w`` and produces one answer row
   ``a``; the row is in ``Q``'s answer on mask ``m`` iff ``w ⊆ m`` for
   some witness of ``a``.  The set ``{m : ∃w ⊆ m}`` is the superset
   closure of the witness masks, computed for all masks simultaneously
   by a subset zeta (sum-over-subsets) transform in ``O(n·2^n)`` bit
   operations — instead of ``2^n`` independent backtracking searches.
3. Composite events (:class:`~repro.probability.events.And`, ``Or``,
   ``Not``, answer/containment tests) reduce to bit algebra over the
   per-row tables; only opaque :class:`PredicateEvent` predicates fall
   back to a per-mask evaluation loop.

The functions here are purely combinatorial (no probabilities); the
:mod:`~repro.probability.kernel` layers mass computation, component
factorization and caching on top.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from ..cq.evaluation import answer_tuple, satisfying_assignments
from ..cq.query import ConjunctiveQuery
from ..exceptions import ProbabilityError
from ..relational.instance import Instance
from ..relational.tuples import Fact
from .events import (
    And,
    Event,
    FactAbsent,
    FactPresent,
    Not,
    Or,
    QueryAnswerIs,
    QueryContains,
    QueryTrue,
)

__all__ = [
    "CompiledQueryTable",
    "compile_query_table",
    "query_truth_bits",
    "compile_event_bits",
    "has_opaque_predicate",
    "subset_zeta",
    "bit_clear_pattern",
    "universe_mask",
]

#: Cache of the periodic "bit j of the mask is clear" patterns, keyed by
#: ``(n, j)``.  These are pure functions of the support size, shared by
#: every compilation in the process.  Only supports up to
#: ``_PATTERN_CACHE_MAX_N`` are cached (a few MB in total); larger
#: patterns are rebuilt per call — construction is ``O(n)`` big-int ops,
#: negligible next to the zeta transform that consumes them — so the
#: cache cannot pin hundreds of MB for the process lifetime.
_CLEAR_PATTERNS: Dict[Tuple[int, int], int] = {}
_PATTERN_CACHE_MAX_N = 20


def universe_mask(n: int) -> int:
    """The all-ones mask table over ``2^n`` sub-instances."""
    return (1 << (1 << n)) - 1


def bit_clear_pattern(n: int, j: int) -> int:
    """Mask table of the property "bit ``j`` of the mask is clear".

    Viewed over the ``2^n`` mask positions this is the periodic pattern
    ``2^j`` ones / ``2^j`` zeros, built by doubling (``O(n)`` big-int
    ops) and cached process-wide for small supports.
    """
    key = (n, j)
    cached = _CLEAR_PATTERNS.get(key)
    if cached is None:
        size = 1 << n
        pattern = (1 << (1 << j)) - 1
        width = 1 << (j + 1)
        while width < size:
            pattern |= pattern << width
            width <<= 1
        if n <= _PATTERN_CACHE_MAX_N:
            _CLEAR_PATTERNS[key] = pattern
        cached = pattern
    return cached


def subset_zeta(bits: int, n: int) -> int:
    """Superset closure: output bit ``m`` = OR of input bits over ``w ⊆ m``.

    The classic sum-over-subsets transform, vectorised over all masks:
    processing bit ``j`` ORs every position with bit ``j`` clear into its
    bit-``j``-set sibling via one shift.  ``O(n)`` big-int operations on
    ``2^n``-bit integers.
    """
    for j in range(n):
        bits |= (bits & bit_clear_pattern(n, j)) << (1 << j)
    return bits


# ---------------------------------------------------------------------------
# Query compilation
# ---------------------------------------------------------------------------
class CompiledQueryTable:
    """A query compiled against one ordered support.

    Attributes
    ----------
    facts:
        The ordered support; bit ``j`` of a mask means ``facts[j]``.
    answers:
        Every answer row the query attains on *some* sub-instance (i.e.
        its answer on the full support), in deterministic order.
    row_tables:
        Per answer row ``a``, the mask table of ``a ∈ Q(m)``.
    true_bits:
        Mask table of ``Q(m) ≠ ∅`` (boolean truth for arity-0 queries).
    """

    __slots__ = ("facts", "answers", "row_tables", "true_bits")

    def __init__(
        self,
        facts: Tuple[Fact, ...],
        answers: Tuple[Tuple[object, ...], ...],
        row_tables: Dict[Tuple[object, ...], int],
        true_bits: int,
    ):
        self.facts = facts
        self.answers = answers
        self.row_tables = row_tables
        self.true_bits = true_bits

    def answer_is_bits(self, answer: Sequence[Tuple[object, ...]]) -> int:
        """Mask table of the event ``Q(m) = answer`` (Definition 4.1 events)."""
        n = len(self.facts)
        wanted = frozenset(tuple(row) for row in answer)
        if not wanted <= frozenset(self.answers):
            return 0  # contains a row the query can never produce
        universe = universe_mask(n)
        bits = universe
        for row in self.answers:
            table = self.row_tables[row]
            bits &= table if row in wanted else (table ^ universe)
            if not bits:
                break
        return bits

    def contains_bits(self, rows: Sequence[Tuple[object, ...]]) -> int:
        """Mask table of the monotone event ``rows ⊆ Q(m)``."""
        wanted = frozenset(tuple(row) for row in rows)
        if not wanted <= frozenset(self.answers):
            return 0
        bits = universe_mask(len(self.facts))
        for row in wanted:
            bits &= self.row_tables[row]
            if not bits:
                break
        return bits


def _witnesses(
    query, instance: Instance
) -> Iterator[Tuple[Tuple[object, ...], Tuple[Fact, ...]]]:
    """Yield ``(answer row, grounded body facts)`` per satisfying assignment.

    Unions are flattened so the head of the *matching disjunct* produces
    the answer row.
    """
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        for disjunct in disjuncts:
            yield from _witnesses(disjunct, instance)
        return
    body = query.body
    for assignment in satisfying_assignments(query, instance):
        grounded = tuple(atom.ground(assignment) for atom in body)
        yield answer_tuple(query, assignment), grounded


def compile_query_table(query, facts: Sequence[Fact]) -> CompiledQueryTable:
    """Compile ``Q`` against an ordered support into a :class:`CompiledQueryTable`.

    One satisfying-assignment enumeration on the full support collects,
    per answer row, the witness masks; a subset zeta transform then turns
    each witness set into the full ``2^n``-entry membership table.
    """
    facts = tuple(facts)
    n = len(facts)
    bit_of = {fact: j for j, fact in enumerate(facts)}
    witness_masks: Dict[Tuple[object, ...], int] = {}
    full = Instance(facts)
    for row, grounded in _witnesses(query, full):
        mask = 0
        for fact in grounded:
            mask |= 1 << bit_of[fact]
        witness_masks[row] = witness_masks.get(row, 0) | (1 << mask)
    row_tables = {
        row: subset_zeta(bits, n) for row, bits in witness_masks.items()
    }
    true_bits = 0
    for bits in row_tables.values():
        true_bits |= bits
    answers = tuple(sorted(row_tables, key=repr))
    return CompiledQueryTable(facts, answers, row_tables, true_bits)


def query_truth_bits(query, facts: Sequence[Fact]) -> int:
    """Mask table of boolean truth: bit ``m`` iff ``Q`` holds on subset ``m``.

    Semantics match :func:`repro.cq.evaluation.evaluate_boolean` (a
    non-boolean query is "true" when its answer is non-empty), but the
    cost is one enumeration plus ``O(n)`` big-int operations instead of
    ``2^n`` backtracking searches.
    """
    return compile_query_table(query, facts).true_bits


# ---------------------------------------------------------------------------
# Event compilation
# ---------------------------------------------------------------------------
def compile_event_bits(
    event: Event,
    facts: Sequence[Fact],
    table_of: Callable[[object], CompiledQueryTable],
) -> int:
    """Mask table of ``event`` over the given support.

    ``table_of`` supplies (and typically memoizes) the compiled table of
    a query; the kernel injects its per-dictionary cache here so one
    query compiled for several events is only enumerated once.  Events
    without a structural form (:class:`PredicateEvent`, third-party
    subclasses) fall back to a per-mask evaluation loop, which is the
    seed behaviour.
    """
    facts = tuple(facts)
    n = len(facts)
    universe = universe_mask(n)
    if isinstance(event, QueryAnswerIs):
        return table_of(event.query).answer_is_bits(event.answer)
    if isinstance(event, QueryContains):
        return table_of(event.query).contains_bits(event.rows)
    if isinstance(event, QueryTrue):
        return table_of(event.query).true_bits
    if isinstance(event, FactPresent):
        j = _bit_index(event.fact, facts)
        return universe ^ bit_clear_pattern(n, j)
    if isinstance(event, FactAbsent):
        j = _bit_index(event.fact, facts)
        return bit_clear_pattern(n, j) & universe
    if isinstance(event, And):
        bits = universe
        for child in event.events:
            bits &= compile_event_bits(child, facts, table_of)
            if not bits:
                break
        return bits
    if isinstance(event, Or):
        bits = 0
        for child in event.events:
            bits |= compile_event_bits(child, facts, table_of)
            if bits == universe:
                break
        return bits
    if isinstance(event, Not):
        return universe ^ compile_event_bits(event.event, facts, table_of)
    return _predicate_bits(event, facts)


def _bit_index(fact: Fact, facts: Tuple[Fact, ...]) -> int:
    try:
        return facts.index(fact)
    except ValueError:
        raise ProbabilityError(
            f"event references fact {fact!r} outside the compiled support"
        ) from None


def has_opaque_predicate(event: Event) -> bool:
    """True when compiling ``event`` needs the per-mask fallback somewhere.

    Structural events (query tests, fact tests, boolean combinations of
    them) compile to bit algebra; a :class:`PredicateEvent` or any
    third-party :class:`Event` subclass does not, so its cost stays the
    seed's ``2^n`` evaluation loop — the kernel bounds such components
    more conservatively.
    """
    if isinstance(event, (QueryAnswerIs, QueryContains, QueryTrue, FactPresent, FactAbsent)):
        return False
    if isinstance(event, (And, Or)):
        return any(has_opaque_predicate(child) for child in event.events)
    if isinstance(event, Not):
        return has_opaque_predicate(event.event)
    return True


def _predicate_bits(event: Event, facts: Tuple[Fact, ...]) -> int:
    """Per-mask fallback for opaque predicates (prior knowledge ``K``)."""
    bits = 0
    n = len(facts)
    for mask in range(1 << n):
        subset = Instance(facts[j] for j in range(n) if mask >> j & 1)
        if event.occurs(subset):
            bits |= 1 << mask
    return bits
