"""Probabilistic-database substrate.

Implements the security model of Section 3.2: dictionaries (tuple-
independent distributions), events over random instances, an exact
enumeration engine (Eq. 1–2), Monte-Carlo sampling and the multilinear
query polynomials ``f_Q`` of Section 4.3.
"""

from .dictionary import Dictionary, Probability
from .engine import ExactEngine
from .events import (
    And,
    Event,
    FactAbsent,
    FactPresent,
    Not,
    Or,
    PredicateEvent,
    QueryAnswerIs,
    QueryContains,
    QueryTrue,
    query_support,
    views_answer_event,
)
from .polynomial import MultilinearPolynomial, query_polynomial, truth_table
from .sampling import Estimate, MonteCarloSampler

__all__ = [
    "Dictionary",
    "Probability",
    "ExactEngine",
    "Event",
    "And",
    "Or",
    "Not",
    "FactPresent",
    "FactAbsent",
    "PredicateEvent",
    "QueryAnswerIs",
    "QueryContains",
    "QueryTrue",
    "query_support",
    "views_answer_event",
    "MultilinearPolynomial",
    "query_polynomial",
    "truth_table",
    "Estimate",
    "MonteCarloSampler",
]
