"""Probabilistic-database substrate.

Implements the security model of Section 3.2: dictionaries (tuple-
independent distributions), events over random instances, an exact
enumeration engine (Eq. 1–2), Monte-Carlo sampling and the multilinear
query polynomials ``f_Q`` of Section 4.3.
"""

from .compiled_event import CompiledQueryTable, compile_query_table, query_truth_bits
from .dictionary import Dictionary, Probability
from .engine import DEFAULT_MAX_SUPPORT, ExactEngine, NaiveExactEngine
from .events import (
    And,
    Event,
    FactAbsent,
    FactPresent,
    Not,
    Or,
    PredicateEvent,
    QueryAnswerIs,
    QueryContains,
    QueryTrue,
    query_support,
    views_answer_event,
)
from .kernel import MassTable, ProbabilityKernel
from .polynomial import MultilinearPolynomial, query_polynomial, truth_table
from .sampling import Estimate, MonteCarloSampler

__all__ = [
    "Dictionary",
    "Probability",
    "ExactEngine",
    "NaiveExactEngine",
    "ProbabilityKernel",
    "MassTable",
    "CompiledQueryTable",
    "compile_query_table",
    "query_truth_bits",
    "DEFAULT_MAX_SUPPORT",
    "Event",
    "And",
    "Or",
    "Not",
    "FactPresent",
    "FactAbsent",
    "PredicateEvent",
    "QueryAnswerIs",
    "QueryContains",
    "QueryTrue",
    "query_support",
    "views_answer_event",
    "MultilinearPolynomial",
    "query_polynomial",
    "truth_table",
    "Estimate",
    "MonteCarloSampler",
]
