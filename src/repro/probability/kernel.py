"""The compiled exact-probability kernel.

:class:`ProbabilityKernel` answers every question the exact layer asks —
event probabilities, conditionals, independence tests, answer
distributions, joint answer distributions — from *compiled* artifacts
instead of per-subset re-evaluation:

* **Compile once, evaluate by bit ops** — queries and events become mask
  tables (:mod:`~repro.probability.compiled_event`): one satisfying-
  assignment enumeration against the full support plus a subset zeta
  transform replaces ``2^n`` backtracking searches.
* **Mass precomputation** — the Eq. (1) probability of every sub-instance
  is served from a meet-in-the-middle table of half-mask products
  (``O(2^(n/2))`` space, one multiplication per mask) instead of an
  ``n``-term product per subset.  An exact :class:`~fractions.Fraction`
  mode (the default, bit-for-bit equal to the seed engine) and a fast
  ``float`` mode are provided.
* **Independence factorization** (Proposition 4.13(3)) — the support is
  partitioned into connected components induced by the events' supports;
  tuple-independence makes the components independent, so each is
  enumerated separately (``2^n1 + 2^n2`` instead of ``2^(n1+n2)``) and
  the distributions are combined by product.  The intractability guard
  therefore applies **per component**, which is what lets
  :data:`DEFAULT_MAX_SUPPORT` sit above the seed's bound of 22.
* **Shared joint distributions** — kernels are shared per dictionary
  (:meth:`ProbabilityKernel.shared`) and memoize compiled query tables
  and pure-query joint distributions, so each ``(queries, support,
  dictionary)`` triple is enumerated exactly once per process no matter
  how many of ``verify_security_probabilistically`` /
  ``independence_gap`` / session verifications ask for it.
"""

from __future__ import annotations

import itertools
import weakref
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..exceptions import IntractableAnalysisError, ProbabilityError
from ..obs import span
from ..obs.counters import StatCounters
from ..relational.tuples import Fact
from .compiled_event import (
    CompiledQueryTable,
    compile_event_bits,
    compile_query_table,
    has_opaque_predicate,
    universe_mask,
)
from .dictionary import Dictionary
from .events import Event, query_support

__all__ = [
    "ProbabilityKernel",
    "MassTable",
    "DEFAULT_MAX_SUPPORT",
    "PREDICATE_MAX_SUPPORT",
]

#: Default bound on the number of facts enumerated *per connected
#: component*.  The seed engine bounded the whole support union at 22;
#: with compiled evaluation and component factorization the same wall-
#: clock budget covers larger (and especially disconnected) supports.
DEFAULT_MAX_SUPPORT = 26

#: Default bound for components containing an *opaque* event (a
#: :class:`PredicateEvent` or third-party subclass).  Those fall back to
#: the seed's per-mask evaluation loop and get none of the compiled
#: speedup, so they keep the seed's bound; an explicit per-call
#: ``max_support_size`` still overrides it, as it did in the seed.
PREDICATE_MAX_SUPPORT = 22

#: Mask tables, query tables and joint distributions kept per kernel
#: before the memo is dropped and rebuilt (a simple growth guard — the
#: artifacts are recomputable).
_MEMO_LIMIT = 256


class MassTable:
    """Meet-in-the-middle sub-instance probabilities over one support.

    Splits the support into a low and a high half and tabulates the
    Eq. (1) product of each half-mask once; the total mass of a mask
    table is then accumulated per high-half chunk, so each set bit costs
    one table lookup and one addition instead of an ``n``-term product.
    """

    __slots__ = ("facts", "exact", "_low_bits", "_low", "_high")

    def __init__(self, dictionary: Dictionary, facts: Sequence[Fact], exact: bool = True):
        self.facts = tuple(facts)
        self.exact = exact
        one = Fraction(1) if exact else 1.0
        probabilities = []
        for fact in self.facts:
            p = dictionary.probability_of(fact)
            probabilities.append(p if exact else float(p))
        n = len(self.facts)
        self._low_bits = n // 2
        self._low = self._half_table(probabilities[: self._low_bits], one)
        self._high = self._half_table(probabilities[self._low_bits :], one)

    @staticmethod
    def _half_table(probabilities, one):
        table = [one]
        for p in probabilities:
            absent = one - p
            table = [entry * absent for entry in table] + [
                entry * p for entry in table
            ]
        return table

    def mass(self, bits: int):
        """Total probability of the masks whose bit is set in ``bits``."""
        zero = Fraction(0) if self.exact else 0.0
        total = zero
        if not bits:
            return total
        low_table = self._low
        low_size = 1 << self._low_bits
        if low_size >= 8:
            # One to_bytes conversion, then byte-aligned chunk slices:
            # O(2^n) copy traffic overall, where re-shifting the whole
            # mask table per chunk would cost O(2^n · 2^(n/2)).
            chunk_bytes = low_size >> 3
            data = bits.to_bytes(len(self._high) * chunk_bytes, "little")
            for high, p_high in enumerate(self._high):
                chunk = int.from_bytes(
                    data[high * chunk_bytes : (high + 1) * chunk_bytes], "little"
                )
                if not chunk:
                    continue
                acc = zero
                while chunk:
                    lowest = chunk & -chunk
                    acc += low_table[lowest.bit_length() - 1]
                    chunk ^= lowest
                total += acc * p_high
            return total
        low_all = (1 << low_size) - 1
        for high, p_high in enumerate(self._high):
            chunk = (bits >> (high << self._low_bits)) & low_all
            if not chunk:
                continue
            acc = zero
            while chunk:
                lowest = chunk & -chunk
                acc += low_table[lowest.bit_length() - 1]
                chunk ^= lowest
            total += acc * p_high
        return total


#: One shared kernel per (dictionary, mode); dropped with the dictionary.
_SHARED: "weakref.WeakKeyDictionary[Dictionary, Dict[bool, ProbabilityKernel]]" = (
    weakref.WeakKeyDictionary()
)


class ProbabilityKernel:
    """Compiled exact probability engine over one dictionary.

    Parameters
    ----------
    dictionary:
        The tuple-independent distribution (domain + tuple probabilities).
    max_support_size:
        Default bound on the facts enumerated per connected component
        (components needing the opaque-predicate fallback default to the
        tighter :data:`PREDICATE_MAX_SUPPORT`); every public method also
        accepts a per-call override, which is honoured verbatim.
    exact:
        ``True`` (default) computes with exact :class:`Fraction`
        arithmetic — results are equal, as Fractions, to the seed
        enumeration engine's.  ``False`` switches the mass layer to
        floats for a fast approximate mode (compilation is unaffected;
        only probabilities lose exactness).
    """

    def __init__(
        self,
        dictionary: Dictionary,
        max_support_size: int = DEFAULT_MAX_SUPPORT,
        exact: bool = True,
    ):
        # The registry in :meth:`shared` weakly keys on the dictionary; a
        # strong reference here would chain back to the key and make the
        # entry immortal.  Directly-constructed kernels keep the strong
        # reference (callers expect the kernel alone to suffice); shared
        # kernels drop it and live exactly as long as their dictionary.
        self._dictionary_ref = weakref.ref(dictionary)
        self._dictionary_strong: Optional[Dictionary] = dictionary
        self._max_support_size = max_support_size
        self._exact = exact
        self._query_tables: Dict[Tuple, CompiledQueryTable] = {}
        self._event_bits: Dict[Tuple[int, Tuple[Fact, ...]], Tuple[Event, int]] = {}
        self._mass_tables: Dict[Tuple[Fact, ...], MassTable] = {}
        self._joint_dists: Dict[Tuple, Dict] = {}
        #: memo key → union of the supports its enumeration covered;
        #: what :meth:`invalidate_query` intersects against so only the
        #: touched connected component's distributions are dropped.
        self._memo_supports: Dict[Tuple, FrozenSet[Fact]] = {}
        #: Monotone counters exposed for tests and reports:
        #: compiled query tables / compiled event tables / joint
        #: distributions computed, and memo hits for each.  Shared
        #: kernels are bumped from concurrent worker threads, so the
        #: counters are lock-guarded (see ``StatCounters.bump``).
        self.stats = StatCounters(
            (
                "query_compilations",
                "query_table_hits",
                "event_compilations",
                "event_bit_hits",
                "distributions",
                "distribution_hits",
                "distributions_invalidated",
            )
        )

    # -- construction -----------------------------------------------------------
    @classmethod
    def shared(cls, dictionary: Dictionary, exact: bool = True) -> "ProbabilityKernel":
        """The process-wide kernel for ``dictionary`` (one per mode).

        Sharing is what turns the per-call memoization into a per-session
        guarantee: every caller holding the same :class:`Dictionary`
        object reuses the same compiled tables and joint distributions.
        The kernel is dropped when the dictionary is garbage-collected.
        """
        kernels = _SHARED.get(dictionary)
        if kernels is None:
            kernels = {}
            _SHARED[dictionary] = kernels
        kernel = kernels.get(exact)
        if kernel is None:
            kernel = kernels[exact] = cls(dictionary, exact=exact)
            kernel._dictionary_strong = None  # see __init__: keep the key weak
        return kernel

    @classmethod
    def shared_stats(cls, dictionary: Dictionary) -> Optional[Dict[str, Dict[str, int]]]:
        """Counters of the shared kernels for ``dictionary``, if any exist.

        Purely observational: nothing is created.  Returns a mapping
        ``mode → stats`` (mode is ``"exact"`` or ``"float"``) or ``None``
        when no shared kernel has been built for the dictionary yet —
        which is how operators can see compiled-table and distribution
        hit rates without attaching a debugger.
        """
        kernels = _SHARED.get(dictionary)
        if not kernels:
            return None
        return {
            "exact" if exact else "float": dict(kernel.stats)
            for exact, kernel in sorted(kernels.items(), reverse=True)
        }

    @property
    def dictionary(self) -> Dictionary:
        """The dictionary this kernel computes over."""
        dictionary = self._dictionary_ref()
        if dictionary is None:  # pragma: no cover - requires racing the GC
            raise ProbabilityError(
                "the kernel's dictionary has been garbage-collected; keep a "
                "reference to the Dictionary while using its shared kernel"
            )
        return dictionary

    @property
    def exact(self) -> bool:
        """Whether the mass layer uses exact rational arithmetic."""
        return self._exact

    def _zero(self):
        return Fraction(0) if self._exact else 0.0

    def _one(self):
        return Fraction(1) if self._exact else 1.0

    # -- supports and components ------------------------------------------------
    def _event_support(self, event: Event) -> Tuple[Fact, ...]:
        dictionary = self.dictionary
        support = event.support(dictionary.schema)
        if support is None:
            return tuple(dictionary.tuple_space())
        return tuple(support)

    def _components(
        self, supports: Sequence[Tuple[Fact, ...]]
    ) -> List[Tuple[Tuple[Fact, ...], Tuple[int, ...]]]:
        """Partition the support union into connected components.

        Two facts are connected when some item's support contains both,
        so every item (event or query) lands in exactly one component.
        Returns ``(ordered facts, item indices)`` per component, facts
        ordered by ``repr`` for determinism over mixed-type domains.
        """
        parent: Dict[int, int] = {i: i for i in range(len(supports))}

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        owner: Dict[Fact, int] = {}
        for i, support in enumerate(supports):
            for fact in support:
                j = owner.setdefault(fact, i)
                if j != i:
                    parent[find(i)] = find(j)
        groups: Dict[int, Tuple[set, List[int]]] = {}
        for i, support in enumerate(supports):
            root = find(i)
            facts, items = groups.setdefault(root, (set(), []))
            facts.update(support)
            items.append(i)
        components = [
            (tuple(sorted(facts, key=repr)), tuple(items))
            for facts, items in groups.values()
        ]
        components.sort(key=lambda component: component[1])
        return components

    def _check_component(
        self,
        facts: Sequence[Fact],
        limit: Optional[int],
        what: str,
        opaque: bool = False,
    ) -> None:
        """Refuse components too large to enumerate.

        ``limit`` is a caller's explicit bound and is honoured verbatim
        (seed semantics).  With no explicit bound, structural components
        get the kernel's default and components needing the per-mask
        predicate fallback — which enjoys none of the compiled speedup —
        keep the seed's tighter :data:`PREDICATE_MAX_SUPPORT`.
        """
        if limit is not None:
            bound = limit
        elif opaque:
            bound = min(self._max_support_size, PREDICATE_MAX_SUPPORT)
        else:
            bound = self._max_support_size
        if len(facts) > bound:
            raise IntractableAnalysisError(
                f"{what} has a connected support component of {len(facts)} facts; "
                f"exact enumeration of 2^{len(facts)} sub-instances exceeds the "
                f"configured bound ({bound}); use MonteCarloSampler instead",
                size_estimate=2 ** len(facts),
            )

    # -- compiled artifacts ------------------------------------------------------
    def _query_key(self, query) -> Tuple:
        from ..session.compile import canonical_query_key  # lazy: avoids a cycle

        return canonical_query_key(query)

    def query_table(self, query, facts: Sequence[Fact]) -> CompiledQueryTable:
        """The compiled table of ``query`` over ``facts`` (memoized)."""
        key = (self._query_key(query), tuple(facts))
        table = self._query_tables.get(key)
        if table is None:
            if len(self._query_tables) >= _MEMO_LIMIT:
                self._query_tables.clear()
            self.stats.bump("query_compilations")
            with span("kernel.query_table"):
                table = self._query_tables[key] = compile_query_table(query, facts)
        else:
            self.stats.bump("query_table_hits")
        return table

    def event_bits(self, event: Event, facts: Sequence[Fact]) -> int:
        """The mask table of ``event`` over ``facts`` (memoized by identity).

        Events are arbitrary objects (predicates are opaque), so the memo
        key is the event's identity; the event is kept referenced while
        its entry lives so ids cannot be recycled underneath the cache.
        """
        facts = tuple(facts)
        key = (id(event), facts)
        cached = self._event_bits.get(key)
        if cached is not None and cached[0] is event:
            self.stats.bump("event_bit_hits")
            return cached[1]
        if len(self._event_bits) >= _MEMO_LIMIT:
            self._event_bits.clear()
        self.stats.bump("event_compilations")
        bits = compile_event_bits(
            event, facts, lambda query: self.query_table(query, facts)
        )
        self._event_bits[key] = (event, bits)
        return bits

    def mass_table(self, facts: Sequence[Fact]) -> MassTable:
        """The meet-in-the-middle mass table over ``facts`` (memoized)."""
        facts = tuple(facts)
        table = self._mass_tables.get(facts)
        if table is None:
            if len(self._mass_tables) >= _MEMO_LIMIT:
                self._mass_tables.clear()
            table = self._mass_tables[facts] = MassTable(
                self.dictionary, facts, exact=self._exact
            )
        return table

    # -- event probabilities -----------------------------------------------------
    def probability(self, event: Event, *, max_support_size: Optional[int] = None):
        """``P[event]``; exact (a :class:`Fraction`) in exact mode."""
        return self.joint_probability([event], max_support_size=max_support_size)

    def joint_probability(
        self, events: Sequence[Event], *, max_support_size: Optional[int] = None
    ):
        """``P[e1 ∧ e2 ∧ ...]`` with component factorization.

        Events whose supports live in disjoint components are independent
        under a tuple-independent dictionary (Proposition 4.13(3)), so
        the joint probability is the product of per-component masses.
        """
        events = list(events)
        supports = [self._event_support(event) for event in events]
        total = self._one()
        for facts, items in self._components(supports):
            self._check_component(
                facts,
                max_support_size,
                "event support",
                opaque=any(has_opaque_predicate(events[i]) for i in items),
            )
            bits = universe_mask(len(facts))
            for i in items:
                bits &= self.event_bits(events[i], facts)
                if not bits:
                    return self._zero()
            total *= self.mass_table(facts).mass(bits)
            if not total:
                return self._zero()
        return total

    def conditional_probability(
        self, event: Event, given: Event, *, max_support_size: Optional[int] = None
    ):
        """``P[event | given]``; raises when ``P[given] = 0``."""
        joint = self.joint_probability([event, given], max_support_size=max_support_size)
        marginal = self.probability(given, max_support_size=max_support_size)
        if marginal == 0:
            raise ProbabilityError(
                f"cannot condition on event with probability zero: {given.describe()}"
            )
        return joint / marginal

    def are_independent(
        self, left: Event, right: Event, *, max_support_size: Optional[int] = None
    ) -> bool:
        """Exact test of ``P[left ∧ right] = P[left]·P[right]``."""
        joint = self.joint_probability([left, right], max_support_size=max_support_size)
        product = self.probability(
            left, max_support_size=max_support_size
        ) * self.probability(right, max_support_size=max_support_size)
        return joint == product

    # -- answer distributions ----------------------------------------------------
    def _query_support(self, query) -> Tuple[Fact, ...]:
        return tuple(query_support(query, self.dictionary.schema))

    def _component_classes(
        self,
        facts: Tuple[Fact, ...],
        queries: Sequence,
        events: Sequence[Event],
    ) -> List[Tuple[int, Tuple]]:
        """Split the mask space of one component into answer classes.

        Returns ``(mask table, key)`` pairs where ``key`` lists, in item
        order, the answer set of each query followed by the truth value
        of each event.  The classes partition the non-empty portion of
        the mask space; structurally attained outcomes with probability
        zero are kept (the seed enumeration also reported them).
        """
        classes: List[Tuple[int, Tuple]] = [(universe_mask(len(facts)), ())]
        for query in queries:
            table = self.query_table(query, facts)
            split: List[Tuple[int, Tuple, set]] = [
                (bits, key, set()) for bits, key in classes
            ]
            for row in table.answers:
                row_bits = table.row_tables[row]
                next_split: List[Tuple[int, Tuple, set]] = []
                for bits, key, included in split:
                    with_row = bits & row_bits
                    without_row = bits & ~row_bits
                    if with_row:
                        next_split.append((with_row, key, included | {row}))
                    if without_row:
                        next_split.append((without_row, key, included))
                split = next_split
            classes = [
                (bits, key + (frozenset(included),)) for bits, key, included in split
            ]
        for event in events:
            event_table = self.event_bits(event, facts)
            next_classes: List[Tuple[int, Tuple]] = []
            for bits, key in classes:
                holds = bits & event_table
                fails = bits & ~event_table
                if holds:
                    next_classes.append((holds, key + (True,)))
                if fails:
                    next_classes.append((fails, key + (False,)))
            classes = next_classes
        return classes

    def joint_distribution(
        self,
        queries: Sequence,
        events: Sequence[Event] = (),
        *,
        max_support_size: Optional[int] = None,
    ) -> Dict[Tuple, Union[Fraction, float]]:
        """Joint distribution of query answers and event truth values.

        Keys are tuples listing each query's answer set (a frozenset of
        rows) in query order followed by each event's truth value.  The
        support is factorized into connected components; each component
        is enumerated once and the component distributions are combined
        by product.  Pure-query calls (no events) are memoized per
        kernel, so repeated verification of the same ``(queries,
        dictionary)`` pair shares one enumeration.
        """
        queries = list(queries)
        events = list(events)
        supports = [self._query_support(query) for query in queries]
        supports += [self._event_support(event) for event in events]
        components = self._components(supports)
        query_count = len(queries)
        for facts, items in components:
            self._check_component(
                facts,
                max_support_size,
                "joint support" if queries else "event support",
                opaque=any(
                    has_opaque_predicate(events[i - query_count])
                    for i in items
                    if i >= query_count
                ),
            )

        memo_key: Optional[Tuple] = None
        if not events:
            memo_key = (tuple(self._query_key(query) for query in queries),)
            cached = self._joint_dists.get(memo_key)
            if cached is not None:
                self.stats.bump("distribution_hits")
                return dict(cached)

        self.stats.bump("distributions")
        with span("kernel.distribution"):
            return self._joint_distribution_core(
                queries, events, components, query_count, memo_key
            )

    def _joint_distribution_core(
        self, queries, events, components, query_count, memo_key
    ) -> Dict[Tuple, Union[Fraction, float]]:
        per_component: List[Tuple[Tuple[int, ...], List[Tuple[Tuple, object]]]] = []
        for facts, items in components:
            component_queries = [queries[i] for i in items if i < query_count]
            component_events = [events[i - query_count] for i in items if i >= query_count]
            mass = self.mass_table(facts)
            outcomes = [
                (key, mass.mass(bits))
                for bits, key in self._component_classes(
                    facts, component_queries, component_events
                )
            ]
            per_component.append((items, outcomes))

        distribution: Dict[Tuple, Union[Fraction, float]] = {}
        total_items = query_count + len(events)
        for combo in itertools.product(*(outcomes for _, outcomes in per_component)):
            key: List[object] = [None] * total_items
            probability = self._one()
            for (items, _), (component_key, component_probability) in zip(
                per_component, combo
            ):
                probability *= component_probability
                for slot, value in zip(items, component_key):
                    key[slot] = value
            distribution[tuple(key)] = (
                distribution.get(tuple(key), self._zero()) + probability
            )

        if memo_key is not None:
            if len(self._joint_dists) >= _MEMO_LIMIT:
                self._joint_dists.clear()
                self._memo_supports.clear()
            self._joint_dists[memo_key] = dict(distribution)
            self._memo_supports[memo_key] = frozenset(
                fact for facts, _ in components for fact in facts
            )
        return distribution

    def invalidate_query(self, query, *, support: Optional[Sequence[Fact]] = None) -> int:
        """Drop memoized joint distributions overlapping ``query``'s support.

        Invalidation is *component-granular* (Proposition 4.13(3)):
        because disjoint-support components are independent, a published
        or retracted query can only matter to memo entries whose
        enumeration touched facts in its own support component — every
        other cached distribution survives verbatim and is never
        recomputed.  Returns the number of entries dropped; the kernel's
        ``distributions_invalidated`` counter records the total.

        ``support`` overrides the support set used for the overlap test
        (e.g. a pre-computed component union); by default the query's own
        Proposition 4.6 support over the dictionary's schema is used.
        """
        facts = frozenset(support if support is not None else self._query_support(query))
        stale = [
            key
            for key, covered in self._memo_supports.items()
            if covered & facts
        ]
        for key in stale:
            self._joint_dists.pop(key, None)
            self._memo_supports.pop(key, None)
        if stale:
            self.stats.bump("distributions_invalidated", len(stale))
        return len(stale)

    def joint_answer_distribution(
        self, queries: Sequence, *, max_support_size: Optional[int] = None
    ) -> Dict[Tuple[FrozenSet[Tuple[object, ...]], ...], Union[Fraction, float]]:
        """Joint distribution of several queries' answers (Eq. 2, joint form)."""
        return self.joint_distribution(queries, max_support_size=max_support_size)

    def answer_distribution(
        self, query, *, max_support_size: Optional[int] = None
    ) -> Dict[FrozenSet[Tuple[object, ...]], Union[Fraction, float]]:
        """The full distribution of ``Q(I)``: answer set → probability (Eq. 2)."""
        joint = self.joint_distribution([query], max_support_size=max_support_size)
        return {key[0]: probability for key, probability in joint.items()}

    def possible_answers(
        self, query, *, max_support_size: Optional[int] = None
    ) -> List[FrozenSet[Tuple[object, ...]]]:
        """All answers attained with non-zero structural possibility.

        The order is deterministic: answers are listed by the smallest
        sub-instance bitmask attaining them (the seed engine ordered by
        first attainment along a size-then-combination enumeration; no
        caller depends on that order, only on the set).
        """
        facts = tuple(sorted(self._query_support(query), key=repr))
        self._check_component(facts, max_support_size, "query support")
        classes = self._component_classes(facts, [query], ())
        ordered = sorted(
            classes, key=lambda entry: (entry[0] & -entry[0]).bit_length()
        )
        return [key[0] for _, key in ordered]
