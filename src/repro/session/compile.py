"""Query compilation: normal forms, fingerprints and compiled handles.

``AnalysisSession.compile`` turns a query (object or datalog string)
into a :class:`CompiledQuery` — the "prepared statement" of the security
analyzer.  Compilation computes:

* the **canonical form** of the query: display names dropped and
  variables renamed to a fixed scheme in order of first occurrence, so
  that ``V(x) :- R(x, y)`` and ``W(a) :- R(a, b)`` share one cache
  entry;
* a short hex **fingerprint** of the canonical form (stable across
  processes) for logging and report correlation;
* the query's **Proposition 4.9 analysis domain** requirements, so the
  session can build one shared domain per batch;
* a lazily-memoized ``crit_D(Q)``, looked up in the session's
  :class:`~repro.session.cache.CriticalTupleCache`.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Tuple, Union

from ..cq.parser import parse_query
from ..cq.query import ConjunctiveQuery
from ..cq.terms import Variable, is_constant, is_variable
from ..cq.union import UnionQuery
from ..exceptions import SecurityAnalysisError
from ..relational.domain import Domain
from ..relational.tuples import Fact

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .session import AnalysisSession

__all__ = [
    "AnyQuery",
    "QueryLike",
    "as_query",
    "canonical_query_key",
    "query_fingerprint",
    "CompiledQuery",
]

AnyQuery = Union[ConjunctiveQuery, UnionQuery]
QueryLike = Union[str, ConjunctiveQuery, UnionQuery]


def as_query(value: QueryLike, role: str = "query") -> AnyQuery:
    """Coerce a query-like value, with a clear error for unsupported types.

    Strings are parsed as datalog; :class:`ConjunctiveQuery` and
    :class:`UnionQuery` pass through.  Anything else raises a
    :class:`SecurityAnalysisError` naming the offending role — the
    uniform type validation the legacy entry points only performed
    implicitly.
    """
    if isinstance(value, (ConjunctiveQuery, UnionQuery)):
        return value
    if isinstance(value, str):
        return parse_query(value)
    raise SecurityAnalysisError(
        f"the {role} must be a ConjunctiveQuery, a UnionQuery or a datalog "
        f"string, got {type(value).__name__}: {value!r}"
    )


def _conjunctive_key(query: ConjunctiveQuery) -> Tuple:
    """Canonical form of one conjunctive query.

    Variables are renamed ``v0, v1, ...`` in order of first occurrence
    across head, body (in body order) and comparisons; constants keep
    their value (tagged with their type so ``1`` and ``"1"`` stay
    distinct).  The display name is dropped.  Body order is preserved —
    reordered bodies hash differently, which costs a cache miss but
    never a wrong answer.
    """
    renaming: Dict[Variable, str] = {}

    def term_key(term) -> Tuple:
        if is_variable(term):
            if term not in renaming:
                renaming[term] = f"v{len(renaming)}"
            return ("var", renaming[term])
        if is_constant(term):
            return ("const", type(term.value).__name__, repr(term.value))
        return ("term", repr(term))  # defensive: unknown term kinds

    head = tuple(term_key(term) for term in query.head)
    body = tuple(
        (atom.relation, tuple(term_key(term) for term in atom.terms))
        for atom in query.body
    )
    comparisons = tuple(
        sorted(
            (comparison.op, term_key(comparison.left), term_key(comparison.right))
            for comparison in query.comparisons
        )
    )
    return ("cq", head, body, comparisons)


def canonical_query_key(query: AnyQuery) -> Tuple:
    """A hashable canonical form shared by all α-equivalent spellings.

    For unions the disjunct keys are sorted, so disjunct order does not
    split the cache.
    """
    if isinstance(query, UnionQuery):
        return ("union", tuple(sorted(_conjunctive_key(d) for d in query.disjuncts)))
    return _conjunctive_key(query)


def query_fingerprint(query: AnyQuery) -> str:
    """A short stable hex digest of the canonical form."""
    digest = hashlib.sha256(repr(canonical_query_key(query)).encode("utf8"))
    return digest.hexdigest()[:12]


class CompiledQuery:
    """A query prepared for repeated analysis within one session.

    Instances are created by :meth:`AnalysisSession.compile` and carry
    the canonical key and fingerprint plus a lazily-memoized
    critical-tuple accessor.  Two compiles of α-equivalent queries
    return the *same* object, so identity comparison is meaningful
    within a session.
    """

    __slots__ = ("_session", "_query", "_key", "_fingerprint")

    def __init__(self, session: "AnalysisSession", query: AnyQuery):
        self._session = session
        self._query = query
        self._key = canonical_query_key(query)
        self._fingerprint = query_fingerprint(query)

    # -- identity ------------------------------------------------------------
    @property
    def query(self) -> AnyQuery:
        """The underlying query object."""
        return self._query

    @property
    def session(self) -> "AnalysisSession":
        """The session this query was compiled in."""
        return self._session

    @property
    def canonical_key(self) -> Tuple:
        """The canonical (α-renamed, name-free) form used as the cache key."""
        return self._key

    @property
    def fingerprint(self) -> str:
        """Short hex digest of the canonical form."""
        return self._fingerprint

    @property
    def name(self) -> str:
        """The query's display name."""
        return self._query.name

    @property
    def arity(self) -> int:
        """Arity of the query."""
        return self._query.arity

    @property
    def is_boolean(self) -> bool:
        """True for arity-0 queries."""
        return self._query.is_boolean

    # -- analysis artifacts ----------------------------------------------------
    def analysis_domain(self) -> Domain:
        """The Proposition 4.9 domain for this query analysed alone."""
        from ..core.domain_bounds import analysis_domain

        return analysis_domain([self._query])

    def critical_tuples(self, domain: Optional[Domain] = None) -> FrozenSet[Fact]:
        """``crit_D(Q)`` over ``domain``, memoized in the session cache.

        When ``domain`` is omitted the session's configured domain (or
        the query's own Proposition 4.9 domain) is used.  Repeated calls
        with the same domain — from this handle, from another compile of
        an α-equivalent query, or from any session analysis method — hit
        the shared cache.
        """
        return self._session.critical_tuples(self._query, domain=domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledQuery({self._query!r}, fingerprint={self._fingerprint})"
