"""Unified result types for session-based analyses.

Every :class:`~repro.session.session.AnalysisSession` method returns a
subclass of :class:`AnalysisResult`, which standardises the four things
callers always want regardless of the analysis flavour:

* ``verdict`` — ``True`` (safe), ``False`` (disclosure) or ``None``
  (inconclusive, e.g. an inapplicable knowledge corollary);
* ``evidence`` — the legacy, analysis-specific result object with the
  full detail (``SecurityDecision``, ``CollusionReport``, ...);
* ``elapsed_seconds`` — wall-clock time of the analysis;
* ``cache_used`` — the critical-tuple cache activity this one call
  caused (a :class:`~repro.session.cache.CacheStats` delta).

The legacy objects remain the source of truth for their own fields, so
code written against the pre-session API keeps working on
``result.decision`` / ``result.report`` / ``result.measurement``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..core.collusion import CollusionReport
from ..core.leakage import LeakageResult
from ..core.practical import PracticalVerdict
from ..core.prior import KnowledgeDecision
from ..core.security import SecurityDecision
from ..exceptions import SecurityAnalysisError
from .cache import CacheStats

__all__ = [
    "AnalysisResult",
    "DecisionResult",
    "CollusionResult",
    "KnowledgeResult",
    "LeakageAnalysis",
    "PracticalResult",
    "QuickCheckResult",
    "VerificationResult",
    "PlanEntry",
    "PlanAuditResult",
]


@dataclass(frozen=True)
class AnalysisResult:
    """Common base of every session analysis outcome.

    Attributes
    ----------
    kind:
        Analysis flavour (``"decide"``, ``"collusion"``, ...).
    verdict:
        ``True`` = no disclosure, ``False`` = disclosure found,
        ``None`` = inconclusive.
    elapsed_seconds:
        Wall-clock duration of this analysis call.
    cache_used:
        Critical-tuple cache activity caused by this call (hits/misses
        are deltas; ``size`` is the cache size after the call).
    """

    kind: str
    verdict: Optional[bool]
    elapsed_seconds: float
    cache_used: CacheStats

    @property
    def secure(self) -> bool:
        """Strict boolean verdict; raises when the analysis was inconclusive."""
        if self.verdict is None:
            raise SecurityAnalysisError(
                f"the {self.kind} analysis was inconclusive; inspect the evidence "
                "or fall back to a per-dictionary verification"
            )
        return self.verdict

    @property
    def conclusive(self) -> bool:
        """True when a definite verdict was reached."""
        return self.verdict is not None

    def explain(self) -> str:
        """Human-readable explanation (subclasses delegate to their evidence)."""
        status = {True: "secure", False: "NOT secure", None: "inconclusive"}[self.verdict]
        return f"{self.kind} analysis: {status}"


@dataclass(frozen=True)
class DecisionResult(AnalysisResult):
    """Outcome of :meth:`AnalysisSession.decide` (Theorem 4.5)."""

    decision: SecurityDecision = None  # type: ignore[assignment]

    @property
    def evidence(self) -> SecurityDecision:
        """The underlying :class:`SecurityDecision`."""
        return self.decision

    def explain(self) -> str:
        return self.decision.explain()


@dataclass(frozen=True)
class CollusionResult(AnalysisResult):
    """Outcome of :meth:`AnalysisSession.collusion`."""

    report: CollusionReport = None  # type: ignore[assignment]

    @property
    def evidence(self) -> CollusionReport:
        """The underlying :class:`CollusionReport`."""
        return self.report

    def explain(self) -> str:
        return self.report.summary()


@dataclass(frozen=True)
class KnowledgeResult(AnalysisResult):
    """Outcome of :meth:`AnalysisSession.with_knowledge` (Section 5)."""

    decision: KnowledgeDecision = None  # type: ignore[assignment]

    @property
    def evidence(self) -> KnowledgeDecision:
        """The underlying :class:`KnowledgeDecision`."""
        return self.decision

    def explain(self) -> str:
        return self.decision.explanation


@dataclass(frozen=True)
class LeakageAnalysis(AnalysisResult):
    """Outcome of :meth:`AnalysisSession.leakage` (Section 6.1).

    ``verdict`` is ``True`` iff the measured leakage is zero.
    """

    measurement: LeakageResult = None  # type: ignore[assignment]

    @property
    def evidence(self) -> LeakageResult:
        """The underlying :class:`LeakageResult`."""
        return self.measurement

    @property
    def leakage(self):
        """The Eq. (9) value."""
        return self.measurement.leakage

    def explain(self) -> str:
        return f"leak(S, V̄) = {float(self.measurement.leakage):.6g}"


@dataclass(frozen=True)
class PracticalResult(AnalysisResult):
    """Outcome of :meth:`AnalysisSession.practical` (Section 6.2).

    ``verdict`` is ``True`` for perfect or practical (asymptotic)
    security, ``False`` for a practical disclosure.
    """

    report: object = None  # PracticalSecurityReport; untyped to avoid an import cycle

    @property
    def evidence(self):
        """The underlying :class:`PracticalSecurityReport`."""
        return self.report

    def explain(self) -> str:
        return self.report.explanation


@dataclass(frozen=True)
class QuickCheckResult(AnalysisResult):
    """Outcome of :meth:`AnalysisSession.quick_check` (Section 4.2).

    ``verdict`` is ``True`` for the sound "certainly secure" certificate
    and ``None`` when the unification check was inconclusive (it can
    never prove insecurity).
    """

    check: PracticalVerdict = None  # type: ignore[assignment]

    @property
    def evidence(self) -> PracticalVerdict:
        """The underlying :class:`PracticalVerdict`."""
        return self.check

    def explain(self) -> str:
        return self.check.explain()


@dataclass(frozen=True)
class VerificationResult(AnalysisResult):
    """Outcome of :meth:`AnalysisSession.verify` (per-dictionary check)."""

    engine: str = ""

    def explain(self) -> str:
        status = "independent" if self.verdict else "correlated"
        return f"{self.engine} engine: secret and views appear {status}"


@dataclass(frozen=True)
class PlanEntry:
    """One (secret, recipient) cell of a batch publishing-plan audit."""

    secret_name: str
    recipient: str
    view_name: str
    secure: bool
    decision: SecurityDecision

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "secure" if self.secure else "NOT secure"
        return f"PlanEntry({self.secret_name} | {self.recipient}: {verdict})"


@dataclass(frozen=True)
class PlanAuditResult(AnalysisResult):
    """Outcome of :meth:`AnalysisSession.audit_plan`.

    One entry per secret × recipient pair; by Theorem 4.5 the verdict of
    *any* coalition (view subset) follows from the singleton verdicts,
    so all ``2^k`` subsets are covered while each ``crit_D`` was
    computed exactly once.
    """

    entries: Tuple[PlanEntry, ...] = ()
    secret_names: Tuple[str, ...] = ()
    recipients: Tuple[str, ...] = ()

    @property
    def violations(self) -> Tuple[PlanEntry, ...]:
        """The insecure (secret, recipient) pairs."""
        return tuple(entry for entry in self.entries if not entry.secure)

    def entry(self, secret_name: str, recipient: str) -> PlanEntry:
        """The cell for one secret × recipient pair."""
        for candidate in self.entries:
            if candidate.secret_name == secret_name and candidate.recipient == recipient:
                return candidate
        raise SecurityAnalysisError(
            f"no plan entry for secret {secret_name!r} and recipient {recipient!r}"
        )

    def _require_secret(self, secret_name: str) -> None:
        if secret_name not in self.secret_names:
            raise SecurityAnalysisError(
                f"unknown secret {secret_name!r}; plan secrets are "
                f"{sorted(self.secret_names)}"
            )

    def coalition_is_secure(self, secret_name: str, coalition: Sequence[str]) -> bool:
        """Whether a coalition of recipients learns anything about a secret.

        Theorem 4.5: a coalition is secure iff every member's view is
        individually secure against the secret.
        """
        self._require_secret(secret_name)
        members = set(coalition)
        unknown = members - set(self.recipients)
        if unknown:
            raise SecurityAnalysisError(
                f"unknown recipients in coalition: {sorted(unknown)}"
            )
        return all(
            entry.secure
            for entry in self.entries
            if entry.secret_name == secret_name and entry.recipient in members
        )

    def violating_coalitions(self, secret_name: str) -> Tuple[Tuple[str, ...], ...]:
        """Minimal violating coalitions for one secret (singletons, Thm 4.5)."""
        self._require_secret(secret_name)
        return tuple(
            (entry.recipient,)
            for entry in self.entries
            if entry.secret_name == secret_name and not entry.secure
        )

    def render(self) -> str:
        """Multi-line human-readable audit summary."""
        lines = [
            f"Publishing-plan audit: {len(self.secret_names)} secret(s) × "
            f"{len(self.recipients)} view(s)"
        ]
        for secret_name in self.secret_names:
            bad = [
                entry.recipient
                for entry in self.entries
                if entry.secret_name == secret_name and not entry.secure
            ]
            if bad:
                lines.append(
                    f"  - {secret_name}: NOT secure (disclosed to {', '.join(bad)})"
                )
            else:
                lines.append(
                    f"  - {secret_name}: secure against every coalition (Theorem 4.5)"
                )
        verdict = "SAFE" if self.verdict else "DISCLOSURE"
        lines.append(
            f"  => plan verdict: {verdict}; critical-tuple cache: "
            f"{self.cache_used.hits} hit(s), {self.cache_used.misses} miss(es)"
        )
        return "\n".join(lines)

    def explain(self) -> str:
        return self.render()
