"""A bounded LRU cache for critical-tuple sets.

Critical tuples are the single hot artifact of every analysis in this
library: ``crit_D(Q)`` is recomputed by each security decision, each
collusion coalition, each knowledge corollary and each batch audit.  The
cache memoizes them under a key that is insensitive to everything that
cannot change the result — query display names and variable spellings
are normalised away by :func:`repro.session.compile.canonical_query_key`
— while being fully sensitive to everything that can: the canonical
query form, the tuple-space (schema fingerprint) and the analysis
domain.

The cache is bounded (LRU eviction) and keeps hit/miss/eviction
statistics so callers can verify the sharing they expect actually
happens (see ``benchmarks/bench_session_cache.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, Optional, Tuple

from ..exceptions import SecurityAnalysisError
from ..relational.schema import Schema
from ..relational.tuples import Fact

__all__ = ["CacheStats", "CriticalTupleCache", "schema_fingerprint"]

#: Default number of critical-tuple sets kept by a session cache.
DEFAULT_CACHE_SIZE = 512


def schema_fingerprint(schema: Schema) -> Tuple:
    """A hashable fingerprint of everything that shapes a tuple space.

    Two schemas with the same fingerprint have identical ``tup(D)`` and
    therefore identical critical-tuple sets for any query, so the
    fingerprint (together with the analysis domain and the canonical
    query form) is a sound cache key component.
    """
    relations = tuple(
        (
            relation.name,
            relation.attributes,
            relation.key or (),
            tuple(
                sorted(
                    (attribute, tuple(domain.values))
                    for attribute, domain in relation.attribute_domains.items()
                )
            ),
        )
        for relation in sorted(schema, key=lambda r: r.name)
    )
    domain = getattr(schema, "domain", None)
    return (relations, tuple(domain.values) if domain is not None else ())


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a cache's counters.

    Attributes
    ----------
    hits / misses:
        Lookups answered from the cache vs. computed fresh.
    evictions:
        Entries dropped because the cache was full (LRU order).
    invalidations:
        Entries dropped explicitly (:meth:`CriticalTupleCache.invalidate`
        — e.g. a live session retracting a view).
    size / maxsize:
        Current and maximum number of cached critical-tuple sets.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """The stats as plain JSON (used by ``stats`` and ``audit --json``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """The counter increments accumulated since an ``earlier`` snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            size=self.size,
            maxsize=self.maxsize,
            invalidations=self.invalidations - earlier.invalidations,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, size={self.size}/{self.maxsize})"
        )


class CriticalTupleCache:
    """A thread-safe bounded LRU cache of ``crit_D(Q)`` sets.

    Keys are arbitrary hashable tuples assembled by the session layer
    (schema fingerprint, canonical query form, domain values); values are
    the frozen critical-tuple sets.  ``get_or_compute`` is the only way
    entries are created, which keeps the hit/miss accounting exact.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 1:
            raise SecurityAnalysisError("critical-tuple cache size must be at least 1")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Hashable, FrozenSet[Fact]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    @property
    def maxsize(self) -> int:
        """Maximum number of entries kept."""
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[FrozenSet[Fact]]:
        """The cached set for ``key``, or ``None`` (does not count as a lookup)."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], FrozenSet[Fact]]
    ) -> FrozenSet[Fact]:
        """The cached set for ``key``, computing and inserting it on a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return value
        # Compute outside the lock: critical-tuple searches can be slow and
        # must not serialise unrelated lookups.  A concurrent duplicate
        # computation is possible but harmless (same deterministic result).
        value = frozenset(compute())
        with self._lock:
            self._misses += 1
            if key not in self._entries and len(self._entries) >= self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            return value

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        The targeted counterpart of :meth:`clear`: a live audit session
        retracting one view drops exactly that view's fingerprints
        (session keys carry the canonical query form at index 2) while
        every other ``crit_D`` set stays warm.  Returns the number of
        entries dropped; each is counted as an invalidation.
        """
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def stats(self) -> CacheStats:
        """A snapshot of the current counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self._maxsize,
                invalidations=self._invalidations,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CriticalTupleCache({self.stats()!r})"
