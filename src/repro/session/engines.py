"""The verification-engine registry.

Qualitative security verdicts (Theorem 4.5) are dictionary-independent,
but the library also ships *verifiers* that check Definition 4.1 against
one concrete dictionary: the exact rational engine (enumerates the joint
answer distribution) and the Monte-Carlo sampling verifier (estimates
independence from random instances).  Sessions select one by name::

    AnalysisSession(schema, dictionary=d, engine="exact")
    AnalysisSession(schema, dictionary=d, engine="sampling")

Third parties can plug in their own with :func:`register_engine`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from ..cq.evaluation import evaluate
from ..cq.query import ConjunctiveQuery
from ..exceptions import SecurityAnalysisError
from ..probability.dictionary import Dictionary
from ..probability.sampling import MonteCarloSampler

__all__ = [
    "VerificationEngine",
    "ExactVerificationEngine",
    "SamplingVerificationEngine",
    "register_engine",
    "create_engine",
    "available_engines",
]


class VerificationEngine:
    """Interface of a per-dictionary security verifier."""

    #: Registry name; subclasses override.
    name = "abstract"

    def verify(
        self,
        secret,
        views: Sequence,
        dictionary: Dictionary,
        **options,
    ) -> bool:
        """``True`` when the secret appears secure w.r.t. the views under
        this dictionary, by this engine's criterion."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner used in reports."""
        return f"{self.name} verification engine"


class ExactVerificationEngine(VerificationEngine):
    """Literal Definition 4.1 with exact rational arithmetic.

    Backed by the compiled probability kernel shared per dictionary
    (:class:`~repro.probability.kernel.ProbabilityKernel`): the joint
    answer distribution of ``(secret, views)`` is compiled and
    enumerated once per dictionary and memoized, so repeated session
    verifications of the same pair are cache hits.  Exponential in the
    per-component support size; authoritative on small domains.
    ``max_support_size`` bounds the enumerated support per connected
    component.
    """

    name = "exact"

    def verify(self, secret, views, dictionary, max_support_size=None, **_):
        from ..core.security import verify_security_probabilistically

        return verify_security_probabilistically(
            secret, list(views), dictionary, max_support_size=max_support_size
        )


class SamplingVerificationEngine(VerificationEngine):
    """Monte-Carlo independence screening (Definition 4.1, estimated).

    Draws random instances from the dictionary, records the answers of
    the secret and the views, and checks that the empirical joint
    distribution factorises within ``tolerance_sigmas`` standard errors.
    A screening tool: ``True`` means "no dependence detected", not a
    proof of security.
    """

    name = "sampling"

    def verify(
        self,
        secret,
        views,
        dictionary,
        samples: int = 4000,
        seed: int = 0,
        tolerance_sigmas: float = 4.0,
        **_,
    ) -> bool:
        # Uniform option validation: every tuning knob is checked the same
        # way, and the error always names the offending value.
        if not isinstance(samples, int) or isinstance(samples, bool) or samples <= 0:
            raise SecurityAnalysisError(
                f"sampling verification needs a positive integer sample count, "
                f"got {samples!r}"
            )
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SecurityAnalysisError(
                f"sampling verification needs an integer seed, got {seed!r}"
            )
        if (
            not isinstance(tolerance_sigmas, (int, float))
            or isinstance(tolerance_sigmas, bool)
            or not math.isfinite(tolerance_sigmas)
            or tolerance_sigmas <= 0
        ):
            raise SecurityAnalysisError(
                f"sampling verification needs a positive finite tolerance_sigmas, "
                f"got {tolerance_sigmas!r}"
            )
        sampler = MonteCarloSampler(dictionary, seed=seed)
        views = list(views)
        joint: Dict[Tuple, int] = {}
        secret_marginal: Dict[frozenset, int] = {}
        view_marginal: Dict[Tuple, int] = {}
        for _ in range(samples):
            instance = sampler.sample_instance()
            secret_answer = frozenset(evaluate(secret, instance))
            view_answers = tuple(frozenset(evaluate(view, instance)) for view in views)
            joint[(secret_answer, view_answers)] = joint.get((secret_answer, view_answers), 0) + 1
            secret_marginal[secret_answer] = secret_marginal.get(secret_answer, 0) + 1
            view_marginal[view_answers] = view_marginal.get(view_answers, 0) + 1
        for secret_answer, secret_count in secret_marginal.items():
            for view_answers, view_count in view_marginal.items():
                p_joint = joint.get((secret_answer, view_answers), 0) / samples
                p_product = (secret_count / samples) * (view_count / samples)
                difference = abs(p_joint - p_product)
                stderr = max(p_joint * (1 - p_joint), 1e-12) ** 0.5 / samples**0.5
                if difference > tolerance_sigmas * max(stderr, 1e-9):
                    return False
        return True


_REGISTRY: Dict[str, Callable[[], VerificationEngine]] = {}


def register_engine(name: str, factory: Callable[[], VerificationEngine]) -> None:
    """Register (or replace) an engine factory under ``name``."""
    if not name:
        raise SecurityAnalysisError("engine name must be non-empty")
    _REGISTRY[name] = factory


def available_engines() -> List[str]:
    """The registered engine names, sorted."""
    return sorted(_REGISTRY)


def create_engine(name: str) -> VerificationEngine:
    """Instantiate the engine registered under ``name``.

    Raises :class:`SecurityAnalysisError` listing the available names
    when ``name`` is unknown.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SecurityAnalysisError(
            f"unknown verification engine {name!r}; available engines: "
            f"{', '.join(available_engines())}"
        ) from None
    return factory()


register_engine(ExactVerificationEngine.name, ExactVerificationEngine)
register_engine(SamplingVerificationEngine.name, SamplingVerificationEngine)
