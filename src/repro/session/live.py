"""Live audit sessions: re-audit a changing database in delta time.

An :class:`AnalysisSession` answers one-shot questions about a *fixed*
publishing situation.  A :class:`LiveAuditSession` pins the whole state
— schema, dictionary, a fact store (in-memory or SQL-backed), named
secrets and published views — and keeps every derived artifact
consistent as that state changes, paying only for what a change can
touch:

* **Fact deltas** (``apply_delta``).  Security verdicts under Theorem
  4.5 are *instance-independent* (``crit_D`` ranges over the tuple
  space, not the database), so a fact delta can never flip a decision
  and never invalidates a critical-tuple set or a kernel memo.  What a
  fact delta can change is the *answers* of the tracked queries — and
  only for queries the changed facts can unify with.  The delta
  classifier (:func:`may_affect`) checks each tracked query's subgoals
  against each changed fact: queries with no unifiable subgoal keep
  their answer memo verbatim (counted as ``memos_retained``); the rest
  are re-audited together through one shared
  :func:`~repro.cq.evaluation.delta_apply_many` pass, so the state
  advances once no matter how many queries watch it.

* **View publishes / retracts**.  These *do* change the question, so
  the session re-decides only the new pairs (every untouched pair is a
  cache hit), invalidates only the retracted view's
  :class:`~repro.session.cache.CriticalTupleCache` fingerprints
  (``crit_invalidated``), and drops only the kernel joint-distribution
  memos whose support overlaps the touched query's connected component
  (Proposition 4.13(3); ``kernel_invalidated``) — every other cached
  artifact survives and is lazily recomputed only if asked for again.

Every mutation returns a *notification document* (plain JSON) stating
what changed: which views' answers flipped, each secret's current
verdict (``secure`` — the static Theorem 4.5 decision — and ``exposed``
— insecure *and* currently non-empty), and what was retained versus
re-audited.  The audit service streams these documents to ``subscribe``
clients.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..cq import evaluate, match_atom_to_fact
from ..cq.evaluation import delta_apply_many, eval_engine_scope
from ..exceptions import SecurityAnalysisError
from ..obs import span
from ..obs.counters import StatCounters
from ..probability.dictionary import Dictionary
from ..relational.instance import Instance
from ..relational.schema import Schema
from ..relational.tuples import Fact
from .compile import as_query, canonical_query_key
from .session import AnalysisSession

__all__ = [
    "LiveAuditSession",
    "may_affect",
    "fact_from_document",
    "fact_to_document",
]


def may_affect(query, fact: Fact) -> bool:
    """Can inserting or deleting ``fact`` change ``query``'s answer?

    The sound screening of the delta classifier: a conjunctive query's
    answer can only change when the fact unifies with at least one body
    atom (relation, arity and constants must match); for a union, with
    some disjunct's atom.  ``False`` certifies the answer memo survives
    the delta verbatim — the query is not re-audited at all.
    """
    for disjunct in getattr(query, "disjuncts", None) or (query,):
        for atom in disjunct.body:
            if match_atom_to_fact(atom, fact) is not None:
                return True
    return False


def fact_from_document(document: Any) -> Fact:
    """Build a :class:`Fact` from its wire form.

    Accepts ``{"relation": "R", "values": [1, "a"]}`` or the compact
    ``["R", [1, "a"]]`` pair.
    """
    if isinstance(document, Mapping):
        relation = document.get("relation")
        values = document.get("values")
    elif isinstance(document, Sequence) and not isinstance(document, str) and len(document) == 2:
        relation, values = document
    else:
        relation, values = None, None
    if not isinstance(relation, str) or not isinstance(values, Sequence) or isinstance(values, str):
        raise SecurityAnalysisError(
            f"a fact document must be {{'relation': name, 'values': [...]}} or "
            f"[name, [...]], got {document!r}"
        )
    return Fact(relation, tuple(values))


def fact_to_document(fact: Fact) -> List[Any]:
    """The compact wire form of a fact (``["R", [values...]]``)."""
    return [fact.relation, list(fact.values)]


class LiveAuditSession:
    """One pinned (schema, dictionary, instance, views) state, audited live.

    Parameters
    ----------
    schema:
        The schema every secret, view and fact ranges over.
    secrets:
        Name → query (datalog string or parsed) mapping of the secrets
        under audit.
    views:
        Initially published views (name → query); more can be published
        and retracted later.
    facts:
        The initial database.
    store:
        A :class:`~repro.storage.sqlite.SQLiteFactStore` to audit *in
        place* (``facts`` are loaded into it); deltas then run on the
        sql engine against the store itself.  Without a store, facts
        live in an immutable :class:`~repro.relational.instance.Instance`
        advanced through the cache-patching single-fact deltas.
    dictionary / session / eval_engine / criticality_engine / cache_size:
        Forwarded to (or overriding) the underlying
        :class:`AnalysisSession`; pass ``session`` to share an existing
        one (and its critical-tuple cache) with other consumers.
    """

    def __init__(
        self,
        schema: Schema,
        *,
        secrets: Mapping[str, Any],
        views: Optional[Mapping[str, Any]] = None,
        facts: Iterable[Fact] = (),
        store: Optional[Any] = None,
        dictionary: Optional[Dictionary] = None,
        session: Optional[AnalysisSession] = None,
        eval_engine: Optional[str] = None,
        criticality_engine: Optional[str] = None,
        cache_size: int = 512,
    ):
        if not secrets:
            raise SecurityAnalysisError("a live audit session needs at least one secret")
        if session is None:
            session = AnalysisSession(
                schema,
                dictionary=dictionary,
                eval_engine=eval_engine,
                criticality_engine=criticality_engine,
                cache_size=cache_size,
            )
        self._session = session
        self._lock = threading.RLock()
        facts = tuple(facts)
        if store is not None:
            if facts:
                store.load_facts(facts)
            self._state: Any = store
        else:
            self._state = Instance(facts)
        self._secrets: "OrderedDict[str, Any]" = OrderedDict(
            (name, as_query(query, f"secret {name!r}")) for name, query in secrets.items()
        )
        self._views: "OrderedDict[str, Any]" = OrderedDict(
            (name, as_query(query, f"view {name!r}"))
            for name, query in (views or {}).items()
        )
        self.revision = 0
        #: Monotone counters of the incremental machinery: deltas applied,
        #: facts changed, queries re-audited vs. memos retained by the
        #: classifier, publish/retract traffic, targeted invalidations
        #: and verdict (``exposed``) flips.
        self.stats = StatCounters(
            (
                "deltas",
                "facts_added",
                "facts_removed",
                "queries_reaudited",
                "memos_retained",
                "publishes",
                "retracts",
                "crit_invalidated",
                "kernel_invalidated",
                "verdict_changes",
            )
        )
        # Initial full audit: answers for every tracked query, plus the
        # per-pair static decisions.  Everything after this is deltas.
        self._secret_answers: Dict[str, FrozenSet[Tuple[object, ...]]] = {}
        self._view_answers: Dict[str, FrozenSet[Tuple[object, ...]]] = {}
        self._decisions: Dict[str, Dict[str, bool]] = {}
        self._exposed: Dict[str, bool] = {}
        with self._lock, self._eval_scope():
            for name, query in self._secrets.items():
                self._secret_answers[name] = evaluate(query, self._state)
            for name, query in self._views.items():
                self._view_answers[name] = evaluate(query, self._state)
        for secret_name in self._secrets:
            self._decisions[secret_name] = {}
            for view_name in self._views:
                self._decide_pair(secret_name, view_name)
        for secret_name in self._secrets:
            self._exposed[secret_name] = self._exposed_now(secret_name)

    # -- introspection -----------------------------------------------------------
    @property
    def session(self) -> AnalysisSession:
        """The underlying analysis session (shared caches live here)."""
        return self._session

    @property
    def state(self) -> Any:
        """The current database (an ``Instance`` or the live store)."""
        return self._state

    @property
    def fact_count(self) -> int:
        """Number of facts currently in the database."""
        return len(self._state)

    @property
    def view_names(self) -> Tuple[str, ...]:
        """Currently published view names, in publication order."""
        return tuple(self._views)

    @property
    def secret_names(self) -> Tuple[str, ...]:
        """Tracked secret names."""
        return tuple(self._secrets)

    def _eval_scope(self):
        """Engine scope of every evaluation over the pinned state.

        A store-backed state must run on the sql engine (the other
        engines would materialise the store and quietly detach from
        it); in-memory states follow the session's pin.
        """
        if isinstance(self._state, Instance):
            return self._session.eval_scope()
        return eval_engine_scope("sql")

    # -- verdict bookkeeping -----------------------------------------------------
    def _decide_pair(self, secret_name: str, view_name: str) -> bool:
        secure = self._session.decide(
            self._secrets[secret_name], self._views[view_name]
        ).verdict
        self._decisions[secret_name][view_name] = bool(secure)
        return bool(secure)

    def _secure(self, secret_name: str) -> bool:
        """The static Theorem 4.5 verdict of one secret vs. all views.

        Singleton verdicts determine every coalition (the critical
        tuples of a view set are the union of the members'), so the
        secret is secure iff it is secure against each view alone.
        """
        return all(self._decisions[secret_name].values())

    def _exposed_now(self, secret_name: str) -> bool:
        return not self._secure(secret_name) and bool(self._secret_answers[secret_name])

    def _secret_verdicts(self, changed_secrets: frozenset) -> Dict[str, Dict[str, Any]]:
        verdicts: Dict[str, Dict[str, Any]] = {}
        for name in self._secrets:
            exposed = self._exposed_now(name)
            flipped = exposed != self._exposed.get(name, False)
            if flipped:
                self.stats.bump("verdict_changes")
            self._exposed[name] = exposed
            verdicts[name] = {
                "secure": self._secure(name),
                "exposed": exposed,
                "answer_size": len(self._secret_answers[name]),
                "changed": name in changed_secrets or flipped,
                "insecure_views": sorted(
                    view
                    for view, secure in self._decisions[name].items()
                    if not secure
                ),
            }
        return verdicts

    def _notification(
        self,
        op: str,
        *,
        changed_views: Mapping[str, Dict[str, Any]],
        changed_secrets: frozenset,
        **extra: Any,
    ) -> Dict[str, Any]:
        views_doc = {}
        for name in self._views:
            entry = dict(changed_views.get(name, {"changed": False}))
            entry["size"] = len(self._view_answers[name])
            views_doc[name] = entry
        secrets_doc = self._secret_verdicts(changed_secrets)
        flipped = sorted(
            name for name, entry in views_doc.items() if entry.get("changed")
        )
        return {
            "live": True,
            "event": op,
            "revision": self.revision,
            "fact_count": self.fact_count,
            "changed": bool(flipped)
            or any(entry["changed"] for entry in secrets_doc.values()),
            "flipped_views": flipped,
            "views": views_doc,
            "secrets": secrets_doc,
            **extra,
        }

    # -- fact deltas --------------------------------------------------------------
    def apply_delta(
        self, added: Iterable[Fact] = (), removed: Iterable[Fact] = ()
    ) -> Dict[str, Any]:
        """Advance the database by one batched delta; re-audit in delta time.

        Only queries the classifier cannot rule out are re-audited, all
        through one shared :func:`delta_apply_many` pass; every other
        answer memo (and every verdict, crit set and kernel memo — fact
        deltas cannot touch them) survives verbatim.  Returns the
        notification document describing what changed.
        """
        added = tuple(added)
        removed = tuple(removed)
        with self._lock, span("live.apply_delta"):
            changed_facts = added + removed
            tracked: List[Tuple[str, str, Any]] = [
                ("secret", name, query) for name, query in self._secrets.items()
            ] + [("view", name, query) for name, query in self._views.items()]
            affected = [
                entry
                for entry in tracked
                if any(may_affect(entry[2], fact) for fact in changed_facts)
            ]
            retained = len(tracked) - len(affected)
            with self._eval_scope():
                after, changes = delta_apply_many(
                    [query for _, _, query in affected], self._state, added, removed
                )
            fact_delta = len(after) - self.fact_count
            self._state = after
            self.revision += 1
            self.stats.bump("deltas")
            self.stats.bump("facts_added", len(added))
            self.stats.bump("facts_removed", len(removed))
            self.stats.bump("queries_reaudited", len(affected))
            self.stats.bump("memos_retained", retained)
            changed_views: Dict[str, Dict[str, Any]] = {}
            changed_secrets = set()
            for (kind, name, _), (gained, lost) in zip(affected, changes):
                if kind == "secret":
                    answers = self._secret_answers
                else:
                    answers = self._view_answers
                answers[name] = (answers[name] - lost) | gained
                if gained or lost:
                    if kind == "secret":
                        changed_secrets.add(name)
                    else:
                        changed_views[name] = {
                            "changed": True,
                            "gained": len(gained),
                            "lost": len(lost),
                        }
            return self._notification(
                "apply-delta",
                changed_views=changed_views,
                changed_secrets=frozenset(changed_secrets),
                added=len(added),
                removed=len(removed),
                net_facts=fact_delta,
                reaudited=sorted(name for _, name, _ in affected),
                retained=retained,
            )

    # -- view publishes / retracts -----------------------------------------------
    def publish(self, name: str, view: Any) -> Dict[str, Any]:
        """Publish (or replace) a view; decide only the new pairs."""
        with self._lock, span("live.publish"):
            if name in self._views:
                self.retract(name)
            query = as_query(view, f"view {name!r}")
            self._views[name] = query
            with self._eval_scope():
                self._view_answers[name] = evaluate(query, self._state)
            for secret_name in self._secrets:
                self._decide_pair(secret_name, name)
            self._invalidate_kernel(query)
            self.revision += 1
            self.stats.bump("publishes")
            return self._notification(
                "publish",
                changed_views={name: {"changed": True, "published": True}},
                changed_secrets=frozenset(),
                view=name,
            )

    def retract(self, name: str) -> Dict[str, Any]:
        """Retract a view; drop exactly its cached artifacts."""
        with self._lock, span("live.retract"):
            query = self._views.pop(name, None)
            if query is None:
                raise SecurityAnalysisError(f"no published view named {name!r}")
            self._view_answers.pop(name, None)
            for decisions in self._decisions.values():
                decisions.pop(name, None)
            key = canonical_query_key(query)
            dropped = self._session.cache.invalidate(
                lambda entry: isinstance(entry, tuple) and len(entry) >= 3 and entry[2] == key
            )
            self.stats.bump("crit_invalidated", dropped)
            self._invalidate_kernel(query)
            self.revision += 1
            self.stats.bump("retracts")
            return self._notification(
                "retract",
                changed_views={},
                changed_secrets=frozenset(),
                view=name,
                crit_invalidated=dropped,
            )

    def _invalidate_kernel(self, query) -> None:
        """Drop kernel memos in the touched connected component only."""
        dictionary = self._session.dictionary
        if dictionary is None:
            return
        from ..probability.kernel import ProbabilityKernel, _SHARED

        kernels = _SHARED.get(dictionary)
        if not kernels:
            return
        dropped = 0
        for kernel in kernels.values():
            try:
                dropped += kernel.invalidate_query(query)
            except Exception:  # noqa: BLE001 - invalidation is best-effort
                continue
        if dropped:
            self.stats.bump("kernel_invalidated", dropped)

    # -- snapshots and verification ----------------------------------------------
    def verdicts(self) -> Dict[str, Any]:
        """The current verdict document (what ``live-audit`` serves)."""
        with self._lock:
            return self._notification(
                "snapshot", changed_views={}, changed_secrets=frozenset()
            )

    def snapshot(self) -> Dict[str, Any]:
        """Verdicts plus session bookkeeping (counters, cache stats)."""
        with self._lock:
            document = self.verdicts()
            document["stats"] = dict(self.stats)
            document["cache"] = self._session.cache_stats.to_dict()
            document["secret_names"] = list(self._secrets)
            document["view_names"] = list(self._views)
            document["store_backed"] = not isinstance(self._state, Instance)
            return document

    def self_check(self) -> Dict[str, Any]:
        """Compare every maintained answer against a from-scratch evaluation.

        The incremental invariant: after any sequence of deltas, the
        maintained answers (and hence every verdict derived from them)
        must equal what a fresh audit of the current state computes.
        """
        with self._lock, self._eval_scope():
            mismatches = []
            for kind, answers, queries in (
                ("secret", self._secret_answers, self._secrets),
                ("view", self._view_answers, self._views),
            ):
                for name, query in queries.items():
                    fresh = evaluate(query, self._state)
                    if fresh != answers[name]:
                        mismatches.append(
                            {
                                "kind": kind,
                                "name": name,
                                "maintained": sorted(map(repr, answers[name])),
                                "fresh": sorted(map(repr, fresh)),
                            }
                        )
            return {"consistent": not mismatches, "mismatches": mismatches}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LiveAuditSession(revision={self.revision}, facts={self.fact_count}, "
            f"secrets={list(self._secrets)}, views={list(self._views)})"
        )
