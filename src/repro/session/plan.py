"""Publishing plans: the batch unit of a data-owner audit.

A real audit is rarely one (secret, view) pair: the owner holds several
secrets, proposes several views for several recipients, and wants every
secret checked against every coalition of recipients.
:class:`PublishingPlan` names the two sides; the session's
``audit_plan`` runs the batch while sharing every critical-tuple
computation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple, Union

from ..cq.query import ConjunctiveQuery
from ..cq.union import UnionQuery
from ..exceptions import SecurityAnalysisError

__all__ = ["PublishingPlan"]

_PlanQueries = Union[
    Mapping[str, Union[str, ConjunctiveQuery, UnionQuery]],
    Sequence[Union[str, ConjunctiveQuery, UnionQuery]],
]


def _named(queries: _PlanQueries, prefix: str) -> Dict[str, object]:
    if isinstance(queries, Mapping):
        return dict(queries)
    return {f"{prefix}{index + 1}": query for index, query in enumerate(queries)}


class PublishingPlan:
    """A batch of secrets and named views to audit together.

    Parameters
    ----------
    secrets:
        ``name → query`` (or a sequence; names are auto-generated as
        ``secret1, ...``).  Each query may be an object or a datalog
        string.
    views:
        ``recipient → view`` (or a sequence, auto-named ``user1, ...``).
    """

    def __init__(self, secrets: _PlanQueries, views: _PlanQueries):
        self._secrets = _named(secrets, "secret")
        self._views = _named(views, "user")
        if not self._secrets:
            raise SecurityAnalysisError("a publishing plan needs at least one secret")
        if not self._views:
            raise SecurityAnalysisError("a publishing plan needs at least one view")

    @property
    def secrets(self) -> Dict[str, object]:
        """``name → query`` for every secret."""
        return dict(self._secrets)

    @property
    def views(self) -> Dict[str, object]:
        """``recipient → view`` for every proposed view."""
        return dict(self._views)

    @property
    def secret_names(self) -> Tuple[str, ...]:
        """Secret names in declaration order."""
        return tuple(self._secrets)

    @property
    def recipients(self) -> Tuple[str, ...]:
        """Recipient names in declaration order."""
        return tuple(self._views)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PublishingPlan(secrets={list(self._secrets)}, "
            f"views={list(self._views)})"
        )
