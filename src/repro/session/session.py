"""The session-based front door of the analyzer.

:class:`AnalysisSession` separates *compilation* (normalize a query, fix
an analysis domain, memoize its critical tuples) from *analysis* (cheap
set operations over the cached artifacts), in the compile-then-execute
style of practical DP-for-SQL systems.  A data owner auditing one
publishing plan — many views, many secrets, many recipient subsets over
the same schema — pays for each ``crit_D(Q)`` exactly once::

    session = AnalysisSession(schema, dictionary=None, engine="exact")
    cs = session.compile("S(n, p) :- Emp(n, d, p)")
    session.decide(cs, "V(n, d) :- Emp(n, d, p)").secure
    session.collusion(cs, {"bob": v1, "carol": v2}).report.summary()
    session.audit_plan(PublishingPlan(secrets={...}, views={...})).render()

The legacy free functions (``decide_security``, ``analyse_collusion``,
``decide_with_knowledge``, ``positive_leakage``,
``classify_practical_security``) remain available and now delegate to a
module-level default session, so existing code inherits the caching
without changes.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core import domain_bounds
from ..core.criticality import CriticalityEngine, create_criticality_engine
from ..core.practical import practical_security_check
from ..core.prior import PriorKnowledge
from ..cq.evaluation import eval_engine_scope
from ..exceptions import SecurityAnalysisError
from ..obs import span
from ..probability.dictionary import Dictionary
from ..relational.domain import Domain
from ..relational.schema import Schema
from .cache import CacheStats, CriticalTupleCache, schema_fingerprint
from .compile import AnyQuery, CompiledQuery, QueryLike, as_query, canonical_query_key
from .engines import VerificationEngine, available_engines, create_engine
from .plan import PublishingPlan
from .results import (
    AnalysisResult,
    CollusionResult,
    DecisionResult,
    KnowledgeResult,
    LeakageAnalysis,
    PlanAuditResult,
    PlanEntry,
    PracticalResult,
    QuickCheckResult,
    VerificationResult,
)

__all__ = ["AnalysisSession"]

ViewsLike = Union[QueryLike, CompiledQuery, Sequence, Mapping[str, QueryLike]]


class AnalysisSession:
    """A compile-then-analyse front door over one schema.

    Parameters
    ----------
    schema:
        The database schema every secret and view ranges over.
    dictionary:
        Default dictionary for quantitative methods (:meth:`leakage`,
        :meth:`verify`); qualitative verdicts never need it.
    engine:
        Name of the per-dictionary verification engine (``"exact"`` or
        ``"sampling"``; see :mod:`repro.session.engines`).
    criticality_engine:
        Name (or instance) of the critical-tuple computation engine
        (``"pruned-parallel"`` — the default — ``"minimal"`` or
        ``"naive"``; see :mod:`repro.core.criticality`).  Every
        ``crit_D(Q)`` this session computes, including those behind the
        legacy free functions, goes through it; cache entries are keyed
        by the engine name so sessions with different engines never
        share (potentially engine-specific) results.
    domain:
        Optional analysis-domain override applied to every analysis
        (defaults to per-analysis Proposition 4.9 domains).
    cache / cache_size:
        Share an existing :class:`CriticalTupleCache` or size a fresh
        one.
    eval_engine:
        Query-evaluation engine pinned for this session's analyses
        (``"compiled"``, ``"naive"`` or ``"sql"``; see
        :mod:`repro.cq.evaluation`).  ``None`` — the default — defers to
        the ambient ``REPRO_EVAL_ENGINE`` selection.  The pin is a
        context-variable scope around each analysis, so concurrent
        sessions in one service process can run different engines; it
        does not reach criticality process-pool workers, which inherit
        the environment instead (verdicts are engine-independent).
    """

    def __init__(
        self,
        schema: Schema,
        dictionary: Optional[Dictionary] = None,
        engine: str = "exact",
        domain: Optional[Domain] = None,
        cache: Optional[CriticalTupleCache] = None,
        cache_size: int = 512,
        criticality_engine: Union[str, CriticalityEngine, None] = None,
        eval_engine: Optional[str] = None,
    ):
        if not isinstance(schema, Schema):
            raise SecurityAnalysisError(
                f"AnalysisSession needs a Schema, got {type(schema).__name__}"
            )
        self._schema = schema
        self._schema_fp = schema_fingerprint(schema)
        self._dictionary = dictionary
        self._engine_name = engine
        self._engine: VerificationEngine = create_engine(engine)
        self._criticality_engine: CriticalityEngine = create_criticality_engine(
            criticality_engine
        )
        self._domain = domain
        # Validate eagerly (a bad name should fail at construction, not
        # on the first analysis); the scope itself is applied per call.
        if eval_engine is not None:
            with eval_engine_scope(eval_engine) as resolved:
                eval_engine = resolved
        self._eval_engine = eval_engine
        self._cache = cache if cache is not None else CriticalTupleCache(cache_size)
        self._compiled: Dict[Tuple, CompiledQuery] = {}
        # Sessions are shared across the audit service's worker threads;
        # the critical-tuple cache is thread-safe on its own and this lock
        # covers the only other mutable state, the compiled-query memo.
        self._compile_lock = threading.Lock()

    # -- introspection -----------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The schema this session analyses."""
        return self._schema

    @property
    def dictionary(self) -> Optional[Dictionary]:
        """The session's default dictionary (may be ``None``)."""
        return self._dictionary

    @property
    def engine(self) -> VerificationEngine:
        """The configured per-dictionary verification engine."""
        return self._engine

    @property
    def engine_name(self) -> str:
        """Registry name of the verification engine."""
        return self._engine_name

    @property
    def criticality_engine(self) -> CriticalityEngine:
        """The configured critical-tuple computation engine."""
        return self._criticality_engine

    @property
    def criticality_engine_name(self) -> str:
        """Registry name of the criticality engine."""
        return self._criticality_engine.name

    @property
    def eval_engine(self) -> Optional[str]:
        """The pinned query-evaluation engine (``None`` → ambient)."""
        return self._eval_engine

    def eval_scope(self):
        """The evaluation-engine scope this session's analyses run under.

        A no-op scope when no engine is pinned; used internally around
        every analysis and exposed so the audit layer can wrap its own
        direct evaluation work in the same pin.
        """
        return eval_engine_scope(self._eval_engine)

    @property
    def cache(self) -> CriticalTupleCache:
        """The critical-tuple cache backing this session."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        return self._cache.stats()

    @property
    def critical_fn(self):
        """The cached critical-tuple provider of this session.

        A drop-in for :func:`repro.core.critical.critical_tuples`; the
        core decision procedures accept it via their ``critical_fn``
        parameter, which is how the audit layer shares this session's
        cache.
        """
        return self._critical_fn

    # -- compilation -------------------------------------------------------------
    def compile(self, query: Union[QueryLike, CompiledQuery]) -> CompiledQuery:
        """Prepare a query for repeated analysis.

        Strings are parsed; α-equivalent queries share one
        :class:`CompiledQuery` (and hence one cache slot).
        """
        if isinstance(query, CompiledQuery):
            return query
        parsed = as_query(query)
        key = canonical_query_key(parsed)
        with self._compile_lock:
            compiled = self._compiled.get(key)
            if compiled is None:
                compiled = CompiledQuery(self, parsed)
                if len(self._compiled) >= 4 * self._cache.maxsize:
                    self._compiled.clear()  # unbounded growth guard; recompiling is cheap
                self._compiled[key] = compiled
        return compiled

    def critical_tuples(self, query: Union[QueryLike, CompiledQuery], domain: Optional[Domain] = None):
        """``crit_D(Q)`` over ``domain`` through the session cache.

        ``domain`` defaults to the session override or the query's own
        Proposition 4.9 domain.  The computation runs over the untyped
        analysis schema exactly as the decision procedures do.
        """
        parsed = self._unwrap(query)
        if domain is None:
            domain = self._domain or domain_bounds.analysis_domain([parsed])
        working_schema = domain_bounds.untyped_schema(self._schema, domain)
        return self._critical_fn(parsed, working_schema, domain)

    def _unwrap(self, query: Union[QueryLike, CompiledQuery], role: str = "query") -> AnyQuery:
        if isinstance(query, CompiledQuery):
            return query.query
        return as_query(query, role)

    def _critical_fn(self, query, schema, domain=None, constraint=None, **options):
        """The cached drop-in for the engines' ``critical_tuples``.

        Constraint-relative sets (``crit_D(Q, K)``) are computed directly:
        constraints are opaque callables and cannot be part of a sound
        cache key.  The key includes the criticality-engine name so a
        (hypothetically buggy or third-party) engine can never poison a
        cache shared with sessions running a different engine.

        Cost-guard options such as ``max_valuations`` are deliberately
        *not* part of the key: they bound the computation, not the
        result, so a warm cache may serve a set that a colder cache
        would have refused to compute under a tighter bound.
        """
        def compute(*args, **kwargs):
            with span("criticality.compute"), self.eval_scope():
                return self._criticality_engine.critical_tuples(*args, **kwargs)

        if constraint is not None:
            return compute(query, schema, domain, constraint, **options)
        if domain is None:
            domain = schema.domain
        key = (
            self._criticality_engine.name,
            schema_fingerprint(schema),
            canonical_query_key(query),
            tuple(domain.values),
        )
        return self._cache.get_or_compute(
            key, lambda: compute(query, schema, domain, None, **options)
        )

    # -- result plumbing ---------------------------------------------------------
    def _finish(self, result_cls, kind, verdict, started, before, **fields) -> AnalysisResult:
        elapsed = time.perf_counter() - started
        used = self._cache.stats().delta(before)
        return result_cls(
            kind=kind,
            verdict=verdict,
            elapsed_seconds=elapsed,
            cache_used=used,
            **fields,
        )

    @staticmethod
    def _is_view_collection(item) -> bool:
        """True for containers of views (legacy callers pass any iterable)."""
        if isinstance(item, (str, CompiledQuery)):
            return False
        return isinstance(item, Mapping) or hasattr(item, "__iter__")

    def _normalise_views(self, views: Tuple) -> List[AnyQuery]:
        """Flatten ``*views`` varargs into a list of query objects."""
        flattened: List[AnyQuery] = []
        for item in views:
            if isinstance(item, Mapping):
                flattened.extend(self._unwrap(v, "view") for v in item.values())
            elif self._is_view_collection(item):
                flattened.extend(self._unwrap(v, "view") for v in item)
            else:
                flattened.append(self._unwrap(item, "view"))
        return flattened

    def _named_views(self, views: ViewsLike) -> Dict[str, AnyQuery]:
        if isinstance(views, Mapping):
            return {name: self._unwrap(v, "view") for name, v in views.items()}
        if isinstance(views, (list, tuple)):
            return {
                f"user{i + 1}": self._unwrap(v, "view") for i, v in enumerate(views)
            }
        return {"user1": self._unwrap(views, "view")}

    # -- analyses ----------------------------------------------------------------
    def decide(
        self,
        secret: Union[QueryLike, CompiledQuery],
        *views: ViewsLike,
        domain: Optional[Domain] = None,
    ) -> DecisionResult:
        """Dictionary-independent security decision (Theorem 4.5)."""
        from ..core.security import decide_security

        secret_query = self._unwrap(secret, "secret")
        view_list = self._normalise_views(views)
        before = self._cache.stats()
        started = time.perf_counter()
        with span("session.decide"), self.eval_scope():
            decision = decide_security(
                secret_query,
                view_list,
                self._schema,
                domain=domain or self._domain,
                critical_fn=self._critical_fn,
            )
        return self._finish(
            DecisionResult, "decide", decision.secure, started, before, decision=decision
        )

    def leakage(
        self,
        secret: Union[QueryLike, CompiledQuery],
        *views: ViewsLike,
        dictionary: Optional[Dictionary] = None,
        max_secret_rows: int = 1,
        max_view_rows: int = 1,
        max_support_size: Optional[int] = None,
    ) -> LeakageAnalysis:
        """Measure the positive disclosure ``leak(S, V̄)`` (Section 6.1)."""
        from ..core.leakage import _positive_leakage

        dictionary = dictionary or self._dictionary
        if dictionary is None:
            raise SecurityAnalysisError(
                "measuring leakage requires a dictionary; pass one to the session "
                "or to leakage()"
            )
        secret_query = self._unwrap(secret, "secret")
        view_list = self._normalise_views(views)
        before = self._cache.stats()
        started = time.perf_counter()
        with span("session.leakage"), self.eval_scope():
            measurement = _positive_leakage(
                secret_query,
                view_list,
                dictionary,
                max_secret_rows=max_secret_rows,
                max_view_rows=max_view_rows,
                max_support_size=max_support_size,
            )
        return self._finish(
            LeakageAnalysis,
            "leakage",
            measurement.leakage == 0,
            started,
            before,
            measurement=measurement,
        )

    def collusion(
        self,
        secret: Union[QueryLike, CompiledQuery],
        views: ViewsLike,
        domain: Optional[Domain] = None,
    ) -> CollusionResult:
        """Multi-party collusion analysis; each ``crit_D`` computed once."""
        from ..core.collusion import analyse_collusion

        secret_query = self._unwrap(secret, "secret")
        if isinstance(views, Mapping):
            normalised: Union[Dict[str, AnyQuery], List[AnyQuery]] = {
                name: self._unwrap(v, "view") for name, v in views.items()
            }
        elif self._is_view_collection(views):
            normalised = [self._unwrap(v, "view") for v in views]
        else:
            normalised = [self._unwrap(views, "view")]
        before = self._cache.stats()
        started = time.perf_counter()
        with span("session.collusion"), self.eval_scope():
            report = analyse_collusion(
                secret_query,
                normalised,
                self._schema,
                domain=domain or self._domain,
                critical_fn=self._critical_fn,
            )
        return self._finish(
            CollusionResult,
            "collusion",
            report.secure_overall,
            started,
            before,
            report=report,
        )

    def with_knowledge(
        self,
        secret: Union[QueryLike, CompiledQuery],
        views: ViewsLike,
        knowledge: PriorKnowledge,
        domain: Optional[Domain] = None,
    ) -> KnowledgeResult:
        """Security under prior knowledge (Section 5 corollaries)."""
        from ..core.prior import decide_with_knowledge

        if not isinstance(knowledge, PriorKnowledge):
            raise SecurityAnalysisError(
                f"with_knowledge expects a PriorKnowledge instance, "
                f"got {type(knowledge).__name__}"
            )
        secret_query = self._unwrap(secret, "secret")
        view_list = self._normalise_views((views,))
        before = self._cache.stats()
        started = time.perf_counter()
        with span("session.with-knowledge"), self.eval_scope():
            decision = decide_with_knowledge(
                secret_query,
                view_list,
                knowledge,
                self._schema,
                domain=domain or self._domain,
                critical_fn=self._critical_fn,
                criticality_engine=self._criticality_engine,
            )
        return self._finish(
            KnowledgeResult,
            "with-knowledge",
            decision.secure,
            started,
            before,
            decision=decision,
        )

    def practical(
        self,
        secret: Union[QueryLike, CompiledQuery],
        view: Union[QueryLike, CompiledQuery],
        expected_sizes=1.0,
        zero_threshold: float = 1e-12,
    ) -> PracticalResult:
        """Asymptotic ("practical") security classification (Section 6.2)."""
        from ..core.asymptotic import PracticalSecurityLevel, classify_practical_security

        secret_query = self._unwrap(secret, "secret")
        view_query = self._unwrap(view, "view")
        before = self._cache.stats()
        started = time.perf_counter()
        with span("session.practical"), self.eval_scope():
            report = classify_practical_security(
                secret_query,
                view_query,
                self._schema,
                expected_sizes=expected_sizes,
                zero_threshold=zero_threshold,
                critical_fn=self._critical_fn,
            )
        verdict = report.level is not PracticalSecurityLevel.PRACTICAL_DISCLOSURE
        return self._finish(
            PracticalResult, "practical", verdict, started, before, report=report
        )

    def quick_check(
        self, secret: Union[QueryLike, CompiledQuery], *views: ViewsLike
    ) -> QuickCheckResult:
        """The sound subgoal-unification screening (Section 4.2)."""
        secret_query = self._unwrap(secret, "secret")
        view_list = self._normalise_views(views)
        before = self._cache.stats()
        started = time.perf_counter()
        with span("session.quick-check"), self.eval_scope():
            check = practical_security_check(secret_query, view_list)
        verdict = True if check.certainly_secure else None
        return self._finish(
            QuickCheckResult, "quick-check", verdict, started, before, check=check
        )

    def verify(
        self,
        secret: Union[QueryLike, CompiledQuery],
        *views: ViewsLike,
        dictionary: Optional[Dictionary] = None,
        **options,
    ) -> VerificationResult:
        """Per-dictionary Definition 4.1 check via the configured engine."""
        dictionary = dictionary or self._dictionary
        if dictionary is None:
            raise SecurityAnalysisError(
                "verification requires a dictionary; pass one to the session or "
                "to verify()"
            )
        secret_query = self._unwrap(secret, "secret")
        view_list = self._normalise_views(views)
        if not view_list:
            raise SecurityAnalysisError("at least one view is required")
        before = self._cache.stats()
        started = time.perf_counter()
        with span("session.verify"), self.eval_scope():
            verdict = self._engine.verify(secret_query, view_list, dictionary, **options)
        return self._finish(
            VerificationResult,
            "verify",
            bool(verdict),
            started,
            before,
            engine=self._engine_name,
        )

    # -- batch audits --------------------------------------------------------------
    def audit_plan(
        self, plan: PublishingPlan, domain: Optional[Domain] = None
    ) -> PlanAuditResult:
        """Audit every secret × view pair of a publishing plan.

        One analysis domain (Proposition 4.9, sized for the whole batch)
        is shared by every decision, so each view's and each secret's
        critical tuples are computed exactly once and every subsequent
        pair is a cached set intersection.  By Theorem 4.5 the singleton
        verdicts determine every coalition, so the result covers all
        secret × view-subset pairs.
        """
        from ..core.security import decide_security

        if not isinstance(plan, PublishingPlan):
            raise SecurityAnalysisError(
                f"audit_plan expects a PublishingPlan, got {type(plan).__name__}"
            )
        secrets = {
            name: self._unwrap(query, f"secret {name!r}")
            for name, query in plan.secrets.items()
        }
        views = {
            recipient: self._unwrap(query, f"view for {recipient!r}")
            for recipient, query in plan.views.items()
        }
        before = self._cache.stats()
        started = time.perf_counter()
        if domain is None and self._domain is None:
            domain = domain_bounds.analysis_domain(
                [*secrets.values(), *views.values()]
            )
        elif domain is None:
            domain = self._domain

        entries: List[PlanEntry] = []
        for secret_name, secret_query in secrets.items():
            for recipient, view_query in views.items():
                with span("session.audit-plan"), self.eval_scope():
                    decision = decide_security(
                        secret_query,
                        view_query,
                        self._schema,
                        domain=domain,
                        critical_fn=self._critical_fn,
                    )
                entries.append(
                    PlanEntry(
                        secret_name=secret_name,
                        recipient=recipient,
                        view_name=view_query.name,
                        secure=decision.secure,
                        decision=decision,
                    )
                )
        verdict = all(entry.secure for entry in entries)
        return self._finish(
            PlanAuditResult,
            "audit-plan",
            verdict,
            started,
            before,
            entries=tuple(entries),
            secret_names=tuple(secrets),
            recipients=tuple(views),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalysisSession(schema={self._schema!r}, engine={self._engine_name!r}, "
            f"criticality_engine={self._criticality_engine.name!r}, "
            f"cache={self._cache.stats()!r})"
        )
