"""Module-level default sessions backing the legacy free functions.

``decide_security`` and friends predate :class:`AnalysisSession`; they
now delegate here so that legacy callers inherit the critical-tuple
caching for free.  One session is kept per schema fingerprint (bounded,
LRU), and all of them share one process-wide cache — two schemas with
the same relations reuse each other's critical-tuple sets because the
cache key embeds the (untyped) working-schema fingerprint anyway.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from ..relational.schema import Schema
from .cache import CriticalTupleCache, schema_fingerprint
from .session import AnalysisSession

__all__ = ["default_session", "default_cache", "reset_default_sessions"]

#: Bound on the number of schemas with a live default session.
_MAX_DEFAULT_SESSIONS = 16

_lock = threading.Lock()
_shared_cache: Optional[CriticalTupleCache] = None
_sessions: "OrderedDict[object, AnalysisSession]" = OrderedDict()


def default_cache() -> CriticalTupleCache:
    """The process-wide critical-tuple cache shared by default sessions."""
    global _shared_cache
    with _lock:
        if _shared_cache is None:
            _shared_cache = CriticalTupleCache()
        return _shared_cache


def default_session(schema: Schema) -> AnalysisSession:
    """The default :class:`AnalysisSession` for ``schema``.

    Sessions are keyed by schema fingerprint and bounded LRU; they all
    share :func:`default_cache`, so even schema churn keeps the
    underlying critical-tuple sets hot.
    """
    key = schema_fingerprint(schema)
    cache = default_cache()
    with _lock:
        session = _sessions.get(key)
        if session is not None:
            _sessions.move_to_end(key)
            return session
        session = AnalysisSession(schema, cache=cache)
        if len(_sessions) >= _MAX_DEFAULT_SESSIONS:
            _sessions.popitem(last=False)
        _sessions[key] = session
        return session


def reset_default_sessions() -> None:
    """Drop every default session and the shared cache (tests, benchmarks)."""
    global _shared_cache
    with _lock:
        _sessions.clear()
        _shared_cache = None
