"""Module-level default sessions backing the legacy free functions.

``decide_security`` and friends predate :class:`AnalysisSession`; they
now delegate here so that legacy callers inherit the critical-tuple
caching for free.  One session is kept per schema fingerprint (bounded,
LRU), and all of them share one process-wide cache — two schemas with
the same relations reuse each other's critical-tuple sets because the
cache key embeds the (untyped) working-schema fingerprint anyway.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from ..core.criticality import DEFAULT_CRITICALITY_ENGINE
from ..relational.schema import Schema
from .cache import CriticalTupleCache, schema_fingerprint
from .session import AnalysisSession

__all__ = ["default_session", "default_cache", "reset_default_sessions"]

#: Bound on the number of (schema, criticality engine) pairs with a live
#: default session.
_MAX_DEFAULT_SESSIONS = 16

_lock = threading.Lock()
_shared_cache: Optional[CriticalTupleCache] = None
_sessions: "OrderedDict[object, AnalysisSession]" = OrderedDict()


def default_cache() -> CriticalTupleCache:
    """The process-wide critical-tuple cache shared by default sessions."""
    global _shared_cache
    with _lock:
        if _shared_cache is None:
            _shared_cache = CriticalTupleCache()
        return _shared_cache


def default_session(
    schema: Schema, criticality_engine: Optional[str] = None
) -> AnalysisSession:
    """The default :class:`AnalysisSession` for ``schema``.

    Sessions are keyed by (schema fingerprint, criticality engine) and
    bounded LRU; they all share :func:`default_cache`, so even schema
    churn keeps the underlying critical-tuple sets hot (the shared cache
    keys embed the engine name, so engines never mix).
    ``criticality_engine`` defaults to the package default
    (``pruned-parallel``); the legacy free functions pass their
    ``criticality_engine`` keyword through here.
    """
    engine_name = criticality_engine or DEFAULT_CRITICALITY_ENGINE
    key = (schema_fingerprint(schema), engine_name)
    cache = default_cache()
    with _lock:
        session = _sessions.get(key)
        if session is not None:
            _sessions.move_to_end(key)
            return session
        session = AnalysisSession(
            schema, cache=cache, criticality_engine=engine_name
        )
        if len(_sessions) >= _MAX_DEFAULT_SESSIONS:
            _sessions.popitem(last=False)
        _sessions[key] = session
        return session


def reset_default_sessions() -> None:
    """Drop every default session and the shared cache (tests, benchmarks)."""
    global _shared_cache
    with _lock:
        _sessions.clear()
        _shared_cache = None
