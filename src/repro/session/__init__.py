"""Session-based analysis API: compile once, analyse many times.

The package separates query *compilation* (normal form, analysis-domain
fingerprint, memoized critical tuples) from *analysis* (cheap set
operations over the cached artifacts):

* :class:`AnalysisSession` — the front door; one per schema.
* :class:`CompiledQuery` — a prepared query with lazily-cached
  ``crit_D(Q)``.
* :class:`CriticalTupleCache` / :class:`CacheStats` — the bounded LRU
  sharing layer.
* :class:`PublishingPlan` / ``AnalysisSession.audit_plan`` — batch
  audits of secrets × views × coalitions.
* :class:`LiveAuditSession` — a pinned (schema, instance, views) state
  re-audited incrementally as facts and views change (delta classifier,
  targeted cache invalidation; see :mod:`repro.session.live`).
* :mod:`~repro.session.engines` — named per-dictionary verification
  engines (``"exact"``, ``"sampling"``).
* :mod:`repro.core.criticality` — named ``crit_D`` computation engines
  (``"pruned-parallel"`` — the default — ``"minimal"``, ``"naive"``),
  selected per session via ``AnalysisSession(criticality_engine=...)``.
* :mod:`~repro.session.results` — the unified :class:`AnalysisResult`
  hierarchy every session method returns.
"""

from .cache import CacheStats, CriticalTupleCache, schema_fingerprint
from .compile import CompiledQuery, as_query, canonical_query_key, query_fingerprint
from .default import default_cache, default_session, reset_default_sessions
from .live import LiveAuditSession, fact_from_document, fact_to_document, may_affect
from .engines import (
    ExactVerificationEngine,
    SamplingVerificationEngine,
    VerificationEngine,
    available_engines,
    create_engine,
    register_engine,
)
from .plan import PublishingPlan
from .results import (
    AnalysisResult,
    CollusionResult,
    DecisionResult,
    KnowledgeResult,
    LeakageAnalysis,
    PlanAuditResult,
    PlanEntry,
    PracticalResult,
    QuickCheckResult,
    VerificationResult,
)
from .session import AnalysisSession

__all__ = [
    "AnalysisSession",
    "LiveAuditSession",
    "may_affect",
    "fact_from_document",
    "fact_to_document",
    "CompiledQuery",
    "CriticalTupleCache",
    "CacheStats",
    "PublishingPlan",
    "canonical_query_key",
    "query_fingerprint",
    "schema_fingerprint",
    "as_query",
    "default_session",
    "default_cache",
    "reset_default_sessions",
    "VerificationEngine",
    "ExactVerificationEngine",
    "SamplingVerificationEngine",
    "register_engine",
    "create_engine",
    "available_engines",
    "AnalysisResult",
    "DecisionResult",
    "CollusionResult",
    "KnowledgeResult",
    "LeakageAnalysis",
    "PracticalResult",
    "QuickCheckResult",
    "VerificationResult",
    "PlanEntry",
    "PlanAuditResult",
]
