"""Bounded collection of finished traces, with head+tail+slow sampling.

Keeping *every* trace of a busy fleet is out of the question, and
keeping only the most recent window loses exactly the traces an
operator wants (the first requests after a deploy, the slowest ones of
the hour).  The buffer therefore samples three ways at once:

* **head** — the first ``head`` traces since the last reset, verbatim
  (cold-start behaviour: session construction, first kernel build);
* **tail** — a ring of the most recent ``tail`` traces (what is
  happening right now);
* **slow** — the ``slow`` largest-duration traces seen so far, kept in
  a min-heap (the outliers, which the tail ring would age out).

Snapshots are plain JSON and *mergeable*: :func:`merge_trace_snapshots`
combines per-worker snapshots into one fleet-wide document with the
same shape, re-trimming each section and marking ``partial`` when a
worker's part was missing or malformed.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = ["TraceBuffer", "TRACES", "merge_trace_snapshots"]

#: Default section bounds of the process-wide buffer.
DEFAULT_HEAD = 16
DEFAULT_TAIL = 64
DEFAULT_SLOW = 16


class TraceBuffer:
    """A bounded, thread-safe store of finished trace documents."""

    def __init__(
        self, head: int = DEFAULT_HEAD, tail: int = DEFAULT_TAIL, slow: int = DEFAULT_SLOW
    ):
        self._head_limit = max(0, head)
        self._slow_limit = max(0, slow)
        self._lock = threading.Lock()
        self._head: List[Dict[str, Any]] = []
        self._tail: "deque[Dict[str, Any]]" = deque(maxlen=max(1, tail))
        #: Min-heap of (duration_ms, tiebreak, trace) — the root is the
        #: *fastest* of the kept slow traces, evicted first.
        self._slow: List[Any] = []
        self._counter = itertools.count()
        self._recorded = 0

    def record(self, trace_doc: Mapping[str, Any]) -> None:
        """Store one finished trace document."""
        document = dict(trace_doc)
        duration = float(document.get("duration_ms") or 0.0)
        with self._lock:
            self._recorded += 1
            if len(self._head) < self._head_limit:
                self._head.append(document)
            self._tail.append(document)
            if self._slow_limit:
                entry = (duration, next(self._counter), document)
                if len(self._slow) < self._slow_limit:
                    heapq.heappush(self._slow, entry)
                elif duration > self._slow[0][0]:
                    heapq.heapreplace(self._slow, entry)

    def reset(self) -> None:
        """Clear every section (tests/benchmarks)."""
        with self._lock:
            self._head.clear()
            self._tail.clear()
            self._slow.clear()
            self._recorded = 0

    def find(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The stored trace with this id, if any section still holds it."""
        with self._lock:
            for section in (self._tail, self._head, [e[2] for e in self._slow]):
                for document in section:
                    if document.get("trace_id") == trace_id:
                        return document
        return None

    def snapshot(self) -> Dict[str, Any]:
        """Every section as one JSON-serialisable, mergeable document."""
        with self._lock:
            slow = [entry[2] for entry in sorted(self._slow, reverse=True)]
            return {
                "recorded": self._recorded,
                "head": list(self._head),
                "tail": list(self._tail),
                "slow": slow,
                "limits": {
                    "head": self._head_limit,
                    "tail": self._tail.maxlen,
                    "slow": self._slow_limit,
                },
            }


#: The per-process buffer every server records into.
TRACES = TraceBuffer()


def merge_trace_snapshots(parts: Iterable[Any]) -> Dict[str, Any]:
    """Combine per-worker trace snapshots into one fleet-wide document.

    Malformed or missing parts (a worker died between polls) are
    skipped and surfaced as ``partial: true`` instead of raising —
    mirroring :func:`repro.service.metrics.merge_snapshots`.
    """
    head: List[Dict[str, Any]] = []
    tail: List[Dict[str, Any]] = []
    slow: List[Dict[str, Any]] = []
    recorded = 0
    partial = False
    for part in parts:
        if not isinstance(part, Mapping):
            partial = True
            continue
        count = part.get("recorded")
        if isinstance(count, int):
            recorded += count
        head.extend(d for d in (part.get("head") or []) if isinstance(d, Mapping))
        tail.extend(d for d in (part.get("tail") or []) if isinstance(d, Mapping))
        slow.extend(d for d in (part.get("slow") or []) if isinstance(d, Mapping))

    def _started(document: Mapping[str, Any]) -> float:
        value = document.get("started")
        return float(value) if isinstance(value, (int, float)) else 0.0

    def _duration(document: Mapping[str, Any]) -> float:
        value = document.get("duration_ms")
        return float(value) if isinstance(value, (int, float)) else 0.0

    head.sort(key=_started)
    tail.sort(key=_started)
    slow.sort(key=_duration, reverse=True)
    merged: Dict[str, Any] = {
        "recorded": recorded,
        "head": [dict(d) for d in head[:DEFAULT_HEAD]],
        "tail": [dict(d) for d in tail[-DEFAULT_TAIL:]],
        "slow": [dict(d) for d in slow[:DEFAULT_SLOW]],
    }
    if partial:
        merged["partial"] = True
    return merged
