"""Thread-safe counter dictionaries for the engine statistics.

The evaluation/storage/kernel counters (``STATS``, ``SQL_STATS``,
``STORAGE_STATS``, ``INDEX_STATS``, per-kernel ``stats``) are plain
dicts bumped with ``d[key] += 1`` from whatever thread happens to be
evaluating — under ``--worker-threads > 1`` that read-modify-write
races and increments are silently lost.  :class:`StatCounters` is a
``dict`` subclass (so every existing read, ``in`` check, and iteration
keeps working) whose *writes* go through :meth:`bump` under a lock.

The ``+=`` statement itself cannot be made atomic from inside the
mapping — the read and the store are separate bytecodes in the caller —
so call sites must use ``counters.bump("key")`` instead.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Mapping, Union

__all__ = ["StatCounters"]


class StatCounters(dict):
    """A dict of integer counters with lock-guarded mutation."""

    def __init__(self, keys: Union[Iterable[str], Mapping[str, int]] = ()):
        if isinstance(keys, Mapping):
            super().__init__({key: int(value) for key, value in keys.items()})
        else:
            super().__init__({key: 0 for key in keys})
        self._lock = threading.Lock()

    def bump(self, key: str, amount: int = 1) -> int:
        """Atomically add ``amount`` to ``key`` (creating it at zero)."""
        with self._lock:
            value = self.get(key, 0) + amount
            dict.__setitem__(self, key, value)
            return value

    def reset(self) -> None:
        """Zero every counter, keeping the key set."""
        with self._lock:
            for key in self:
                dict.__setitem__(self, key, 0)

    def snapshot(self) -> Dict[str, int]:
        """A consistent plain-dict copy."""
        with self._lock:
            return dict(self)
