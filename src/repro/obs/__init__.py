"""Tracing and telemetry for the audit service (stdlib-only).

The package has four parts:

* :mod:`repro.obs.trace` — trace contexts and span trees.  A trace is
  opened at the client or router (:func:`start_trace`), propagated via
  the wire protocol's ``trace`` envelope field, and instrumentation
  points call :func:`span` — which is a single module-global boolean
  check plus a shared null object when tracing is off.
* :mod:`repro.obs.buffer` — a bounded per-process buffer of finished
  traces with head+tail+slow sampling, merged fleet-wide by the
  ``traces`` service operation.
* :mod:`repro.obs.slowlog` — the structured slow-request log (JSON
  lines naming the dominant span).
* :mod:`repro.obs.prom` / :mod:`repro.obs.counters` — Prometheus text
  exposition of the merged service metrics, and the thread-safe counter
  dict the engine statistics use.
* :mod:`repro.obs.render` — plain-text span waterfalls and the live
  ``repro-audit top`` view.
"""

from __future__ import annotations

from .buffer import TRACES, TraceBuffer, merge_trace_snapshots
from .counters import StatCounters
from .prom import CONTENT_TYPE, render_prometheus
from .render import render_top, render_waterfall, span_names
from .slowlog import SLOW_LOG_ENV, SLOW_MS_ENV, SlowLog, slow_log_from_env
from .trace import (
    DEFAULT_SPAN_LIMIT,
    TRACE_ENV,
    Span,
    Trace,
    current_span,
    current_trace,
    dominant_span,
    install_from_env,
    new_trace_id,
    record_span,
    set_tracing,
    span,
    start_trace,
    tracing_enabled,
    walk_spans,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_SPAN_LIMIT",
    "SLOW_LOG_ENV",
    "SLOW_MS_ENV",
    "Span",
    "StatCounters",
    "SlowLog",
    "TRACES",
    "TRACE_ENV",
    "Trace",
    "TraceBuffer",
    "current_span",
    "current_trace",
    "dominant_span",
    "install_from_env",
    "merge_trace_snapshots",
    "new_trace_id",
    "record_span",
    "render_prometheus",
    "render_top",
    "render_waterfall",
    "reset_stats",
    "span_names",
    "set_tracing",
    "slow_log_from_env",
    "span",
    "start_trace",
    "tracing_enabled",
    "walk_spans",
]


def reset_stats() -> None:
    """Reset every process-wide statistic: engine counters and traces.

    Benchmarks call this between phases so each measurement starts from
    a clean slate.
    """
    from ..cq.compiled import reset_evaluation_stats

    reset_evaluation_stats()
    TRACES.reset()
