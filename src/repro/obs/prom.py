"""Prometheus text-exposition rendering of the service metrics.

The ``metrics`` service operation answers with this module's output:
plain `text/plain; version=0.0.4` exposition — counters per (operation,
outcome), true cumulative histogram buckets per operation (maintained
by :class:`repro.service.metrics.ServiceMetrics`, merged fleet-wide
before rendering), and point-in-time gauges (pending work, connections,
sessions, uptime).  Stdlib-only: the text format is simple enough that
a client library would be pure weight.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

__all__ = ["render_prometheus", "CONTENT_TYPE"]

#: The content type Prometheus scrapers expect for this output.
CONTENT_TYPE = "text/plain; version=0.0.4"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(str(value))}"' for key, value in labels.items())
    return "{" + inner + "}"


def _number(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    stats: Mapping[str, Any],
    gauges: Optional[Mapping[str, Any]] = None,
    prefix: str = "repro",
) -> str:
    """Render one merged metrics document as Prometheus text exposition.

    ``stats`` is the document :func:`repro.service.metrics.merge_snapshots`
    (or ``ServiceMetrics.snapshot``) produces: an ``operations`` mapping
    with per-outcome counters and, when present, a ``histogram`` block
    of cumulative bucket counts.  ``gauges`` adds point-in-time values
    (``{"pending": 3, ...}``), each becoming ``<prefix>_<name>``.
    """
    lines: List[str] = []
    operations = stats.get("operations") or {}

    lines.append(f"# HELP {prefix}_requests_total Requests handled, by operation and outcome.")
    lines.append(f"# TYPE {prefix}_requests_total counter")
    for op in sorted(operations):
        entry = operations[op] or {}
        for outcome in sorted(k for k in entry if k not in ("requests", "latency_ms", "histogram")):
            count = entry[outcome]
            if isinstance(count, int):
                lines.append(
                    f"{prefix}_requests_total{_labels({'op': op, 'outcome': outcome})} {count}"
                )

    histogram_ops = [
        op for op in sorted(operations) if isinstance((operations[op] or {}).get("histogram"), Mapping)
    ]
    if histogram_ops:
        lines.append(
            f"# HELP {prefix}_request_duration_ms Request latency, cumulative histogram (milliseconds)."
        )
        lines.append(f"# TYPE {prefix}_request_duration_ms histogram")
        for op in histogram_ops:
            histogram = operations[op]["histogram"]
            buckets = histogram.get("buckets_ms") or {}
            total = histogram.get("count", 0)

            def _le_key(item):
                le = item[0]
                return float("inf") if le in ("+Inf", "inf") else float(le)

            for le, count in sorted(buckets.items(), key=_le_key):
                lines.append(
                    f"{prefix}_request_duration_ms_bucket{_labels({'op': op, 'le': le})} {count}"
                )
            lines.append(
                f"{prefix}_request_duration_ms_bucket{_labels({'op': op, 'le': '+Inf'})} {total}"
            )
            lines.append(
                f"{prefix}_request_duration_ms_sum{_labels({'op': op})} "
                f"{_number(histogram.get('sum_ms', 0.0))}"
            )
            lines.append(f"{prefix}_request_duration_ms_count{_labels({'op': op})} {total}")

    totals = stats.get("totals") or {}
    if isinstance(totals.get("requests"), int):
        lines.append(f"# HELP {prefix}_requests_handled_total Requests handled, all operations.")
        lines.append(f"# TYPE {prefix}_requests_handled_total counter")
        lines.append(f"{prefix}_requests_handled_total {totals['requests']}")

    if gauges:
        for name in sorted(gauges):
            value = gauges[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            lines.append(f"# TYPE {prefix}_{name} gauge")
            lines.append(f"{prefix}_{name} {_number(value)}")

    uptime = stats.get("uptime_seconds")
    if isinstance(uptime, (int, float)):
        lines.append(f"# TYPE {prefix}_uptime_seconds gauge")
        lines.append(f"{prefix}_uptime_seconds {_number(uptime)}")

    return "\n".join(lines) + "\n"
