"""Trace contexts and span trees for the audit service.

One *trace* covers one request end to end — router, coalescer, worker,
session, engine, SQL — as a tree of named *spans*.  The design goals,
in order:

1. **Near-zero cost when tracing is off.**  Every instrumentation site
   calls :func:`span`, whose first statement checks one module-global
   boolean; when no trace is active anywhere in the process it returns
   a single preallocated null span — no allocation, no contextvar read,
   no clock read.  Hot paths (``delta_changes`` runs tens of thousands
   of times per audit) pay one attribute load and one branch.

2. **Fork- and thread-safety.**  The active span lives in a
   :class:`contextvars.ContextVar`; crossing into a worker thread is
   explicit (``contextvars.copy_context().run(...)`` — see
   ``AuditServer._handle_analysis``), so concurrent requests on one
   event loop or thread pool never see each other's spans.  A forked
   fleet worker starts with no open traces (the armed flag and the
   open-trace counter are plain module state, copied by fork but only
   meaningful alongside an open context, which fork does not carry).

3. **Bounded traces.**  A trace records at most
   :data:`DEFAULT_SPAN_LIMIT` spans; past the cap, further spans
   collapse into per-name aggregates (count + total milliseconds) so a
   hot loop cannot balloon one trace into megabytes while the totals
   stay honest.

Span taxonomy (what the instrumented layers emit):

=====================  =====================================================
``router.route``       shard selection (rendezvous hashing) in the router
``router.forward``     router → worker round trip (worker subtree grafted)
``coalesce.claim``     negotiating the fleet coalescer table
``coalesce.follow``    awaiting a twin computation (link to leader instead)
``server.queue_wait``  time between arrival and a worker thread picking up
``server.execute``     the analysis on the worker thread
``session.<op>``       one session analysis (decide, collusion, ...)
``criticality.compute``  one crit_D computation (cache miss)
``kernel.query_table`` / ``kernel.distribution``  probability-kernel work
``cq.evaluate`` / ``cq.delta``  query evaluation (compiled or naive)
``sql.execute``        one sqlite statement of the sql engine
``storage.load``       bulk fact ingestion into a sqlite store
=====================  =====================================================
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "TRACE_ENV",
    "DEFAULT_SPAN_LIMIT",
    "Span",
    "Trace",
    "span",
    "record_span",
    "start_trace",
    "current_trace",
    "current_span",
    "walk_spans",
    "tracing_enabled",
    "set_tracing",
    "install_from_env",
    "new_trace_id",
    "dominant_span",
]

#: Environment variable enabling process-wide tracing (``1``/``true``).
TRACE_ENV = "REPRO_TRACE"

#: Spans recorded per trace before collapsing into per-name aggregates.
DEFAULT_SPAN_LIMIT = 256

#: The one fast-path guard: ``True`` iff process-wide tracing is enabled
#: or at least one trace context is currently open.  Read unlocked on
#: every :func:`span` call; written under :data:`_STATE_LOCK`.
_ARMED = False

_STATE_LOCK = threading.Lock()
_GLOBAL_ENABLED = False
_OPEN_TRACES = 0

#: The innermost open span of the current context (``None`` outside any
#: trace).  Only consulted once :data:`_ARMED` says it may be non-trivial.
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_trace_current", default=None
)


def _rearm() -> None:
    global _ARMED
    _ARMED = _GLOBAL_ENABLED or _OPEN_TRACES > 0


def tracing_enabled() -> bool:
    """True when process-wide tracing is switched on."""
    return _GLOBAL_ENABLED


def set_tracing(enabled: bool) -> None:
    """Switch process-wide tracing on or off.

    Per-request traces (a ``trace`` field on the wire, or an explicit
    :func:`start_trace`) work regardless; this flag makes *every*
    server-handled request open a trace for the buffer and slow log.
    """
    global _GLOBAL_ENABLED
    with _STATE_LOCK:
        _GLOBAL_ENABLED = bool(enabled)
        _rearm()


def install_from_env() -> bool:
    """Enable tracing when ``REPRO_TRACE`` is set truthy; returns the state."""
    raw = os.environ.get(TRACE_ENV, "").strip().lower()
    if raw and raw not in ("0", "false", "no", "off"):
        set_tracing(True)
    return _GLOBAL_ENABLED


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace (or span) id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed, named node of a span tree.

    Spans are context managers::

        with span("cq.evaluate") as s:
            ...
            s.set("rows", len(answer))

    ``set`` on the null span is a no-op, so call sites never need to
    know whether tracing is active.
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "started", "duration_ms", "attrs", "children")

    def __init__(self, trace: "Trace", name: str, parent_id: Optional[str]):
        self.trace = trace
        self.span_id = new_trace_id()
        self.parent_id = parent_id
        self.name = name
        self.started = time.perf_counter()
        self.duration_ms: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None
        self.children: List[Any] = []

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def finish(self) -> None:
        """Close the span (idempotent)."""
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self.started) * 1000.0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()

    def to_dict(self) -> Dict[str, Any]:
        """The span subtree as one JSON-serialisable document."""
        document: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "start_ms": round((self.started - self.trace.started_perf) * 1000.0, 3),
            "duration_ms": round(self.duration_ms or 0.0, 3),
        }
        if self.parent_id is not None:
            document["parent_id"] = self.parent_id
        if self.attrs:
            document["attrs"] = dict(self.attrs)
        if self.children:
            document["children"] = [
                child if isinstance(child, dict) else child.to_dict()
                for child in self.children
            ]
        return document


class _SpanScope:
    """Context manager pushing one live span onto the context stack."""

    __slots__ = ("_span", "_token")

    def __init__(self, span_obj: Span):
        self._span = span_obj
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.finish()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None


class _AggregateScope:
    """Past the span cap: record (count, total ms) per name, no tree node."""

    __slots__ = ("_trace", "_name", "_started")

    def __init__(self, trace: "Trace", name: str):
        self._trace = trace
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_NullSpan":
        self._started = time.perf_counter()
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        elapsed_ms = (time.perf_counter() - self._started) * 1000.0
        self._trace.aggregate(self._name, elapsed_ms)


class _NullSpan:
    """The do-nothing span returned whenever tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Trace:
    """One request's trace: a root span plus bookkeeping.

    Append operations are guarded by a lock — a trace crosses from the
    event loop into a worker thread, and (defensively) nothing stops an
    instrumented layer from spawning its own helpers.
    """

    __slots__ = (
        "trace_id",
        "parent_id",
        "root",
        "started_epoch",
        "started_perf",
        "span_limit",
        "span_count",
        "dropped",
        "links",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        span_limit: int = DEFAULT_SPAN_LIMIT,
    ):
        self.trace_id = trace_id or new_trace_id()
        self.parent_id = parent_id
        self.started_epoch = time.time()
        self.started_perf = time.perf_counter()
        self.span_limit = max(1, span_limit)
        self.span_count = 1
        self.dropped: Dict[str, List[float]] = {}
        self.links: List[Dict[str, str]] = []
        self._lock = threading.Lock()
        self.root = Span(self, name, parent_id)

    def open_span(self, name: str):
        """A scope for one child span of the current context's span."""
        parent = _CURRENT.get()
        if parent is None or parent.trace is not self:
            parent = self.root
        with self._lock:
            if self.span_count >= self.span_limit:
                return _AggregateScope(self, name)
            self.span_count += 1
        child = Span(self, name, parent.span_id)
        parent.children.append(child)
        return _SpanScope(child)

    def aggregate(self, name: str, elapsed_ms: float) -> None:
        """Fold one over-cap span into the per-name aggregates."""
        with self._lock:
            entry = self.dropped.get(name)
            if entry is None:
                self.dropped[name] = [1, elapsed_ms]
            else:
                entry[0] += 1
                entry[1] += elapsed_ms

    def attach_child_doc(self, parent: Optional[Span], document: Dict[str, Any]) -> None:
        """Graft an already-serialised subtree (a worker's tree) under a span."""
        target = parent or self.root
        with self._lock:
            target.children.append(document)

    def link(self, trace_id: str, relation: str = "coalesced-leader") -> None:
        """Record a reference to another trace instead of a subtree."""
        self.links.append({"trace_id": trace_id, "rel": relation})

    def finish(self) -> None:
        """Close the root span (idempotent)."""
        self.root.finish()

    def to_dict(self) -> Dict[str, Any]:
        """The whole trace as one JSON-serialisable document."""
        self.finish()
        document: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "started": round(self.started_epoch, 6),
            "duration_ms": round(self.root.duration_ms or 0.0, 3),
            "spans": self.span_count,
            "root": self.root.to_dict(),
        }
        if self.parent_id is not None:
            document["parent_id"] = self.parent_id
        if self.links:
            document["links"] = list(self.links)
        if self.dropped:
            document["dropped"] = {
                name: {"count": entry[0], "total_ms": round(entry[1], 3)}
                for name, entry in self.dropped.items()
            }
        return document


def span(name: str):
    """A scope for one named span under the current trace.

    **The** instrumentation entry point.  When no trace is active the
    preallocated null span comes back after a single global-flag check —
    the instrumented hot paths rely on this being allocation-free.
    """
    if not _ARMED:
        return _NULL_SPAN
    current = _CURRENT.get()
    if current is None:
        return _NULL_SPAN
    return current.trace.open_span(name)


def current_trace() -> Optional[Trace]:
    """The trace of the current context, if one is open."""
    if not _ARMED:
        return None
    current = _CURRENT.get()
    return current.trace if current is not None else None


def current_span() -> Optional[Span]:
    """The innermost open span of the current context, if any."""
    if not _ARMED:
        return None
    return _CURRENT.get()


def record_span(name: str, duration_ms: float, **attrs: Any) -> None:
    """Record an already-elapsed interval as a completed child span.

    Used where the interval is measured externally (e.g. queue wait:
    the clock started before the worker thread existed).
    """
    if not _ARMED:
        return
    current = _CURRENT.get()
    if current is None:
        return
    trace = current.trace
    with trace._lock:
        if trace.span_count >= trace.span_limit:
            pass
        else:
            trace.span_count += 1
            child = Span(trace, name, current.span_id)
            child.started = time.perf_counter() - duration_ms / 1000.0
            child.duration_ms = duration_ms
            if attrs:
                child.attrs = dict(attrs)
            current.children.append(child)
            return
    trace.aggregate(name, duration_ms)


class _TraceScope:
    """Context manager owning one whole trace (opened at client/router/worker)."""

    __slots__ = ("trace", "_token")

    def __init__(self, trace: Trace):
        self.trace = trace
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Trace:
        global _OPEN_TRACES
        with _STATE_LOCK:
            _OPEN_TRACES += 1
            _rearm()
        self._token = _CURRENT.set(self.trace.root)
        return self.trace

    def __exit__(self, *exc_info) -> None:
        global _OPEN_TRACES
        self.trace.finish()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        with _STATE_LOCK:
            _OPEN_TRACES = max(0, _OPEN_TRACES - 1)
            _rearm()


def start_trace(
    name: str,
    trace_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    span_limit: int = DEFAULT_SPAN_LIMIT,
) -> _TraceScope:
    """Open a new trace whose root span is named ``name``.

    Returns a context manager yielding the :class:`Trace`; while it is
    open, :func:`span` calls in the same context (or a copied context
    run on another thread) attach to it.  ``trace_id``/``parent_id``
    continue a distributed trace arriving over the wire.
    """
    return _TraceScope(Trace(name, trace_id=trace_id, parent_id=parent_id, span_limit=span_limit))


def dominant_span(trace_doc: Dict[str, Any]) -> Dict[str, Any]:
    """The descendant with the largest *self* time of a trace document.

    Self time is a span's duration minus its children's; the root is a
    candidate too, so a trace that spends its time between spans names
    itself.  Used by the slow-request log and the CLI waterfall.
    """
    best: Dict[str, Any] = {"name": "(root)", "self_ms": 0.0, "duration_ms": 0.0}

    def visit(node: Dict[str, Any]) -> None:
        nonlocal best
        duration = float(node.get("duration_ms") or 0.0)
        children = node.get("children") or []
        child_total = sum(float(c.get("duration_ms") or 0.0) for c in children)
        self_ms = max(0.0, duration - child_total)
        if self_ms > best["self_ms"]:
            best = {
                "name": node.get("name", "(unnamed)"),
                "self_ms": round(self_ms, 3),
                "duration_ms": round(duration, 3),
            }
        for child in children:
            visit(child)

    root = trace_doc.get("root") or {}
    if root:
        visit(root)
    return best


def walk_spans(trace_doc: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Yield every span document of a trace, depth-first."""
    stack = [trace_doc.get("root") or {}]
    while stack:
        node = stack.pop()
        if not node:
            continue
        yield node
        stack.extend(node.get("children") or [])
