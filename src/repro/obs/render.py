"""Plain-text rendering of trace documents: waterfalls and live tops.

The renderers consume the JSON documents produced by
:meth:`~repro.obs.trace.Trace.to_dict` (as returned inline by a traced
service request, or from the ``traces`` service operation) and emit
terminal-friendly text — no ANSI codes, so the output survives CI logs
and ``grep``.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Mapping, Optional, Tuple

__all__ = ["render_waterfall", "span_names", "render_top"]

#: Width of the waterfall bar column, in characters.
_BAR_WIDTH = 30


def _spans_in_order(
    span_doc: Mapping[str, Any], depth: int, shift: float
) -> Iterator[Tuple[int, float, Mapping[str, Any]]]:
    """Yield ``(depth, absolute_start_ms, span)`` in pre-order.

    ``start_ms`` is relative to the span's *own* trace; a subtree
    grafted from another process (a fleet worker answering under the
    router's ``router.forward`` span) restarts at zero.  A child
    starting before its parent therefore marks a graft boundary, and
    the parent's absolute start becomes the child's baseline.
    """
    start = float(span_doc.get("start_ms", 0.0))
    absolute = start + shift
    yield depth, absolute, span_doc
    for child in span_doc.get("children", ()):
        if not isinstance(child, Mapping):
            continue
        child_shift = shift
        if float(child.get("start_ms", 0.0)) < start:
            child_shift = absolute
        yield from _spans_in_order(child, depth + 1, child_shift)


def span_names(trace_doc: Mapping[str, Any]) -> List[str]:
    """Every span name in the trace, in waterfall (pre-)order."""
    root = trace_doc.get("root")
    if not isinstance(root, Mapping):
        return []
    return [str(s.get("name", "?")) for _, _, s in _spans_in_order(root, 0, 0.0)]


def _attr_text(span_doc: Mapping[str, Any]) -> str:
    attrs = span_doc.get("attrs")
    if not isinstance(attrs, Mapping):
        return ""
    parts = [
        f"{key}={value}"
        for key, value in attrs.items()
        if not isinstance(value, (list, dict))
    ]
    return "  " + " ".join(parts) if parts else ""


def render_waterfall(trace_doc: Mapping[str, Any]) -> str:
    """One trace document as an indented plain-text span waterfall.

    Each line shows the span name (indented by tree depth), its start
    offset and duration in milliseconds, and a bar positioned along the
    trace's full duration.  Aggregated over-cap spans and links to other
    traces (coalesced followers) are appended below the tree.
    """
    root = trace_doc.get("root")
    if not isinstance(root, Mapping):
        return "(empty trace)"
    total = max(float(trace_doc.get("duration_ms", 0.0)), 0.001)
    rows = list(_spans_in_order(root, 0, 0.0))
    name_width = max(len("  " * depth + str(s.get("name", "?"))) for depth, _, s in rows)
    header = (
        f"trace {trace_doc.get('trace_id', '?')}  "
        f"{total:.3f}ms  spans={trace_doc.get('spans', len(rows))}"
    )
    lines = [header]
    for depth, absolute, span_doc in rows:
        duration = float(span_doc.get("duration_ms", 0.0))
        label = "  " * depth + str(span_doc.get("name", "?"))
        left = int(_BAR_WIDTH * min(absolute / total, 1.0))
        width = max(1, int(round(_BAR_WIDTH * min(duration / total, 1.0))))
        width = min(width, _BAR_WIDTH - left) or 1
        bar = " " * left + "#" * width
        lines.append(
            f"  {label:<{name_width}}  {absolute:>9.3f}  {duration:>9.3f}ms  "
            f"|{bar:<{_BAR_WIDTH}}|{_attr_text(span_doc)}"
        )
    dropped = trace_doc.get("dropped")
    if isinstance(dropped, Mapping) and dropped:
        lines.append("  aggregated (over span cap):")
        for name, entry in dropped.items():
            if isinstance(entry, Mapping):
                lines.append(
                    f"    {name}  x{entry.get('count', '?')}  "
                    f"total {entry.get('total_ms', '?')}ms"
                )
    links = trace_doc.get("links")
    if isinstance(links, list) and links:
        lines.append("  links:")
        for link in links:
            if isinstance(link, Mapping):
                lines.append(
                    f"    {link.get('rel', 'linked')} -> trace {link.get('trace_id', '?')}"
                )
    return "\n".join(lines)


def _latency_text(op_doc: Mapping[str, Any]) -> str:
    latency = op_doc.get("latency_ms")
    if not isinstance(latency, Mapping):
        return "-"
    p50 = latency.get("p50")
    p95 = latency.get("p95")
    if p50 is None:
        return "-"
    text = f"p50 {p50:>8.2f}"
    if p95 is not None:
        text += f"  p95 {p95:>8.2f}"
    return text


def render_top(
    stats: Mapping[str, Any], traces: Optional[Mapping[str, Any]] = None
) -> str:
    """One ``stats`` snapshot (optionally plus ``traces``) as a live view.

    Renders the per-operation counters and latency quantiles of a
    server or merged fleet ``stats`` document, the per-shard health
    table when the document came from a fleet router, and the slowest
    recorded traces when a ``traces`` snapshot is supplied.
    """
    lines: List[str] = []
    totals = stats.get("totals")
    handled = totals.get("requests", "?") if isinstance(totals, Mapping) else "?"
    uptime = stats.get("uptime_seconds")
    uptime_text = f"  uptime {uptime:.0f}s" if isinstance(uptime, (int, float)) else ""
    fleet = stats.get("fleet")
    fleet_text = ""
    if isinstance(fleet, Mapping):
        fleet_text = f"  workers {fleet.get('workers', '?')}"
    lines.append(f"requests handled: {handled}{uptime_text}{fleet_text}")
    operations = stats.get("operations")
    if isinstance(operations, Mapping) and operations:
        name_width = max(max(len(str(op)) for op in operations), len("op"))
        lines.append(f"  {'op':<{name_width}}  {'requests':>8}  latency")
        for op, op_doc in sorted(operations.items()):
            if not isinstance(op_doc, Mapping):
                continue
            requests = op_doc.get("requests", "?")
            lines.append(
                f"  {op:<{name_width}}  {requests:>8}  {_latency_text(op_doc)}"
            )
    shards = fleet.get("shards") if isinstance(fleet, Mapping) else None
    if isinstance(shards, list) and shards:
        lines.append("  shards:")
        for shard in shards:
            if not isinstance(shard, Mapping):
                continue
            lines.append(
                f"    shard {shard.get('shard', '?')}: "
                f"alive={shard.get('alive', '?')} "
                f"health={shard.get('health', '?')} "
                f"outstanding={shard.get('outstanding', '?')} "
                f"forwarded={shard.get('forwarded', '?')} "
                f"restarts={shard.get('restarts', '?')}"
            )
    if isinstance(traces, Mapping):
        slow = traces.get("slow")
        if isinstance(slow, list) and slow:
            lines.append(f"  slowest traces (of {traces.get('recorded', '?')} recorded):")
            for doc in slow[:5]:
                if not isinstance(doc, Mapping):
                    continue
                root = doc.get("root")
                op = ""
                if isinstance(root, Mapping):
                    attrs = root.get("attrs")
                    if isinstance(attrs, Mapping) and "op" in attrs:
                        op = f"  op={attrs['op']}"
                lines.append(
                    f"    {doc.get('trace_id', '?')}  "
                    f"{doc.get('duration_ms', '?')}ms{op}"
                )
    return "\n".join(lines)
