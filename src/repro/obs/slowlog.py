"""The structured slow-request log.

Traces over a configurable threshold are written as one JSON line each
(to stderr by default, or a file), naming the *dominant span* — the
descendant with the largest self time — so an operator reading the log
sees not just "this request took 900ms" but "870ms of it was
``criticality.compute``".

Configuration comes from the server (``slow_ms`` option) or the
environment:

* ``REPRO_TRACE_SLOW_MS`` — threshold in milliseconds (unset disables);
* ``REPRO_TRACE_SLOW_LOG`` — a file path (append mode); unset → stderr.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Mapping, Optional

from .trace import dominant_span

__all__ = ["SlowLog", "SLOW_MS_ENV", "SLOW_LOG_ENV", "slow_log_from_env"]

SLOW_MS_ENV = "REPRO_TRACE_SLOW_MS"
SLOW_LOG_ENV = "REPRO_TRACE_SLOW_LOG"


class SlowLog:
    """Threshold-gated JSON-lines logger for slow traces."""

    def __init__(self, threshold_ms: Optional[float], path: Optional[str] = None):
        self._threshold_ms = threshold_ms
        self._path = path
        self._lock = threading.Lock()
        self._logged = 0

    @property
    def enabled(self) -> bool:
        """True when a threshold is configured."""
        return self._threshold_ms is not None

    @property
    def threshold_ms(self) -> Optional[float]:
        """The configured threshold (``None`` = disabled)."""
        return self._threshold_ms

    @property
    def logged(self) -> int:
        """How many slow requests have been logged so far."""
        return self._logged

    def entry_for(self, trace_doc: Mapping[str, Any], op: Optional[str] = None) -> Dict[str, Any]:
        """The log line document for one trace (public for tests)."""
        dominant = dominant_span(dict(trace_doc))
        entry: Dict[str, Any] = {
            "event": "slow-request",
            "ts": round(time.time(), 3),
            "trace_id": trace_doc.get("trace_id"),
            "duration_ms": trace_doc.get("duration_ms"),
            "threshold_ms": self._threshold_ms,
            "dominant_span": dominant["name"],
            "dominant_self_ms": dominant["self_ms"],
        }
        if op is not None:
            entry["op"] = op
        return entry

    def maybe_log(self, trace_doc: Mapping[str, Any], op: Optional[str] = None) -> bool:
        """Write the trace's log line when it crosses the threshold."""
        if self._threshold_ms is None:
            return False
        duration = trace_doc.get("duration_ms")
        if not isinstance(duration, (int, float)) or duration < self._threshold_ms:
            return False
        line = json.dumps(self.entry_for(trace_doc, op), separators=(",", ":"), default=str)
        with self._lock:
            self._logged += 1
            if self._path is not None:
                with open(self._path, "a", encoding="utf8") as handle:
                    handle.write(line + "\n")
            else:
                print(line, file=sys.stderr, flush=True)
        return True


def slow_log_from_env(default_threshold_ms: Optional[float] = None) -> SlowLog:
    """A :class:`SlowLog` configured from the environment.

    An explicit ``default_threshold_ms`` (the server's ``slow_ms``
    option) applies when the environment does not set one.
    """
    threshold = default_threshold_ms
    raw = os.environ.get(SLOW_MS_ENV, "").strip()
    if raw:
        try:
            threshold = float(raw)
        except ValueError:
            threshold = default_threshold_ms
    path = os.environ.get(SLOW_LOG_ENV) or None
    return SlowLog(threshold, path)
