"""Multi-party collusion analysis.

A data owner publishes views ``V1, ..., Vn`` to ``n`` different
recipients.  Which coalitions of recipients can jointly learn something
about the secret ``S``?

Under the paper's (perfect-secrecy) criterion, Theorem 4.5 implies a very
strong collusion property: ``S | V̄`` holds for all distributions iff
``S | Vi`` holds for every single view, so if every individual view is
secure then **no** coalition can learn anything.  Conversely, the
coalitions that violate security are exactly those containing at least
one individually-insecure view.  :func:`analyse_collusion` reports this
structure; the *degree* of the extra disclosure contributed by colluding
(which perfect secrecy does not distinguish) is measured with
:mod:`repro.core.leakage` — see Example 6.3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..cq.query import ConjunctiveQuery
from ..exceptions import SecurityAnalysisError
from ..relational.domain import Domain
from ..relational.schema import Schema
from ..relational.tuples import Fact
from .security import SecurityDecision, decide_security

__all__ = ["CollusionReport", "analyse_collusion", "largest_safe_view_set"]


@dataclass(frozen=True)
class CollusionReport:
    """Result of a multi-party collusion analysis.

    Attributes
    ----------
    secret:
        The confidential query.
    recipients:
        Recipient name per view, aligned with ``views``.
    views:
        The published views.
    per_view:
        Per-view security decisions (Theorem 4.5).
    secure_overall:
        True iff the secret is secure against the grand coalition of all
        recipients (equivalently, against every coalition).
    """

    secret: ConjunctiveQuery
    recipients: Tuple[str, ...]
    views: Tuple[ConjunctiveQuery, ...]
    per_view: Tuple[SecurityDecision, ...]
    secure_overall: bool

    @property
    def insecure_recipients(self) -> Tuple[str, ...]:
        """Recipients whose individual view already violates security."""
        return tuple(
            recipient
            for recipient, decision in zip(self.recipients, self.per_view)
            if not decision.secure
        )

    @property
    def secure_recipients(self) -> Tuple[str, ...]:
        """Recipients whose individual view is secure."""
        return tuple(
            recipient
            for recipient, decision in zip(self.recipients, self.per_view)
            if decision.secure
        )

    def coalition_is_secure(self, coalition: Sequence[str]) -> bool:
        """Whether a coalition of recipients learns nothing about the secret.

        By Theorem 4.5 a coalition is secure iff every member's view is
        individually secure.
        """
        members = set(coalition)
        unknown = members - set(self.recipients)
        if unknown:
            raise SecurityAnalysisError(f"unknown recipients in coalition: {sorted(unknown)}")
        return all(
            decision.secure
            for recipient, decision in zip(self.recipients, self.per_view)
            if recipient in members
        )

    def violating_coalitions(self, max_size: Optional[int] = None) -> List[Tuple[str, ...]]:
        """All minimal violating coalitions (singletons of insecure recipients).

        Under perfect secrecy the minimal coalitions that violate the
        confidentiality of the secret are exactly the single recipients
        holding an insecure view; larger coalitions add nothing new at
        this (qualitative) level.  ``max_size`` is accepted for symmetry
        with leakage-based analyses but does not change the result.
        """
        del max_size  # minimal violating coalitions are always singletons
        return [(recipient,) for recipient in self.insecure_recipients]

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"Collusion analysis for secret {self.secret.name}:"]
        for recipient, view, decision in zip(self.recipients, self.views, self.per_view):
            verdict = "secure" if decision.secure else "NOT secure"
            lines.append(f"  - {recipient} receives {view.name}: {verdict}")
        if self.secure_overall:
            lines.append(
                "  => every coalition (including the grand coalition) learns nothing (Theorem 4.5)."
            )
        else:
            bad = ", ".join(self.insecure_recipients)
            lines.append(f"  => security is violated by: {bad}")
        return "\n".join(lines)


def analyse_collusion(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | Mapping[str, ConjunctiveQuery],
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    critical_fn=None,
    criticality_engine=None,
) -> CollusionReport:
    """Analyse which recipients/coalitions violate the secret's security.

    ``views`` may be a sequence (recipients are auto-named ``user1..``)
    or a mapping ``recipient name → view``.

    Without an explicit ``critical_fn`` the call delegates to the
    default :class:`~repro.session.AnalysisSession`, whose cache makes
    the per-view loop compute the secret's critical tuples once instead
    of once per view; ``criticality_engine`` selects which engine that
    session computes with (see :mod:`repro.core.criticality`).
    """
    if critical_fn is None:
        from ..session.default import default_session

        return (
            default_session(schema, criticality_engine)
            .collusion(secret, views, domain=domain)
            .report
        )

    if isinstance(views, Mapping):
        recipients = tuple(views.keys())
        view_list = tuple(views.values())
    else:
        view_list = tuple(views)
        recipients = tuple(f"user{i + 1}" for i in range(len(view_list)))
    if not view_list:
        raise SecurityAnalysisError("at least one view is required")

    # One shared analysis domain for all views keeps the verdicts comparable.
    from .domain_bounds import analysis_domain

    domain = domain or analysis_domain([secret, *view_list])
    per_view = tuple(
        decide_security(secret, view, schema, domain=domain, critical_fn=critical_fn)
        for view in view_list
    )
    return CollusionReport(
        secret=secret,
        recipients=recipients,
        views=view_list,
        per_view=per_view,
        secure_overall=all(d.secure for d in per_view),
    )


def largest_safe_view_set(
    secret: ConjunctiveQuery,
    candidate_views: Sequence[ConjunctiveQuery],
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    critical_fn=None,
    criticality_engine=None,
) -> Tuple[ConjunctiveQuery, ...]:
    """The largest subset of candidate views that can be published safely.

    Because security is per-view (Theorem 4.5), the answer is simply the
    set of individually-secure views; the function exists as a
    publishing-plan convenience and to make that consequence explicit.
    """
    if not candidate_views:
        return ()
    from .domain_bounds import analysis_domain

    domain = domain or analysis_domain([secret, *candidate_views])
    return tuple(
        view
        for view in candidate_views
        if decide_security(
            secret,
            view,
            schema,
            domain=domain,
            critical_fn=critical_fn,
            criticality_engine=criticality_engine,
        ).secure
    )
