"""The adversary's posterior beliefs after observing published views.

The introduction of the paper motivates partial disclosure with a
concrete attack: if Bob and Carol collude on the two projections of
``Employee(name, department, phone)`` and only four people work in each
department, the adversary can guess any person's phone number with a 25%
chance of success.  This module makes that calculation a first-class
operation: given the *actual published answers* ``v̄`` of the views, it
computes the adversary's posterior distribution over the secret's
answers and the induced guessing advantage.

Unlike the rest of :mod:`repro.core`, these functions condition on a
concrete observation, so they are what an owner uses *forensically*
("what does the recipient of this message now know?") rather than
*prospectively* (Theorem 4.5 security holds for every possible answer).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..cq.query import ConjunctiveQuery
from ..cq.union import UnionQuery
from ..exceptions import SecurityAnalysisError
from ..probability.dictionary import Dictionary
from ..probability.engine import ExactEngine
from ..probability.events import And, Event, QueryAnswerIs, QueryContains
from .leakage import possible_answer_tuples

__all__ = [
    "GuessingReport",
    "posterior_answer_distribution",
    "row_posteriors",
    "guessing_report",
]

Query = Union[ConjunctiveQuery, UnionQuery]
Row = Tuple[object, ...]


def _observation_event(
    views: Sequence[Query], view_answers: Sequence[Iterable[Row]]
) -> Event:
    if len(views) != len(view_answers):
        raise SecurityAnalysisError(
            "one published answer is required per view "
            f"({len(views)} views, {len(view_answers)} answers)"
        )
    return And(
        tuple(QueryAnswerIs(view, answer) for view, answer in zip(views, view_answers))
    )


def posterior_answer_distribution(
    secret: Query,
    views: Sequence[Query] | Query,
    view_answers: Sequence[Iterable[Row]] | Iterable[Row],
    dictionary: Dictionary,
    max_support_size: Optional[int] = None,
) -> Dict[FrozenSet[Row], Fraction]:
    """The adversary's posterior over full secret answers, ``P[S(I)=s | V̄(I)=v̄]``.

    ``view_answers`` gives the published answer of each view (a collection
    of rows per view).  The result maps each possible answer set of the
    secret to its posterior probability; answers with posterior zero are
    omitted.
    """
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
        view_answers = [view_answers]  # type: ignore[list-item]
    views = list(views)
    observation = _observation_event(views, list(view_answers))
    engine = ExactEngine(dictionary, max_support_size=max_support_size)
    evidence = engine.probability(observation)
    if evidence == 0:
        raise SecurityAnalysisError(
            "the published view answers have probability zero under this dictionary"
        )
    posterior: Dict[FrozenSet[Row], Fraction] = {}
    for answer in engine.possible_answers(secret):
        joint = engine.joint_probability([QueryAnswerIs(secret, answer), observation])
        if joint:
            posterior[answer] = joint / evidence
    return posterior


def row_posteriors(
    secret: Query,
    views: Sequence[Query] | Query,
    view_answers: Sequence[Iterable[Row]] | Iterable[Row],
    dictionary: Dictionary,
    max_support_size: Optional[int] = None,
) -> Dict[Row, Tuple[Fraction, Fraction]]:
    """Per secret row ``s``: ``(P[s ⊆ S(I)], P[s ⊆ S(I) | V̄(I)=v̄])``.

    This is the row-level view of the adversary's belief shift — the
    quantity behind the introduction's "guess the phone number with a 25%
    chance" argument and behind the leakage measure of Section 6.1.
    """
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
        view_answers = [view_answers]  # type: ignore[list-item]
    views = list(views)
    observation = _observation_event(views, list(view_answers))
    engine = ExactEngine(dictionary, max_support_size=max_support_size)
    evidence = engine.probability(observation)
    if evidence == 0:
        raise SecurityAnalysisError(
            "the published view answers have probability zero under this dictionary"
        )
    result: Dict[Row, Tuple[Fraction, Fraction]] = {}
    for row in possible_answer_tuples(secret, dictionary):
        row_event = QueryContains(secret, [row])
        prior = engine.probability(row_event)
        posterior = engine.joint_probability([row_event, observation]) / evidence
        result[row] = (prior, posterior)
    return result


@dataclass(frozen=True)
class GuessingReport:
    """The adversary's best guess about a secret row after the observation.

    Attributes
    ----------
    best_row:
        The secret row with the highest posterior probability of being in
        the secret's answer (``None`` when no row is possible).
    prior / posterior:
        The adversary's belief in that row before and after seeing the
        published answers.
    rows:
        The full per-row (prior, posterior) table.
    """

    best_row: Optional[Row]
    prior: Fraction
    posterior: Fraction
    rows: Dict[Row, Tuple[Fraction, Fraction]]

    @property
    def amplification(self) -> Optional[Fraction]:
        """``posterior / prior`` for the best row (``None`` when prior is 0)."""
        if self.prior == 0:
            return None
        return self.posterior / self.prior

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.best_row is None:
            return "the observation rules out every secret row"
        return (
            f"best guess {self.best_row!r}: prior {float(self.prior):.3f} -> "
            f"posterior {float(self.posterior):.3f}"
        )


def guessing_report(
    secret: Query,
    views: Sequence[Query] | Query,
    view_answers: Sequence[Iterable[Row]] | Iterable[Row],
    dictionary: Dictionary,
    restrict_to_rows: Optional[Iterable[Row]] = None,
    max_support_size: Optional[int] = None,
) -> GuessingReport:
    """How well can the adversary now guess a secret row?

    ``restrict_to_rows`` limits the candidate rows (e.g. "rows about this
    particular person"), matching the introduction's per-person guessing
    argument; by default every possible secret row competes.
    """
    table = row_posteriors(secret, views, view_answers, dictionary, max_support_size)
    if restrict_to_rows is not None:
        wanted = {tuple(row) for row in restrict_to_rows}
        table = {row: value for row, value in table.items() if row in wanted}
    best_row: Optional[Row] = None
    best = (Fraction(0), Fraction(0))
    for row, (prior, posterior) in sorted(table.items(), key=repr):
        if posterior > best[1]:
            best_row = row
            best = (prior, posterior)
    return GuessingReport(best_row=best_row, prior=best[0], posterior=best[1], rows=table)
