"""Domain-independence bounds (Proposition 4.9).

Query-view security via critical tuples is checked over a concrete
finite domain.  Proposition 4.9 shows the check is *domain-independent*
provided the domain is "large enough": with ``n`` the largest number of
variables and constants in any of the queries, a domain of size ``n``
suffices for comparison-free conjunctive queries, and ``n(n+1)`` when
order predicates are present (fresh constants are needed between any two
mentioned constants).

This module computes the bound and synthesises an *analysis domain*
containing all the queries' constants padded with fresh symbolic
constants up to the required size.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple

from ..cq.query import ConjunctiveQuery
from ..relational.domain import Domain
from ..relational.schema import Schema

__all__ = [
    "max_symbol_count",
    "required_domain_size",
    "analysis_domain",
    "analysis_schema",
]


def max_symbol_count(queries: Sequence[ConjunctiveQuery]) -> int:
    """The ``n`` of Proposition 4.9: the largest number of variables plus
    constants occurring in any single query."""
    if not queries:
        return 0
    return max(query.symbol_count() for query in queries)


def required_domain_size(queries: Sequence[ConjunctiveQuery]) -> int:
    """Domain size guaranteeing a domain-independent security verdict.

    ``n`` for comparison-free queries (footnote 3 of the paper) and
    ``n(n+1)`` when any query uses an order predicate.
    """
    n = max_symbol_count(queries)
    if n == 0:
        return 1
    if any(query.has_order_predicates for query in queries):
        return n * (n + 1)
    return n


def _all_constants(queries: Sequence[ConjunctiveQuery]) -> List[object]:
    constants: List[object] = []
    seen = set()
    for query in queries:
        for value in sorted(query.constants, key=repr):
            if value not in seen:
                seen.add(value)
                constants.append(value)
    return constants


def analysis_domain(
    queries: Sequence[ConjunctiveQuery],
    minimum_size: int | None = None,
    fresh_prefix: str = "d",
) -> Domain:
    """A domain suitable for a domain-independent security analysis.

    Contains every constant mentioned by the queries plus fresh symbolic
    constants up to :func:`required_domain_size` (or ``minimum_size`` if
    larger).  When the queries use order predicates over numeric
    constants, fresh *numeric* values are interleaved so that the order
    type required by footnote 3 (fresh constants between any two
    mentioned constants) is realised.
    """
    constants = _all_constants(queries)
    target = required_domain_size(queries)
    if minimum_size is not None:
        target = max(target, minimum_size)
    target = max(target, len(constants), 1)

    has_order = any(query.has_order_predicates for query in queries)
    numeric = [c for c in constants if isinstance(c, (int, float)) and not isinstance(c, bool)]
    values: List[object] = list(constants)

    if has_order and numeric and len(numeric) == len(constants):
        # Interleave fresh numeric constants between, below and above the
        # mentioned ones so order predicates can distinguish them.
        ordered = sorted(set(numeric))
        fresh: List[float] = []
        fresh.append(ordered[0] - 1)
        for low, high in zip(ordered, ordered[1:]):
            fresh.append((low + high) / 2)
        fresh.append(ordered[-1] + 1)
        candidates = itertools.chain(
            fresh,
            (ordered[-1] + 1 + k for k in itertools.count(1)),
        )
        for value in candidates:
            if len(values) >= target:
                break
            if value not in values:
                values.append(value)
    else:
        counter = itertools.count(0)
        while len(values) < target:
            candidate = f"{fresh_prefix}{next(counter)}"
            if candidate not in values:
                values.append(candidate)
    return Domain(values, name="D_analysis")


def untyped_schema(schema: Schema, domain) -> Schema:
    """A copy of ``schema`` over ``domain`` with per-attribute domains dropped.

    The core security analysis always works over a single untyped domain
    (the paper's model); per-attribute domains are only a convenience for
    building dictionaries and example instances.  Keeping them during a
    critical-tuple computation could hide critical tuples that exist over
    the analysis domain, so every decision procedure strips them first.
    """
    from ..relational.schema import RelationSchema

    stripped = [
        RelationSchema(relation.name, relation.attributes, {}, relation.key)
        for relation in schema
    ]
    return Schema(stripped, domain=domain)


def analysis_schema(
    schema: Schema, queries: Sequence[ConjunctiveQuery], minimum_size: int | None = None
) -> Schema:
    """The schema re-targeted at the analysis domain of the given queries.

    Per-attribute domains are dropped: the paper's domain-independence
    argument is stated for a single global domain, and keeping attribute
    restrictions could hide critical tuples that exist over the analysis
    domain.
    """
    domain = analysis_domain(queries, minimum_size=minimum_size)
    return untyped_schema(schema, domain)
