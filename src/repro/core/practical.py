"""The paper's *practical algorithm* for query-view security (Section 4.2).

    "For practical purposes, one can check crit(S) ∩ crit(V̄) = ∅ and
    hence S | V̄ quite efficiently.  Simply compare all pairs of subgoals
    from S and from V̄.  If any pair of subgoals unify, then ¬(S | V̄).
    While false positives are possible, they are rare."

The check is *sound for security*: if no pair of subgoals unifies, no
tuple can be a common homomorphic image of subgoals of both queries, so
the critical-tuple sets are disjoint and the pair is secure.  When some
pair unifies the answer is "possibly insecure" — a false positive is
possible (insecurity is not implied), which the exact procedure in
:mod:`repro.core.security` resolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..cq.atoms import Atom
from ..cq.query import ConjunctiveQuery
from ..cq.union import UnionQuery
from ..cq.unification import unifiable_subgoal_pairs
from ..exceptions import SecurityAnalysisError

__all__ = ["PracticalVerdict", "practical_security_check"]


@dataclass(frozen=True)
class PracticalVerdict:
    """Outcome of the practical (unification-based) security check.

    Attributes
    ----------
    certainly_secure:
        ``True`` when no subgoal of the secret unifies with any subgoal of
        any view — a *sound* certificate of security.
    unifiable_pairs:
        The (secret subgoal, view subgoal, view) triples that unify;
        empty iff ``certainly_secure``.
    """

    certainly_secure: bool
    secret: ConjunctiveQuery
    views: Tuple[ConjunctiveQuery, ...]
    unifiable_pairs: Tuple[Tuple[Atom, Atom, ConjunctiveQuery], ...]

    @property
    def possibly_insecure(self) -> bool:
        """True when the quick check could not certify security."""
        return not self.certainly_secure

    def explain(self) -> str:
        """A short human-readable explanation of the verdict."""
        if self.certainly_secure:
            return (
                f"No subgoal of {self.secret.name} unifies with a subgoal of "
                f"{', '.join(v.name for v in self.views)}; the pair is secure "
                f"(sound certificate, Theorem 4.5)."
            )
        sample = self.unifiable_pairs[0]
        return (
            f"Subgoal {sample[0]!r} of {self.secret.name} unifies with "
            f"{sample[1]!r} of {sample[2].name}; the pair is flagged as possibly "
            f"insecure (run decide_security for the exact verdict)."
        )


def practical_security_check(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
) -> PracticalVerdict:
    """Run the pairwise subgoal-unification check of Section 4.2."""
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    if not views:
        raise SecurityAnalysisError("at least one view is required")
    triples = []
    for view in views:
        for secret_atom, view_atom in unifiable_subgoal_pairs(secret, view):
            triples.append((secret_atom, view_atom, view))
    return PracticalVerdict(
        certainly_secure=not triples,
        secret=secret,
        views=tuple(views),
        unifiable_pairs=tuple(triples),
    )
