"""Practical (asymptotic) query-view security — Section 6.2.

The perfect-secrecy standard classifies many practically harmless pairs
as insecure.  Following the paper's Section 6.2 (and Dalvi, Miklau &
Suciu, ICDT 2005), this module analyses the *asymptotic* model: the
domain size ``n`` grows to infinity while the expected size of every
relation stays a constant ``S_R`` (each potential fact of an arity-``a``
relation has probability ``S_R / n^a``), and the quantity of interest is

    lim_{n→∞} μ_n[Q | V]

for boolean conjunctive queries ``Q`` (the secret) and ``V`` (the view).
The key fact is that ``μ_n[Q] = c·n^{-d} + O(n^{-d-1})`` for computable
``c`` and ``d``.  We compute ``d`` exactly and ``c`` at leading order by
enumerating the *minimal witness patterns* of the query (collapses of
its variables), and classify a pair as

* ``PERFECT``              — secure under the paper's exact criterion
  (critical tuples disjoint; Theorem 4.5),
* ``PRACTICAL_SECURITY``   — ``lim μ_n[Q | V] = 0`` although not
  perfectly secure,
* ``PRACTICAL_DISCLOSURE`` — ``lim μ_n[Q | V] > 0``.

:func:`empirical_mu` estimates ``μ_n[Q]`` by Monte-Carlo simulation at a
concrete ``n`` so benchmarks can check the analytic exponents.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..cq.compose import conjoin
from ..cq.evaluation import evaluate_boolean
from ..cq.query import ConjunctiveQuery
from ..cq.terms import Variable, is_variable
from ..exceptions import SecurityAnalysisError
from ..relational.domain import Domain
from ..relational.instance import Instance
from ..relational.schema import RelationSchema, Schema
from ..relational.tuples import Fact

__all__ = [
    "AsymptoticOrder",
    "WitnessPattern",
    "PracticalSecurityLevel",
    "PracticalSecurityReport",
    "asymptotic_order",
    "classify_practical_security",
    "empirical_mu",
]


class PracticalSecurityLevel(enum.Enum):
    """The three regimes of Section 6.2."""

    PERFECT = "perfect query-view security"
    PRACTICAL_SECURITY = "practical query-view security"
    PRACTICAL_DISCLOSURE = "practical disclosure"


@dataclass(frozen=True)
class WitnessPattern:
    """A minimal witness set of a boolean query, up to renaming of fresh values.

    Attributes
    ----------
    facts:
        The abstract facts of the witness (fresh values are integers
        ``0, 1, ...``; query constants appear verbatim).
    fresh_values:
        Number of distinct fresh values — the pattern contributes
        ``~ n^fresh_values`` concrete witness sets.
    weight:
        Total arity weight of the facts — a concrete witness set has
        probability ``(Π S_R) / n^weight``.
    exponent:
        ``weight − fresh_values`` — the pattern's contribution decays as
        ``n^{-exponent}``.
    automorphisms:
        Number of fresh-value permutations preserving the fact set; the
        number of concrete sets is ``n^fresh_values / automorphisms`` at
        leading order.
    coefficient:
        ``(Π_facts S_R) / automorphisms`` — the pattern's contribution to
        the leading coefficient.
    """

    facts: FrozenSet[Fact]
    fresh_values: int
    weight: int
    exponent: int
    automorphisms: int
    coefficient: float


@dataclass(frozen=True)
class AsymptoticOrder:
    """``μ_n[Q] ≈ coefficient · n^{-exponent}`` (leading order).

    ``exponent == 0`` means the probability tends to a positive constant
    (``1 − e^{-coefficient}`` at first order in the Poisson regime);
    ``exponent > 0`` means it vanishes polynomially.
    """

    query: ConjunctiveQuery
    exponent: int
    coefficient: float
    patterns: Tuple[WitnessPattern, ...]

    def estimate(self, n: int) -> float:
        """The leading-order estimate of ``μ_n[Q]`` at a concrete domain size."""
        value = self.coefficient * float(n) ** (-self.exponent)
        return min(1.0, value)


@dataclass(frozen=True)
class PracticalSecurityReport:
    """Classification of a (secret, view) pair in the asymptotic model."""

    level: PracticalSecurityLevel
    limit: float
    secret_order: Optional[AsymptoticOrder]
    view_order: Optional[AsymptoticOrder]
    joint_order: Optional[AsymptoticOrder]
    explanation: str


# ---------------------------------------------------------------------------
# Pattern enumeration
# ---------------------------------------------------------------------------
def _set_partitions(items: Sequence[Variable]) -> Iterator[List[List[Variable]]]:
    """All set partitions of ``items`` (order of blocks is irrelevant)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [partition[i] + [first]] + partition[i + 1 :]
        yield partition + [[first]]


class _Fresh:
    """A fresh symbolic value (one per fresh block of a collapse)."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"?{self.index}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Fresh) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("_Fresh", self.index))

    def __lt__(self, other: object) -> bool:
        if isinstance(other, _Fresh):
            return self.index < other.index
        return NotImplemented


def _check_no_order_predicates(query: ConjunctiveQuery) -> None:
    if query.has_order_predicates:
        raise SecurityAnalysisError(
            "the asymptotic analysis supports only =/!= comparisons "
            "(order predicates have no meaning for symbolic fresh values)"
        )


def _comparisons_hold_symbolically(
    query: ConjunctiveQuery, assignment: Mapping[Variable, object]
) -> bool:
    """Evaluate =/!= comparisons under a symbolic assignment.

    Fresh symbols are pairwise distinct and distinct from every constant,
    so equality is decidable symbolically.
    """
    for comparison in query.comparisons:
        left = assignment.get(comparison.left, comparison.left) if is_variable(
            comparison.left
        ) else comparison.left.value
        right = assignment.get(comparison.right, comparison.right) if is_variable(
            comparison.right
        ) else comparison.right.value
        equal = left == right
        if comparison.op == "=" and not equal:
            return False
        if comparison.op == "!=" and equal:
            return False
    return True


def _pattern_automorphisms(facts: FrozenSet[Fact], fresh_count: int) -> int:
    """Number of permutations of the fresh values mapping the fact set onto itself."""
    if fresh_count <= 1:
        return 1
    count = 0
    for permutation in itertools.permutations(range(fresh_count)):
        mapping = {i: permutation[i] for i in range(fresh_count)}
        remapped = set()
        for fact in facts:
            values = tuple(
                _Fresh(mapping[v.index]) if isinstance(v, _Fresh) else v
                for v in fact.values
            )
            remapped.add(Fact(fact.relation, values))
        if remapped == set(facts):
            count += 1
    return max(count, 1)


def _canonical_pattern_key(facts: FrozenSet[Fact], fresh_count: int) -> Tuple:
    """A canonical key of the fact set up to renaming of fresh values."""
    best: Optional[Tuple] = None
    indices = list(range(fresh_count))
    for permutation in itertools.permutations(indices):
        mapping = {i: permutation[i] for i in range(fresh_count)}
        rendered = tuple(
            sorted(
                (
                    fact.relation,
                    tuple(
                        ("fresh", mapping[v.index]) if isinstance(v, _Fresh) else ("const", repr(v))
                        for v in fact.values
                    ),
                )
                for fact in facts
            )
        )
        if best is None or rendered < best:
            best = rendered
    return best if best is not None else ()


def _is_minimal_witness(query: ConjunctiveQuery, facts: FrozenSet[Fact]) -> bool:
    """Is the fact set a *minimal* witness of the boolean query?"""
    instance = Instance(facts)
    if not evaluate_boolean(query, instance):
        return False
    return all(
        not evaluate_boolean(query, instance.remove(fact)) for fact in facts
    )


def asymptotic_order(
    query: ConjunctiveQuery,
    expected_sizes: Mapping[str, float] | float = 1.0,
    max_variables: int = 10,
) -> AsymptoticOrder:
    """Leading-order asymptotics of ``μ_n[Q]`` for a boolean conjunctive query.

    Parameters
    ----------
    query:
        A boolean conjunctive query (only ``=``/``!=`` comparisons).
    expected_sizes:
        Expected relation sizes ``S_R`` — either one number for all
        relations or a mapping per relation name.
    """
    if not query.is_boolean:
        raise SecurityAnalysisError("asymptotic_order expects a boolean query")
    _check_no_order_predicates(query)
    variables = sorted(query.variables)
    if len(variables) > max_variables:
        raise SecurityAnalysisError(
            f"query has {len(variables)} variables; pattern enumeration over set "
            f"partitions is limited to {max_variables}"
        )
    constants = sorted(query.constants, key=repr)
    if isinstance(expected_sizes, (int, float)):
        sizes: Dict[str, float] = {name: float(expected_sizes) for name in query.relation_names}
    else:
        sizes = {name: float(expected_sizes.get(name, 1.0)) for name in query.relation_names}

    best_exponent: Optional[int] = None
    patterns_by_key: Dict[Tuple, WitnessPattern] = {}
    all_patterns: List[WitnessPattern] = []

    for partition in _set_partitions(variables):
        block_targets: List[List[object]] = []
        for _ in partition:
            block_targets.append(["fresh"] + list(constants))
        for targets in itertools.product(*block_targets) if partition else [()]:
            chosen_constants = [t for t in targets if t != "fresh"]
            if len(chosen_constants) != len(set(map(repr, chosen_constants))):
                continue  # two blocks on the same constant = a coarser partition
            assignment: Dict[Variable, object] = {}
            fresh_index = 0
            for block, target in zip(partition, targets):
                value: object
                if target == "fresh":
                    value = _Fresh(fresh_index)
                    fresh_index += 1
                else:
                    value = target
                for variable in block:
                    assignment[variable] = value
            if not _comparisons_hold_symbolically(query, assignment):
                continue
            facts = frozenset(atom.ground(assignment) for atom in query.body)
            weight = sum(fact.arity for fact in facts)
            exponent = weight - fresh_index
            coefficient_product = 1.0
            for fact in facts:
                coefficient_product *= sizes.get(fact.relation, 1.0)
            automorphisms = _pattern_automorphisms(facts, fresh_index)
            pattern = WitnessPattern(
                facts=facts,
                fresh_values=fresh_index,
                weight=weight,
                exponent=exponent,
                automorphisms=automorphisms,
                coefficient=coefficient_product / automorphisms,
            )
            all_patterns.append(pattern)
            if best_exponent is None or exponent < best_exponent:
                best_exponent = exponent

    if best_exponent is None:
        raise SecurityAnalysisError("the query admits no witness pattern")

    # Leading coefficient: sum over *distinct minimal* witness patterns at the
    # minimal exponent (the union of their presence events is μ_n[Q] at
    # leading order; non-minimal witnesses are dominated).
    for pattern in all_patterns:
        if pattern.exponent != best_exponent:
            continue
        if not _is_minimal_witness(query, pattern.facts):
            continue
        key = _canonical_pattern_key(pattern.facts, pattern.fresh_values)
        patterns_by_key.setdefault(key, pattern)

    minimal_patterns = tuple(patterns_by_key.values())
    coefficient = sum(p.coefficient for p in minimal_patterns)
    if not minimal_patterns:
        # Fall back (should not happen): use all patterns at the best exponent.
        fallback = [p for p in all_patterns if p.exponent == best_exponent]
        coefficient = sum(p.coefficient for p in fallback)
        minimal_patterns = tuple(fallback)
    return AsymptoticOrder(
        query=query,
        exponent=best_exponent,
        coefficient=coefficient,
        patterns=minimal_patterns,
    )


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------
def classify_practical_security(
    secret: ConjunctiveQuery,
    view: ConjunctiveQuery,
    schema: Schema,
    expected_sizes: Mapping[str, float] | float = 1.0,
    zero_threshold: float = 1e-12,
    *,
    critical_fn=None,
) -> PracticalSecurityReport:
    """Classify a boolean (secret, view) pair per Section 6.2.

    Checks perfect security first (Theorem 4.5); otherwise compares the
    asymptotic orders of ``μ_n[V]`` and ``μ_n[Q ∧ V]``:

    * ``exponent(QV) > exponent(V)``  →  practical security (limit 0),
    * ``exponent(QV) = exponent(V)``  →  practical disclosure with limit
      ``coefficient(QV)/coefficient(V)``.

    Without an explicit ``critical_fn`` the call delegates to the
    default :class:`~repro.session.AnalysisSession`, which caches the
    underlying Theorem 4.5 critical-tuple computation.
    """
    from .security import decide_security

    if critical_fn is None:
        from ..session.default import default_session

        return (
            default_session(schema)
            .practical(
                secret,
                view,
                expected_sizes=expected_sizes,
                zero_threshold=zero_threshold,
            )
            .report
        )

    if not secret.is_boolean or not view.is_boolean:
        raise SecurityAnalysisError(
            "classify_practical_security expects boolean secret and view queries"
        )
    decision = decide_security(secret, view, schema, critical_fn=critical_fn)
    if decision.secure:
        return PracticalSecurityReport(
            level=PracticalSecurityLevel.PERFECT,
            limit=0.0,
            secret_order=None,
            view_order=None,
            joint_order=None,
            explanation="critical tuples are disjoint: the view provides no information "
            "about the secret for any distribution (Theorem 4.5)",
        )

    secret_order = asymptotic_order(secret, expected_sizes)
    view_order = asymptotic_order(view, expected_sizes)
    joint = conjoin(secret, view, name=f"{secret.name}_and_{view.name}")
    joint_order = asymptotic_order(joint, expected_sizes)

    if joint_order.exponent < view_order.exponent:
        raise SecurityAnalysisError(
            "inconsistent asymptotic orders (joint decays slower than the view); "
            "this indicates a pattern-enumeration bound was hit"
        )
    if joint_order.exponent > view_order.exponent:
        return PracticalSecurityReport(
            level=PracticalSecurityLevel.PRACTICAL_SECURITY,
            limit=0.0,
            secret_order=secret_order,
            view_order=view_order,
            joint_order=joint_order,
            explanation=(
                f"μ_n[QV] = Θ(n^-{joint_order.exponent}) vanishes faster than "
                f"μ_n[V] = Θ(n^-{view_order.exponent}); the conditional probability "
                "tends to 0 — the disclosure is negligible for large domains"
            ),
        )

    def limiting_value(order: AsymptoticOrder) -> float:
        # At exponent 0 the number of witnesses is Poisson with the given
        # mean, so the limiting probability is 1 − e^{−coefficient}.
        import math

        if order.exponent == 0:
            return 1.0 - math.exp(-order.coefficient)
        return order.coefficient

    denominator = limiting_value(view_order)
    limit = limiting_value(joint_order) / denominator if denominator else 1.0
    level = (
        PracticalSecurityLevel.PRACTICAL_SECURITY
        if limit <= zero_threshold
        else PracticalSecurityLevel.PRACTICAL_DISCLOSURE
    )
    return PracticalSecurityReport(
        level=level,
        limit=limit,
        secret_order=secret_order,
        view_order=view_order,
        joint_order=joint_order,
        explanation=(
            f"μ_n[QV] and μ_n[V] decay at the same rate n^-{view_order.exponent}; "
            f"the conditional probability tends to ≈{limit:.4g} — a non-negligible disclosure"
            if level is PracticalSecurityLevel.PRACTICAL_DISCLOSURE
            else "the leading coefficients cancel; the disclosure is negligible"
        ),
    )


# ---------------------------------------------------------------------------
# Empirical validation
# ---------------------------------------------------------------------------
def empirical_mu(
    query: ConjunctiveQuery,
    domain_size: int,
    expected_sizes: Mapping[str, float] | float = 1.0,
    samples: int = 5_000,
    seed: int = 0,
    arities: Optional[Mapping[str, int]] = None,
) -> float:
    """Monte-Carlo estimate of ``μ_n[Q]`` at one concrete domain size ``n``.

    Builds the asymptotic model's dictionary (each fact of relation ``R``
    with arity ``a`` has probability ``S_R / n^a``) over a fresh integer
    domain and samples instances.

    ``arities`` supplies the arity of each relation; when omitted the
    arities are inferred from the query's atoms.
    """
    if not query.is_boolean:
        raise SecurityAnalysisError("empirical_mu expects a boolean query")
    inferred: Dict[str, int] = {}
    for atom in query.body:
        inferred.setdefault(atom.relation, atom.arity)
    if arities:
        inferred.update(arities)
    # The domain must contain the query's constants, padded with fresh
    # integers up to the requested size.
    constants = sorted(query.constants, key=repr)
    if len(constants) > domain_size:
        raise SecurityAnalysisError(
            f"domain_size={domain_size} is smaller than the number of constants "
            f"({len(constants)}) mentioned by the query"
        )
    padding = [i for i in range(domain_size) if i not in constants]
    domain = Domain(
        list(constants) + padding[: domain_size - len(constants)],
        name=f"D{domain_size}",
    )
    relations = [
        RelationSchema(name, tuple(f"a{i}" for i in range(arity)))
        for name, arity in sorted(inferred.items())
    ]
    schema = Schema(relations, domain=domain)
    if isinstance(expected_sizes, (int, float)):
        sizes = {name: float(expected_sizes) for name in inferred}
    else:
        sizes = {name: float(expected_sizes.get(name, 1.0)) for name in inferred}
    del schema  # the relation-wise sampler below scales to huge tuple spaces
    # Per-relation fact probabilities in the asymptotic model.
    fact_probabilities: Dict[str, float] = {
        name: min(1.0, sizes[name] / float(domain_size) ** arity)
        for name, arity in inferred.items()
    }

    import random

    rng = random.Random(seed)
    hits = 0
    values = list(domain.values)
    for _ in range(samples):
        facts: List[Fact] = []
        for name, arity in inferred.items():
            p = fact_probabilities[name]
            expected = sizes[name]
            # Sampling every cell is infeasible (n^arity cells), so draw the
            # number of present facts (binomial ≈ Poisson for sparse spaces)
            # and place them uniformly at random; collisions are de-duplicated
            # and vanishingly rare in the sparse regime.
            total_cells = float(domain_size) ** arity
            count = _sample_binomial(rng, total_cells, p, expected)
            chosen = set()
            for _ in range(count):
                chosen.add(tuple(rng.choice(values) for _ in range(arity)))
            facts.extend(Fact(name, row) for row in chosen)
        if evaluate_boolean(query, Instance(facts)):
            hits += 1
    return hits / samples


def _sample_binomial(rng, total_cells: float, p: float, expected: float) -> int:
    """Sample the number of present facts.

    For the huge, sparse spaces of the asymptotic model a Poisson
    approximation with mean ``expected`` is used; for small spaces an
    exact binomial is drawn.
    """
    if total_cells <= 64:
        n = int(total_cells)
        return sum(1 for _ in range(n) if rng.random() < p)
    # Poisson sampling via inversion (mean = expected).
    import math

    mean = expected
    l = math.exp(-mean)
    k = 0
    prob = 1.0
    while True:
        prob *= rng.random()
        if prob <= l:
            return k
        k += 1
        if k > 1000:
            return k
