"""The ``minimal`` criticality engine: the Appendix A minimal-instance search.

This is the historical implementation of
:func:`repro.core.critical.critical_tuples`, moved verbatim into the
engine layer: for monotone queries it suffices to consider instances
that are homomorphic images of the query body, so a tuple is critical
iff some valuation maps a subgoal onto it and the produced answer
disappears when the tuple is removed.  Cost is
``O(|body| · |D|^{#vars})`` per candidate tuple.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from ...cq.atoms import Atom
from ...cq.evaluation import answer_contains, answer_tuple
from ...cq.query import ConjunctiveQuery
from ...cq.terms import Variable, is_constant
from ...exceptions import IntractableAnalysisError
from ...relational.domain import Domain
from ...relational.instance import Instance
from ...relational.schema import Schema
from ...relational.tuples import Fact, tuple_space
from .base import DEFAULT_MAX_VALUATIONS, CriticalityEngine, InstanceConstraint

__all__ = [
    "candidate_critical_facts",
    "is_critical",
    "critical_tuples",
    "MinimalEngine",
]


def _tuple_space_set(schema: Schema, domain: Optional[Domain]) -> FrozenSet[Fact]:
    return frozenset(tuple_space(schema, domain))


def _subgoal_groundings(
    atom: Atom, domain: Domain, allowed: FrozenSet[Fact]
) -> Iterator[Fact]:
    """All facts of ``tup(D)`` that are homomorphic images of one subgoal."""
    positions_by_variable: Dict[Variable, List[int]] = {}
    fixed: Dict[int, object] = {}
    for index, term in enumerate(atom.terms):
        if is_constant(term):
            fixed[index] = term.value
        else:
            positions_by_variable.setdefault(term, []).append(index)
    variables = sorted(positions_by_variable)
    for combo in itertools.product(domain.values, repeat=len(variables)):
        values: List[object] = [None] * atom.arity
        for index, value in fixed.items():
            values[index] = value
        for variable, value in zip(variables, combo):
            for index in positions_by_variable[variable]:
                values[index] = value
        fact = Fact(atom.relation, values)
        if fact in allowed:
            yield fact


def candidate_critical_facts(
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    allowed: Optional[FrozenSet[Fact]] = None,
) -> FrozenSet[Fact]:
    """Facts that are homomorphic images of some subgoal of the query.

    Every critical tuple must be such an image (a minimal witnessing
    instance is an image of the body), so this set is a superset of
    ``crit_D(Q)`` and is the candidate pool scanned by
    :func:`critical_tuples`.  The converse fails in general — the paper's
    example ``Q():-R(x,y,z,z,u),R(x,x,x,y,y)`` has the non-critical image
    ``R(a,a,b,b,c)`` — which is exactly why the full check below exists.

    ``allowed`` lets a caller that already materialised the tuple space
    pass it in instead of paying for a second enumeration.
    """
    domain = domain or schema.domain
    if allowed is None:
        allowed = _tuple_space_set(schema, domain)
    candidates: Set[Fact] = set()
    for atom in query.body:
        candidates.update(_subgoal_groundings(atom, domain, allowed))
    return frozenset(candidates)


def _seed_valuation(atom: Atom, fact: Fact) -> Optional[Dict[Variable, object]]:
    """The partial valuation mapping ``atom`` onto ``fact`` (None on mismatch).

    Shared by every engine's subgoal-to-fact matching so the engines can
    never diverge on what counts as a homomorphic image.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    seed: Dict[Variable, object] = {}
    for term, value in zip(atom.terms, fact.values):
        if is_constant(term):
            if term.value != value:
                return None
        else:
            bound = seed.get(term, _UNBOUND)
            if bound is _UNBOUND:
                seed[term] = value
            elif bound != value:
                return None
    return seed


def _valuations_mapping_subgoal_to_fact(
    query: ConjunctiveQuery,
    atom_index: int,
    fact: Fact,
    domain: Domain,
    max_valuations: int,
) -> Iterator[Dict[Variable, object]]:
    """All total valuations of the query's variables that map one subgoal onto ``fact``."""
    seed = _seed_valuation(query.body[atom_index], fact)
    if seed is None:
        return
    remaining = sorted(v for v in query.variables if v not in seed)
    total = len(domain) ** len(remaining) if remaining else 1
    if total > max_valuations:
        raise IntractableAnalysisError(
            f"critical-tuple search would enumerate {total} valuations for one subgoal; "
            f"exceeds the configured bound ({max_valuations}); shrink the domain",
            size_estimate=total,
        )
    for combo in itertools.product(domain.values, repeat=len(remaining)):
        valuation = dict(seed)
        valuation.update(zip(remaining, combo))
        yield valuation


class _Unbound:
    __repr__ = lambda self: "<unbound>"  # noqa: E731  # pragma: no cover


_UNBOUND = _Unbound()


def _comparisons_hold(query: ConjunctiveQuery, valuation: Dict[Variable, object]) -> bool:
    return all(comparison.evaluate(valuation) for comparison in query.comparisons)


def is_critical(
    fact: Fact,
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    max_valuations: int = DEFAULT_MAX_VALUATIONS,
    *,
    allowed: Optional[FrozenSet[Fact]] = None,
) -> bool:
    """Decide ``fact ∈ crit_D(Q)`` via the minimal-instance search.

    ``constraint``, when given, must be closed under subsets (keys,
    denial constraints); criticality is then relative to instances
    satisfying it (the ``crit_D(Q, K)`` of Corollary 5.3).

    Unions of conjunctive queries are supported: the minimal witnessing
    instance is then an image of one disjunct's body, but the answer
    must disappear from the *whole union* when the fact is removed.

    ``allowed`` lets a batch caller pass a pre-materialised ``tup(D)``.
    """
    domain = domain or schema.domain
    if allowed is None:
        allowed = _tuple_space_set(schema, domain)
    if fact not in allowed:
        return False
    disjuncts = getattr(query, "disjuncts", None) or (query,)
    for disjunct in disjuncts:
        for atom_index in range(len(disjunct.body)):
            for valuation in _valuations_mapping_subgoal_to_fact(
                disjunct, atom_index, fact, domain, max_valuations
            ):
                if not _comparisons_hold(disjunct, valuation):
                    continue
                body_facts = [atom.ground(valuation) for atom in disjunct.body]
                if any(f not in allowed for f in body_facts):
                    continue
                witness = Instance(body_facts)
                if fact not in witness:
                    continue
                if constraint is not None and not constraint(witness):
                    continue
                produced = answer_tuple(disjunct, valuation)
                without = witness.remove(fact)
                if constraint is not None and not constraint(without):
                    # A subset-closed constraint can never rule the smaller
                    # instance out, but guard anyway for caller-supplied
                    # predicates that are not actually subset-closed.
                    continue
                # Delta check: only the produced row is re-derived on the
                # shrunken witness (head-seeded on the compiled engine)
                # instead of re-evaluating the whole query per candidate.
                if not answer_contains(query, without, produced):
                    return True
    return False


def critical_tuples(
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    max_valuations: int = DEFAULT_MAX_VALUATIONS,
) -> FrozenSet[Fact]:
    """``crit_D(Q)`` (or ``crit_D(Q, K)`` when a constraint is given)."""
    domain = domain or schema.domain
    result = {
        fact
        for fact in candidate_critical_facts(query, schema, domain)
        if is_critical(fact, query, schema, domain, constraint, max_valuations)
    }
    return frozenset(result)


class MinimalEngine(CriticalityEngine):
    """The behaviour-identical minimal-instance search engine."""

    name = "minimal"

    def is_critical(
        self,
        fact,
        query,
        schema,
        domain=None,
        constraint=None,
        max_valuations=DEFAULT_MAX_VALUATIONS,
        *,
        allowed=None,
    ):
        return is_critical(
            fact, query, schema, domain, constraint, max_valuations, allowed=allowed
        )

    def critical_tuples(
        self,
        query,
        schema,
        domain=None,
        constraint=None,
        max_valuations=DEFAULT_MAX_VALUATIONS,
    ):
        return critical_tuples(query, schema, domain, constraint, max_valuations)
