"""The shared-critical-tuple computation behind Theorem 4.5 verdicts."""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Set

from ...cq.query import ConjunctiveQuery
from ...exceptions import SecurityAnalysisError
from ...relational.domain import Domain
from ...relational.schema import Schema
from ...relational.tuples import Fact
from .base import (
    DEFAULT_MAX_VALUATIONS,
    InstanceConstraint,
    create_criticality_engine,
)
from .minimal import _tuple_space_set, candidate_critical_facts

__all__ = ["common_critical_tuples"]


def common_critical_tuples(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery],
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    *,
    critical_fn=None,
    criticality_engine=None,
    max_valuations: int = DEFAULT_MAX_VALUATIONS,
) -> FrozenSet[Fact]:
    """``crit_D(S) ∩ crit_D(V̄)`` where ``crit_D(V̄) = ∪_i crit_D(V_i)``.

    This is the set whose emptiness characterises query-view security
    (Theorem 4.5); it is also the set of tuples whose status must be
    disclosed to *restore* security via Corollary 5.4.

    ``critical_fn`` (same signature as the engines'
    :meth:`~repro.core.criticality.CriticalityEngine.critical_tuples`)
    lets a session supply its cached provider for the full-set
    computations; ``criticality_engine`` names the engine used for the
    per-fact candidate filtering (and for the full sets when no
    ``critical_fn`` is given).  ``max_valuations`` bounds the valuation
    space of *every* criticality check performed here — the full secret
    set and the per-view re-checks alike.  (When ``critical_fn`` is a
    session's cached provider, a warm cache may serve the secret's set
    without re-checking the bound; the bound guards computation cost,
    not the result.)
    """
    if not views:
        raise SecurityAnalysisError("at least one view is required")
    engine = create_criticality_engine(criticality_engine)
    if critical_fn is None:
        critical_fn = engine.critical_tuples
    secret_critical = critical_fn(
        secret, schema, domain, constraint, max_valuations=max_valuations
    )
    if not secret_critical:
        return frozenset()
    # One tuple space for every candidate filter and per-fact re-check
    # below — re-enumerating it per overlapping fact dominates the loop
    # on larger domains.
    allowed = _tuple_space_set(schema, domain or schema.domain)
    common: Set[Fact] = set()
    for view in views:
        view_candidates = candidate_critical_facts(view, schema, domain, allowed=allowed)
        overlap = secret_critical & view_candidates
        for fact in overlap:
            if engine.is_critical(
                fact,
                view,
                schema,
                domain,
                constraint,
                max_valuations=max_valuations,
                allowed=allowed,
            ):
                common.add(fact)
    return frozenset(common)
