"""The criticality-engine interface and registry.

Every verdict this library produces — Theorem 4.5 security, collusion,
prior knowledge, leakage bounds, practical security — funnels through
the computation of critical-tuple sets ``crit_D(Q)`` (Definition 4.4).
That computation is therefore a *pluggable engine*, mirroring the
verification-engine registry of :mod:`repro.session.engines`:

* ``minimal`` — the Appendix A minimal-instance search, scanning every
  candidate fact with a full valuation enumeration (the historical
  behaviour of :func:`repro.core.critical.critical_tuples`);
* ``naive`` — the literal Definition 4.4 instance enumeration, kept for
  cross-validation and ablation benchmarks;
* ``pruned-parallel`` — the default: the minimal-instance search with
  early comparison/constant propagation, symmetry reduction over
  interchangeable domain values, and an optional process-pool fan-out
  over candidate facts (see :mod:`repro.core.criticality.pruned`).

Engines are selected by name — ``AnalysisSession(criticality_engine=
"minimal")``, ``decide_security(..., criticality_engine="naive")``, or
``repro-audit --criticality-engine pruned-parallel`` — and third
parties can plug in their own with :func:`register_criticality_engine`.
All registered engines must return *identical* critical-tuple sets;
only their cost profile may differ.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Union

from ...exceptions import SecurityAnalysisError
from ...relational.domain import Domain
from ...relational.instance import Instance
from ...relational.schema import Schema
from ...relational.tuples import Fact

__all__ = [
    "InstanceConstraint",
    "DEFAULT_MAX_VALUATIONS",
    "DEFAULT_CRITICALITY_ENGINE",
    "CriticalityEngine",
    "register_criticality_engine",
    "available_criticality_engines",
    "create_criticality_engine",
]

#: Predicate on instances used to relativise criticality (must be closed
#: under subsets for the minimal-instance search to remain complete).
InstanceConstraint = Callable[[Instance], bool]

#: Guard on the number of valuations explored per subgoal.
DEFAULT_MAX_VALUATIONS = 2_000_000

#: Engine used when no explicit selection is made anywhere in the stack.
DEFAULT_CRITICALITY_ENGINE = "pruned-parallel"


class CriticalityEngine:
    """Interface of a ``crit_D(Q)`` computation strategy.

    Subclasses implement :meth:`is_critical` and :meth:`critical_tuples`
    with the exact semantics of Definition 4.4 (relativised to an
    instance constraint when one is given).  Engines are interchangeable
    — the test suite cross-validates them against each other — and a
    bound :meth:`critical_tuples` is a valid ``critical_fn`` provider
    for every core decision procedure.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def is_critical(
        self,
        fact: Fact,
        query,
        schema: Schema,
        domain: Optional[Domain] = None,
        constraint: Optional[InstanceConstraint] = None,
        max_valuations: int = DEFAULT_MAX_VALUATIONS,
        *,
        allowed: Optional[FrozenSet[Fact]] = None,
    ) -> bool:
        """Decide ``fact ∈ crit_D(Q)`` (or ``crit_D(Q, K)``).

        ``allowed`` optionally passes a pre-materialised ``tup(D)`` so
        batch callers don't re-enumerate the tuple space per fact.
        """
        raise NotImplementedError

    def critical_tuples(
        self,
        query,
        schema: Schema,
        domain: Optional[Domain] = None,
        constraint: Optional[InstanceConstraint] = None,
        max_valuations: int = DEFAULT_MAX_VALUATIONS,
    ) -> FrozenSet[Fact]:
        """``crit_D(Q)`` (or ``crit_D(Q, K)`` when a constraint is given)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner used in reports."""
        return f"{self.name} criticality engine"


_REGISTRY: Dict[str, Callable[[], CriticalityEngine]] = {}


def register_criticality_engine(
    name: str, factory: Callable[[], CriticalityEngine]
) -> None:
    """Register (or replace) a criticality-engine factory under ``name``."""
    if not name:
        raise SecurityAnalysisError("criticality engine name must be non-empty")
    _REGISTRY[name] = factory


def available_criticality_engines() -> List[str]:
    """The registered criticality-engine names, sorted."""
    return sorted(_REGISTRY)


def create_criticality_engine(
    engine: Union[str, CriticalityEngine, None] = None,
) -> CriticalityEngine:
    """Instantiate a criticality engine.

    ``None`` selects :data:`DEFAULT_CRITICALITY_ENGINE`; an existing
    :class:`CriticalityEngine` instance passes through unchanged; a
    string is looked up in the registry, raising a
    :class:`SecurityAnalysisError` listing the available names when
    unknown.
    """
    if engine is None:
        engine = DEFAULT_CRITICALITY_ENGINE
    if isinstance(engine, CriticalityEngine):
        return engine
    try:
        factory = _REGISTRY[engine]
    except (KeyError, TypeError):
        raise SecurityAnalysisError(
            f"unknown criticality engine {engine!r}; available engines: "
            f"{', '.join(available_criticality_engines())}"
        ) from None
    return factory()
