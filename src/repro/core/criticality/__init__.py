"""Pluggable criticality engines: named strategies for computing ``crit_D(Q)``.

The registry mirrors :mod:`repro.session.engines`:

* ``minimal`` — the Appendix A minimal-instance search (the historical
  behaviour of :mod:`repro.core.critical`, behaviour-identical);
* ``naive`` — literal Definition 4.4 instance enumeration (ablation and
  cross-validation only);
* ``pruned-parallel`` — the default: early comparison/constant
  propagation, symmetry reduction over interchangeable domain values,
  and an optional process-pool fan-out over candidate facts (serial
  fallback via ``REPRO_CRITICALITY_WORKERS=0``).

All engines return identical critical-tuple sets; the test suite
cross-validates them against each other.  Select one with
``AnalysisSession(criticality_engine=...)``, the ``criticality_engine``
keyword of the core decision procedures, or the CLI's
``--criticality-engine`` flag.
"""

from .base import (
    DEFAULT_CRITICALITY_ENGINE,
    DEFAULT_MAX_VALUATIONS,
    CriticalityEngine,
    InstanceConstraint,
    available_criticality_engines,
    create_criticality_engine,
    register_criticality_engine,
)
from .common import common_critical_tuples
from .minimal import (
    MinimalEngine,
    candidate_critical_facts,
    critical_tuples,
    is_critical,
)
from .naive import NaiveEngine, critical_tuples_naive, is_critical_naive
from .pruned import WORKERS_ENV, PrunedParallelEngine

__all__ = [
    "CriticalityEngine",
    "MinimalEngine",
    "NaiveEngine",
    "PrunedParallelEngine",
    "InstanceConstraint",
    "DEFAULT_MAX_VALUATIONS",
    "DEFAULT_CRITICALITY_ENGINE",
    "WORKERS_ENV",
    "register_criticality_engine",
    "available_criticality_engines",
    "create_criticality_engine",
    "candidate_critical_facts",
    "is_critical",
    "is_critical_naive",
    "critical_tuples",
    "critical_tuples_naive",
    "common_critical_tuples",
]

register_criticality_engine(MinimalEngine.name, MinimalEngine)
register_criticality_engine(NaiveEngine.name, NaiveEngine)
register_criticality_engine(PrunedParallelEngine.name, PrunedParallelEngine)
