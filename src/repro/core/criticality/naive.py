"""The ``naive`` criticality engine: literal Definition 4.4 enumeration.

Enumerates every instance of ``inst(D)`` (``2^|tup(D)|`` of them), so it
is exponential in the tuple-space size; it exists for cross-validation
in tests and for the ablation benchmark, and supports arbitrary
(subset-closed) instance constraints.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ...cq.evaluation import delta_changes
from ...cq.query import ConjunctiveQuery
from ...relational.domain import Domain
from ...relational.instance import enumerate_instances
from ...relational.schema import Schema
from ...relational.tuples import Fact, tuple_space
from .base import DEFAULT_MAX_VALUATIONS, CriticalityEngine, InstanceConstraint

__all__ = ["is_critical_naive", "critical_tuples_naive", "NaiveEngine"]


def is_critical_naive(
    fact: Fact,
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    max_tuples: int = 16,
) -> bool:
    """Literal Definition 4.4: enumerate every instance of ``inst(D)``.

    Exponential in ``|tup(D)|``; used for cross-validation in tests and
    for the ablation benchmark.
    """
    domain = domain or schema.domain
    facts = tuple_space(schema, domain)
    if fact not in facts:
        return False
    for instance in enumerate_instances(schema, domain, max_tuples=max_tuples):
        if constraint is not None and not constraint(instance):
            continue
        with_fact = instance.add(fact)
        if constraint is not None and not constraint(with_fact):
            continue
        # Delta evaluation: on the compiled engine only derivations using
        # ``fact`` are re-derived (a fact unifying with no subgoal is
        # skipped outright); the naive engine evaluates twice in full.
        if delta_changes(query, with_fact, fact):
            return True
    return False


def critical_tuples_naive(
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    max_tuples: int = 16,
) -> FrozenSet[Fact]:
    """``crit_D(Q)`` computed with the naive instance enumeration."""
    domain = domain or schema.domain
    result = {
        fact
        for fact in tuple_space(schema, domain)
        if is_critical_naive(fact, query, schema, domain, constraint, max_tuples)
    }
    return frozenset(result)


class NaiveEngine(CriticalityEngine):
    """The literal Definition 4.4 enumeration engine (ablation only).

    The engine-interface ``max_valuations`` bound does not apply to the
    instance enumeration; its cost is governed by ``max_tuples`` (the
    largest tuple-space size enumerated), set at construction.
    """

    name = "naive"

    def __init__(self, max_tuples: int = 16):
        self._max_tuples = max_tuples

    def is_critical(
        self,
        fact,
        query,
        schema,
        domain=None,
        constraint=None,
        max_valuations=DEFAULT_MAX_VALUATIONS,
        *,
        allowed=None,
    ):
        # max_valuations does not apply (the naive search is bounded by
        # max_tuples) and `allowed` is a batch-caller hint the instance
        # enumeration cannot exploit.
        del max_valuations, allowed
        return is_critical_naive(
            fact, query, schema, domain, constraint, self._max_tuples
        )

    def critical_tuples(
        self,
        query,
        schema,
        domain=None,
        constraint=None,
        max_valuations=DEFAULT_MAX_VALUATIONS,
    ):
        del max_valuations  # the naive search is bounded by max_tuples instead
        return critical_tuples_naive(
            query, schema, domain, constraint, self._max_tuples
        )
