"""The ``pruned-parallel`` criticality engine (the default).

Three optimisations over the ``minimal`` engine, all verdict-preserving:

1. **Early comparison/constant propagation.**  Instead of materialising
   every total valuation (``|D|^{#remaining}``) and checking the
   comparison predicates at the leaves, the valuation space is explored
   by backtracking: a comparison (or a subgoal's tuple-space membership,
   on typed schemas) is checked as soon as its last variable is bound,
   cutting the whole subtree on failure.  Duplicate witness checks —
   distinct valuations grounding the body to the same instance and
   answer — are memoized.

2. **Symmetry reduction over interchangeable domain values.**  Over the
   untyped analysis schemas built by Proposition 4.9's domain
   construction, ``crit_D(Q)`` is invariant under every permutation of
   the domain that fixes the query's constants: query evaluation
   commutes with such renamings as long as no *order* predicate can
   tell two values apart.  Candidate facts are therefore grouped into
   orbits (canonical renaming of the non-constant values) and only one
   representative per orbit is checked.  The reduction is applied only
   when it is sound: untyped schema (no per-attribute domains), no
   order predicates, no instance constraint; otherwise every candidate
   is checked individually (still with pruning 1).

3. **Process-pool fan-out.**  Candidate facts are independent, so the
   representatives are distributed over a
   :class:`concurrent.futures.ProcessPoolExecutor`.  The pool is used
   only when the estimated work is large enough to amortise process
   startup, never when an (unpicklable) instance constraint is present,
   and any pool failure falls back to the serial path.  The
   ``REPRO_CRITICALITY_WORKERS`` environment variable overrides the
   heuristic: ``0`` or ``1`` forces the serial fallback, ``n > 1``
   forces a pool of ``n`` workers.
"""

from __future__ import annotations

import itertools
import math
import os
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...cq.evaluation import answer_contains, answer_tuple
from ...exceptions import IntractableAnalysisError, ReproError, SecurityAnalysisError
from ...relational.domain import Domain
from ...relational.instance import Instance
from ...relational.schema import Schema
from ...relational.tuples import Fact
from .base import DEFAULT_MAX_VALUATIONS, CriticalityEngine, InstanceConstraint
from .minimal import _seed_valuation, _tuple_space_set, candidate_critical_facts

__all__ = ["PrunedParallelEngine", "WORKERS_ENV"]

#: Environment variable selecting the worker count (0/1 = serial).
WORKERS_ENV = "REPRO_CRITICALITY_WORKERS"

#: Auto-parallelism thresholds: don't pay process startup for small work.
_PARALLEL_MIN_CANDIDATES = 64
_PARALLEL_MIN_WORK = 250_000
_MAX_AUTO_WORKERS = 8

#: Bound on the per-search witness memo: duplicate witnesses are worth
#: caching (repeated subgoals, symmetric joins), but a search near the
#: max_valuations bound with mostly-distinct groundings must stay at
#: bounded memory like the minimal engine's streaming enumeration.
_WITNESS_CACHE_LIMIT = 4096


def _disjuncts(query) -> Tuple:
    return getattr(query, "disjuncts", None) or (query,)


def _space_is_full(query, schema: Schema, domain: Domain) -> bool:
    """Whether grounded body facts are guaranteed inside ``tup(D)``.

    When true the search can skip the per-fact tuple-space membership
    checks entirely.  Requires an untyped schema (no per-attribute
    domains restricting positions) *and* every query constant to lie in
    the domain — a body atom's constant is the only way a grounding can
    produce a value outside it (variables are bound to candidate-fact or
    domain values only).
    """
    if any(relation.attribute_domains for relation in schema):
        return False
    return all(value in domain for value in query.constants)


def _pruned_witness_search(
    query,
    disjunct,
    seed: Dict,
    fact: Fact,
    domain: Domain,
    allowed: FrozenSet[Fact],
    full_space: bool,
    constraint: Optional[InstanceConstraint],
    max_valuations: int,
) -> bool:
    """Backtracking search for a witnessing valuation extending ``seed``.

    Explores the same valuation space as the minimal engine (raising the
    same :class:`IntractableAnalysisError` on the same pre-enumeration
    bound), but checks each comparison — and, on typed schemas, each
    subgoal's tuple-space membership — at the earliest point where all
    of its variables are bound, so failing branches are cut before the
    remaining variables are enumerated.
    """
    remaining = sorted(v for v in disjunct.variables if v not in seed)
    total = len(domain) ** len(remaining) if remaining else 1
    if total > max_valuations:
        raise IntractableAnalysisError(
            f"critical-tuple search would enumerate {total} valuations for one subgoal; "
            f"exceeds the configured bound ({max_valuations}); shrink the domain",
            size_estimate=total,
        )

    witness_cache: Dict[Tuple[FrozenSet[Fact], Tuple], bool] = {}

    def check_leaf(valuation: Dict) -> bool:
        body_facts = [atom.ground(valuation) for atom in disjunct.body]
        if not full_space and any(f not in allowed for f in body_facts):
            return False
        witness_facts = frozenset(body_facts)
        if fact not in witness_facts:
            return False
        produced = answer_tuple(disjunct, valuation)
        key = (witness_facts, produced)
        cached = witness_cache.get(key)
        if cached is not None:
            return cached
        result = False
        witness = Instance(body_facts)
        if constraint is None or constraint(witness):
            without = witness.remove(fact)
            # A subset-closed constraint can never rule the smaller
            # instance out, but guard anyway for caller-supplied
            # predicates that are not actually subset-closed.
            if constraint is None or constraint(without):
                # Delta check: re-derive only the produced row on the
                # shrunken witness instead of the full answer set.
                result = not answer_contains(query, without, produced)
        if len(witness_cache) < _WITNESS_CACHE_LIMIT:
            witness_cache[key] = result
        return result

    # Comparisons fully bound by the seed are decided once, up front;
    # the rest ("pending") are scheduled into the backtracking search.
    pending: List = []
    for comparison in disjunct.comparisons:
        if not comparison.variables:
            continue  # constant-only comparisons were checked by the caller
        if all(v in seed for v in comparison.variables):
            if not comparison.evaluate(seed):
                return False
        else:
            pending.append(comparison)

    valuation = dict(seed)
    if not remaining:
        return check_leaf(valuation)

    if not pending and full_space:
        # No pruning opportunity: plain enumeration (with the witness
        # memoization still amortising duplicate groundings).
        for combo in itertools.product(domain.values, repeat=len(remaining)):
            valuation.update(zip(remaining, combo))
            if check_leaf(valuation):
                return True
        return False

    # Bind comparison variables first: the earlier a comparison's last
    # variable is bound, the larger the subtree a failure cuts.
    compare_vars = {v for c in pending for v in c.variables}
    remaining.sort(key=lambda v: (v not in compare_vars, v))
    positions = {v: i for i, v in enumerate(remaining)}

    # Schedule each check at the step binding its last free variable.
    comp_at: List[List] = [[] for _ in remaining]
    for comparison in pending:
        free = [v for v in comparison.variables if v not in seed]
        comp_at[max(positions[v] for v in free)].append(comparison)
    atom_at: List[List] = [[] for _ in remaining]
    if not full_space:
        for atom in disjunct.body:
            free = [v for v in atom.variables if v not in seed]
            if free:
                atom_at[max(positions[v] for v in free)].append(atom)
            elif atom.ground(seed) not in allowed:
                return False

    def extend(index: int) -> bool:
        if index == len(remaining):
            return check_leaf(valuation)
        variable = remaining[index]
        for value in domain.values:
            valuation[variable] = value
            if all(c.evaluate(valuation) for c in comp_at[index]) and all(
                a.ground(valuation) in allowed for a in atom_at[index]
            ):
                if extend(index + 1):
                    return True
        del valuation[variable]
        return False

    return extend(0)


def _pruned_is_critical(
    fact: Fact,
    query,
    schema: Schema,
    domain: Domain,
    constraint: Optional[InstanceConstraint],
    max_valuations: int,
    allowed: Optional[FrozenSet[Fact]] = None,
    full_space: Optional[bool] = None,
) -> bool:
    """Decide ``fact ∈ crit_D(Q)`` with the pruned backtracking search."""
    if allowed is None:
        allowed = _tuple_space_set(schema, domain)
    if fact not in allowed:
        return False
    if full_space is None:
        full_space = _space_is_full(query, schema, domain)
    for disjunct in _disjuncts(query):
        if not all(
            c.evaluate({}) for c in disjunct.comparisons if not c.variables
        ):
            continue  # a false constant comparison makes the disjunct unsatisfiable
        for atom in disjunct.body:
            seed = _seed_valuation(atom, fact)
            if seed is None:
                continue
            if _pruned_witness_search(
                query,
                disjunct,
                seed,
                fact,
                domain,
                allowed,
                full_space,
                constraint,
                max_valuations,
            ):
                return True
    return False


# -- symmetry reduction ----------------------------------------------------------
def _symmetry_applies(
    query, schema: Schema, constraint: Optional[InstanceConstraint]
) -> bool:
    """Whether orbit reduction is sound for this call.

    Criticality is invariant under domain permutations fixing the
    query's constants exactly when (a) nothing distinguishes the
    remaining values — no order predicate, no per-attribute domain
    restricting the tuple space — and (b) no opaque instance constraint
    (which need not be permutation-invariant) is involved.
    """
    if constraint is not None:
        return False
    if query.has_order_predicates:
        return False
    return not any(relation.attribute_domains for relation in schema)


def _orbit_groups(
    candidates: Sequence[Fact], fixed: FrozenSet[object], domain: Domain
) -> Dict[Fact, List[Fact]]:
    """Group candidate facts by their canonical orbit representative.

    Values in ``fixed`` (the query's constants) are left untouched;
    every other value is renamed, in order of first occurrence, to the
    first interchangeable values of the domain.  Two facts share a
    representative iff one is the image of the other under a domain
    permutation fixing ``fixed`` pointwise.
    """
    interchangeable = [v for v in domain.values if v not in fixed]
    groups: Dict[Fact, List[Fact]] = {}
    for fact in candidates:
        renaming: Dict[object, object] = {}
        values = []
        for value in fact.values:
            if value in fixed or value not in domain:
                values.append(value)
            else:
                if value not in renaming:
                    renaming[value] = interchangeable[len(renaming)]
                values.append(renaming[value])
        groups.setdefault(Fact(fact.relation, values), []).append(fact)
    return groups


# -- parallel fan-out ------------------------------------------------------------
def _configured_workers() -> Optional[int]:
    raw = os.environ.get(WORKERS_ENV)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise SecurityAnalysisError(
            f"{WORKERS_ENV} must be an integer worker count, got {raw!r}"
        ) from None
    return max(0, value)


def _is_critical_batch(payload) -> List[bool]:
    """Pool worker: decide a chunk of candidate facts serially."""
    query, schema, domain, max_valuations, facts = payload
    allowed = _tuple_space_set(schema, domain)
    full_space = _space_is_full(query, schema, domain)
    return [
        _pruned_is_critical(
            fact, query, schema, domain, None, max_valuations, allowed, full_space
        )
        for fact in facts
    ]


class PrunedParallelEngine(CriticalityEngine):
    """Pruned + symmetry-reduced + optionally parallel minimal-instance search."""

    name = "pruned-parallel"

    def __init__(self, parallel: bool = True):
        self._parallel = parallel

    def is_critical(
        self,
        fact,
        query,
        schema,
        domain=None,
        constraint=None,
        max_valuations=DEFAULT_MAX_VALUATIONS,
        *,
        allowed=None,
    ):
        domain = domain or schema.domain
        return _pruned_is_critical(
            fact, query, schema, domain, constraint, max_valuations, allowed
        )

    def critical_tuples(
        self,
        query,
        schema,
        domain=None,
        constraint=None,
        max_valuations=DEFAULT_MAX_VALUATIONS,
    ):
        domain = domain or schema.domain
        allowed = _tuple_space_set(schema, domain)
        # key=repr: Fact's native ordering compares raw values, which
        # raises TypeError on mixed-type analysis domains (e.g. a numeric
        # query constant padded with string fresh constants).
        candidates = sorted(
            candidate_critical_facts(query, schema, domain, allowed=allowed), key=repr
        )
        if _symmetry_applies(query, schema, constraint):
            groups = _orbit_groups(candidates, frozenset(query.constants), domain)
        else:
            groups = {fact: [fact] for fact in candidates}
        representatives = list(groups)
        verdicts = self._verdicts(
            representatives, query, schema, domain, constraint, max_valuations, allowed
        )
        result = set()
        for representative, verdict in zip(representatives, verdicts):
            if verdict:
                result.update(groups[representative])
        return frozenset(result)

    # -- scheduling ---------------------------------------------------------------
    def _verdicts(
        self,
        representatives: List[Fact],
        query,
        schema,
        domain,
        constraint,
        max_valuations,
        allowed,
    ) -> List[bool]:
        workers = 0
        if self._parallel and constraint is None and len(representatives) > 1:
            workers = self._resolve_workers(len(representatives), query, domain)
        if workers > 1:
            try:
                return self._parallel_verdicts(
                    representatives, query, schema, domain, max_valuations, workers
                )
            except ReproError:
                raise  # deterministic library errors (e.g. intractable search)
            except Exception:
                pass  # pool unavailable or arguments unpicklable: serial fallback
        full_space = _space_is_full(query, schema, domain)
        return [
            _pruned_is_critical(
                fact, query, schema, domain, constraint, max_valuations, allowed,
                full_space,
            )
            for fact in representatives
        ]

    @staticmethod
    def _resolve_workers(representative_count: int, query, domain) -> int:
        configured = _configured_workers()
        if configured is not None:
            return 0 if configured <= 1 else configured
        cpus = os.cpu_count() or 1
        if cpus < 2 or representative_count < _PARALLEL_MIN_CANDIDATES:
            return 0
        widest = max(len(d.variables) for d in _disjuncts(query))
        estimated_work = representative_count * (len(domain) ** widest)
        if estimated_work < _PARALLEL_MIN_WORK:
            return 0
        return min(cpus, _MAX_AUTO_WORKERS)

    @staticmethod
    def _parallel_verdicts(
        representatives, query, schema, domain, max_valuations, workers
    ) -> List[bool]:
        from concurrent.futures import ProcessPoolExecutor

        chunk = max(1, math.ceil(len(representatives) / (workers * 4)))
        payloads = [
            (query, schema, domain, max_valuations, representatives[i : i + chunk])
            for i in range(0, len(representatives), chunk)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            batches = list(pool.map(_is_critical_batch, payloads))
        return [verdict for batch in batches for verdict in batch]
