"""Encrypted views (Section 5.4).

An *encrypted view* of a relation publishes the relation with every
attribute value passed through a perfect one-way, collision-free
function ``f``.  Under these idealised assumptions the view is an
isomorphic copy of the original relation: the adversary learns the full
join/equality structure (and in particular the cardinality) but not the
constants themselves.

Consequences reproduced here:

* the paper observes that *no* non-trivial secret query is perfectly
  secure with respect to an encrypted view, because the view reveals the
  cardinality of the relation (:func:`encrypted_view_security`);
* queries whose answer depends only on the equality structure (e.g.
  ``Q1():-R(x,y),R(y,z),x!=z``) are answerable from the encrypted view,
  while constant-mentioning queries (``Q2():-R('a',x)``) are not
  (:func:`answerable_from_encrypted_view`);
* the leakage measure of Section 6.1 still distinguishes minute from
  substantial disclosure; :class:`EncryptedViewAnswerIs` exposes the
  event "the encrypted view equals this published ciphertext" so the
  exact engine and the leakage machinery apply unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..cq.evaluation import evaluate
from ..cq.query import ConjunctiveQuery
from ..exceptions import SecurityAnalysisError
from ..probability.dictionary import Dictionary
from ..probability.engine import ExactEngine
from ..probability.events import Event, query_support
from ..relational.instance import Instance
from ..relational.schema import RelationSchema, Schema
from ..relational.tuples import Fact, facts_of_relation
from .criticality import create_criticality_engine

__all__ = [
    "EncryptedView",
    "EncryptedViewAnswerIs",
    "encrypted_view_security",
    "answerable_from_encrypted_view",
]


@dataclass(frozen=True)
class EncryptedView:
    """An attribute-wise encrypted publication of one relation.

    Two renderings are provided:

    * :meth:`answer` — the *semantic* answer: the canonical isomorphism
      class of the relation's contents (values replaced by
      first-occurrence indices).  Two instances produce the same answer
      iff they differ only by a value renaming, which is exactly the
      information an idealised encryption reveals.
    * :meth:`ciphertext` — a concrete keyed encryption using a salted
      hash, for the example applications that want to show realistic
      published data.
    """

    relation: str
    salt: str = "repro-one-way"

    #: Above this many distinct values the exact canonicalisation (which tries
    #: every renaming) falls back to a first-occurrence heuristic.
    MAX_EXACT_CANONICAL_VALUES = 8

    def answer(self, instance: Instance) -> FrozenSet[Tuple[int, ...]]:
        """Canonical form of the relation contents up to value renaming.

        Two instances whose relation contents differ only by an injective
        renaming of values produce the same answer — exactly the
        information an idealised per-value encryption reveals.  Because
        the paper's encryption is applied per *value*, codes are shared
        across rows and across attribute positions.
        """
        facts = sorted(instance.relation(self.relation))
        values: List[object] = []
        for fact in facts:
            for value in fact.values:
                if value not in values:
                    values.append(value)
        rows = [fact.values for fact in facts]
        if len(values) <= self.MAX_EXACT_CANONICAL_VALUES:
            return self._exact_canonical(rows, values)
        return self._heuristic_canonical(rows, values)

    @staticmethod
    def _exact_canonical(
        rows: List[Tuple[object, ...]], values: List[object]
    ) -> FrozenSet[Tuple[int, ...]]:
        """Minimum encoding over every injective renaming of the values."""
        import itertools as _it

        best: Optional[Tuple[Tuple[int, ...], ...]] = None
        indices = list(range(len(values)))
        for permutation in _it.permutations(indices):
            codes = {value: permutation[i] for i, value in enumerate(values)}
            encoded = tuple(
                sorted(tuple(codes[v] for v in row) for row in rows)
            )
            if best is None or encoded < best:
                best = encoded
        return frozenset(best or ())

    @staticmethod
    def _heuristic_canonical(
        rows: List[Tuple[object, ...]], values: List[object]
    ) -> FrozenSet[Tuple[int, ...]]:
        """First-occurrence encoding (used only for very large instances)."""
        codes = {value: i for i, value in enumerate(values)}
        return frozenset(tuple(codes[v] for v in row) for row in rows)

    def ciphertext(self, instance: Instance) -> FrozenSet[Tuple[str, ...]]:
        """A concrete encrypted rendering (salted hash per value)."""
        rows = []
        for fact in instance.relation(self.relation):
            rows.append(tuple(self._encrypt_value(v) for v in fact.values))
        return frozenset(rows)

    def _encrypt_value(self, value: object) -> str:
        digest = hashlib.sha256(f"{self.salt}|{value!r}".encode("utf8")).hexdigest()
        return digest[:12]

    def cardinality(self, instance: Instance) -> int:
        """The relation cardinality — always revealed by the encrypted view."""
        return len(instance.relation(self.relation))


class EncryptedViewAnswerIs(Event):
    """The event "the encrypted view of the relation equals this answer"."""

    def __init__(self, view: EncryptedView, answer: FrozenSet[Tuple[int, ...]]):
        self.view = view
        self.answer = answer

    def occurs(self, instance: Instance) -> bool:
        return self.view.answer(instance) == self.answer

    def support(self, schema: Schema) -> FrozenSet[Fact]:
        relation = schema.relation(self.view.relation)
        return frozenset(facts_of_relation(relation, schema.domain))

    def describe(self) -> str:
        return f"Enc({self.view.relation})(I) = {sorted(self.answer)}"


@dataclass(frozen=True)
class EncryptedSecurityReport:
    """Verdict for a secret query against an encrypted view."""

    secure: bool
    reason: str
    secret: ConjunctiveQuery
    view: EncryptedView


def encrypted_view_security(
    secret: ConjunctiveQuery,
    view: EncryptedView,
    schema: Schema,
) -> EncryptedSecurityReport:
    """Perfect security of a secret w.r.t. an encrypted view.

    The encrypted view reveals the cardinality of its relation, hence any
    secret with a critical tuple in that relation is insecure; secrets
    that do not depend on the encrypted relation at all remain secure.
    """
    crit = create_criticality_engine().critical_tuples(secret, schema)
    touches_relation = any(fact.relation == view.relation for fact in crit)
    if not crit:
        return EncryptedSecurityReport(
            secure=True,
            reason="the secret is trivial (no critical tuples)",
            secret=secret,
            view=view,
        )
    if not touches_relation:
        return EncryptedSecurityReport(
            secure=True,
            reason=(
                f"the secret does not depend on relation {view.relation!r}, "
                "so the encrypted view carries no information about it"
            ),
            secret=secret,
            view=view,
        )
    return EncryptedSecurityReport(
        secure=False,
        reason=(
            f"the encrypted view reveals the cardinality (and equality structure) of "
            f"{view.relation!r}, on which the secret depends — no such secret is "
            "perfectly secure (Section 5.4); use the leakage measure to grade the risk"
        ),
        secret=secret,
        view=view,
    )


def answerable_from_encrypted_view(
    query: ConjunctiveQuery,
    view: EncryptedView,
    dictionary: Dictionary,
    max_support_size: int = 20,
) -> bool:
    """Is the query's answer a function of the encrypted view's answer?

    Decided exactly over the dictionary's domain by grouping instances by
    their encrypted-view answer and checking the query answer is constant
    within every group.  Structure-only queries (equality patterns,
    inequalities) are answerable; queries mentioning constants are not.
    """
    schema = dictionary.schema
    engine = ExactEngine(dictionary, max_support_size=max_support_size)
    relation = schema.relation(view.relation)
    # key=repr: analysis domains may mix numeric and string constants,
    # which Python refuses to order directly.
    support = sorted(
        set(facts_of_relation(relation, schema.domain))
        | set(query_support(query, schema)),
        key=repr,
    )
    if len(support) > max_support_size:
        raise SecurityAnalysisError(
            f"support of {len(support)} facts is too large for the exact answerability check"
        )
    del engine  # only used for its support-size convention

    groups: Dict[FrozenSet[Tuple[int, ...]], FrozenSet] = {}
    import itertools as _it

    for r in range(len(support) + 1):
        for combo in _it.combinations(support, r):
            instance = Instance(combo)
            key = view.answer(instance)
            value = evaluate(query, instance)
            if key in groups and groups[key] != value:
                return False
            groups.setdefault(key, value)
    return True
