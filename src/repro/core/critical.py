"""Critical tuples (Definition 4.4) — compatibility shim.

The implementation moved to the :mod:`repro.core.criticality`
subpackage, which hosts the pluggable engine registry (``minimal``,
``naive``, ``pruned-parallel``).  This module re-exports the *minimal*
engine's per-query functions (``is_critical``, ``critical_tuples`` and
the naive variants) under their historical names so that existing
imports — ``from repro.core.critical import critical_tuples`` — keep
their exact semantics: the single-threaded minimal-instance search with
no symmetry reduction.  ``common_critical_tuples`` is the one
exception: it routes through the engine layer and therefore uses the
package default (``pruned-parallel``, cross-validated to return
identical sets) unless a ``critical_fn`` or ``criticality_engine`` is
passed.  New code should go through
:func:`repro.core.criticality.create_criticality_engine` (or the
session layer) instead.
"""

from __future__ import annotations

from .criticality.base import (  # noqa: F401  (re-exported compatibility names)
    DEFAULT_MAX_VALUATIONS,
    InstanceConstraint,
)
from .criticality.common import common_critical_tuples  # noqa: F401
from .criticality.minimal import (  # noqa: F401
    candidate_critical_facts,
    critical_tuples,
    is_critical,
)
from .criticality.naive import (  # noqa: F401
    critical_tuples_naive,
    is_critical_naive,
)

__all__ = [
    "candidate_critical_facts",
    "is_critical",
    "is_critical_naive",
    "critical_tuples",
    "critical_tuples_naive",
    "common_critical_tuples",
    "InstanceConstraint",
    "DEFAULT_MAX_VALUATIONS",
]
