"""Critical tuples (Definition 4.4) and their computation.

A tuple ``t ∈ tup(D)`` is *critical* for a query ``Q`` if there is an
instance ``I`` with ``Q(I − {t}) ≠ Q(I)``.  Critical tuples are the
bridge between the probabilistic definition of query-view security and
a purely logical criterion: Theorem 4.5 states that ``S`` is secure with
respect to ``V̄`` for every distribution iff
``crit_D(S) ∩ crit_D(V̄) = ∅``.

Two procedures are provided:

* :func:`is_critical` / :func:`critical_tuples` — the *minimal-instance*
  search justified by Appendix A: for monotone queries it suffices to
  consider instances that are homomorphic images of the query body, so a
  tuple is critical iff some valuation maps a subgoal onto it and the
  produced answer disappears when the tuple is removed.  Cost is
  ``O(|body| · |D|^{#vars})`` per candidate tuple.
* :func:`is_critical_naive` — literal enumeration of all instances
  (``2^|tup(D)|``); exists for cross-validation and for the ablation
  benchmark, and supports arbitrary (subset-closed) instance constraints.

Both accept an optional *instance constraint* (a predicate closed under
subsets, e.g. key constraints) which yields the relativised notion
``crit_D(Q, K)`` used by Corollary 5.3.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from ..cq.atoms import Atom
from ..cq.evaluation import answer_tuple, evaluate, satisfying_assignments
from ..cq.query import ConjunctiveQuery
from ..cq.terms import Variable, is_constant, is_variable
from ..exceptions import IntractableAnalysisError, SecurityAnalysisError
from ..relational.domain import Domain
from ..relational.instance import Instance, enumerate_instances
from ..relational.schema import Schema
from ..relational.tuples import Fact, tuple_space

__all__ = [
    "candidate_critical_facts",
    "is_critical",
    "is_critical_naive",
    "critical_tuples",
    "critical_tuples_naive",
    "common_critical_tuples",
]

#: Predicate on instances used to relativise criticality (must be closed
#: under subsets for the minimal-instance search to remain complete).
InstanceConstraint = Callable[[Instance], bool]

#: Guard on the number of valuations explored per subgoal.
DEFAULT_MAX_VALUATIONS = 2_000_000


def _tuple_space_set(schema: Schema, domain: Optional[Domain]) -> FrozenSet[Fact]:
    return frozenset(tuple_space(schema, domain))


def _subgoal_groundings(
    atom: Atom, domain: Domain, allowed: FrozenSet[Fact]
) -> Iterator[Fact]:
    """All facts of ``tup(D)`` that are homomorphic images of one subgoal."""
    positions_by_variable: Dict[Variable, List[int]] = {}
    fixed: Dict[int, object] = {}
    for index, term in enumerate(atom.terms):
        if is_constant(term):
            fixed[index] = term.value
        else:
            positions_by_variable.setdefault(term, []).append(index)
    variables = sorted(positions_by_variable)
    for combo in itertools.product(domain.values, repeat=len(variables)):
        values: List[object] = [None] * atom.arity
        for index, value in fixed.items():
            values[index] = value
        for variable, value in zip(variables, combo):
            for index in positions_by_variable[variable]:
                values[index] = value
        fact = Fact(atom.relation, values)
        if fact in allowed:
            yield fact


def candidate_critical_facts(
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
) -> FrozenSet[Fact]:
    """Facts that are homomorphic images of some subgoal of the query.

    Every critical tuple must be such an image (a minimal witnessing
    instance is an image of the body), so this set is a superset of
    ``crit_D(Q)`` and is the candidate pool scanned by
    :func:`critical_tuples`.  The converse fails in general — the paper's
    example ``Q():-R(x,y,z,z,u),R(x,x,x,y,y)`` has the non-critical image
    ``R(a,a,b,b,c)`` — which is exactly why the full check below exists.
    """
    domain = domain or schema.domain
    allowed = _tuple_space_set(schema, domain)
    candidates: Set[Fact] = set()
    for atom in query.body:
        candidates.update(_subgoal_groundings(atom, domain, allowed))
    return frozenset(candidates)


def _valuations_mapping_subgoal_to_fact(
    query: ConjunctiveQuery,
    atom_index: int,
    fact: Fact,
    domain: Domain,
    max_valuations: int,
) -> Iterator[Dict[Variable, object]]:
    """All total valuations of the query's variables that map one subgoal onto ``fact``."""
    atom = query.body[atom_index]
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return
    seed: Dict[Variable, object] = {}
    for term, value in zip(atom.terms, fact.values):
        if is_constant(term):
            if term.value != value:
                return
        else:
            bound = seed.get(term, _UNBOUND)
            if bound is _UNBOUND:
                seed[term] = value
            elif bound != value:
                return
    remaining = sorted(v for v in query.variables if v not in seed)
    total = len(domain) ** len(remaining) if remaining else 1
    if total > max_valuations:
        raise IntractableAnalysisError(
            f"critical-tuple search would enumerate {total} valuations for one subgoal; "
            f"exceeds the configured bound ({max_valuations}); shrink the domain",
            size_estimate=total,
        )
    for combo in itertools.product(domain.values, repeat=len(remaining)):
        valuation = dict(seed)
        valuation.update(zip(remaining, combo))
        yield valuation


class _Unbound:
    __repr__ = lambda self: "<unbound>"  # noqa: E731  # pragma: no cover


_UNBOUND = _Unbound()


def _comparisons_hold(query: ConjunctiveQuery, valuation: Dict[Variable, object]) -> bool:
    return all(comparison.evaluate(valuation) for comparison in query.comparisons)


def is_critical(
    fact: Fact,
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    max_valuations: int = DEFAULT_MAX_VALUATIONS,
) -> bool:
    """Decide ``fact ∈ crit_D(Q)`` via the minimal-instance search.

    ``constraint``, when given, must be closed under subsets (keys,
    denial constraints); criticality is then relative to instances
    satisfying it (the ``crit_D(Q, K)`` of Corollary 5.3).

    Unions of conjunctive queries are supported: the minimal witnessing
    instance is then an image of one disjunct's body, but the answer
    must disappear from the *whole union* when the fact is removed.
    """
    domain = domain or schema.domain
    allowed = _tuple_space_set(schema, domain)
    if fact not in allowed:
        return False
    disjuncts = getattr(query, "disjuncts", None) or (query,)
    for disjunct in disjuncts:
        for atom_index in range(len(disjunct.body)):
            for valuation in _valuations_mapping_subgoal_to_fact(
                disjunct, atom_index, fact, domain, max_valuations
            ):
                if not _comparisons_hold(disjunct, valuation):
                    continue
                body_facts = [atom.ground(valuation) for atom in disjunct.body]
                if any(f not in allowed for f in body_facts):
                    continue
                witness = Instance(body_facts)
                if fact not in witness:
                    continue
                if constraint is not None and not constraint(witness):
                    continue
                produced = answer_tuple(disjunct, valuation)
                without = witness.remove(fact)
                if constraint is not None and not constraint(without):
                    # A subset-closed constraint can never rule the smaller
                    # instance out, but guard anyway for caller-supplied
                    # predicates that are not actually subset-closed.
                    continue
                if produced not in evaluate(query, without):
                    return True
    return False


def is_critical_naive(
    fact: Fact,
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    max_tuples: int = 16,
) -> bool:
    """Literal Definition 4.4: enumerate every instance of ``inst(D)``.

    Exponential in ``|tup(D)|``; used for cross-validation in tests and
    for the ablation benchmark.
    """
    domain = domain or schema.domain
    facts = tuple_space(schema, domain)
    if fact not in facts:
        return False
    for instance in enumerate_instances(schema, domain, max_tuples=max_tuples):
        if constraint is not None and not constraint(instance):
            continue
        with_fact = instance.add(fact)
        if constraint is not None and not constraint(with_fact):
            continue
        if evaluate(query, with_fact) != evaluate(query, with_fact.remove(fact)):
            return True
    return False


def critical_tuples(
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    max_valuations: int = DEFAULT_MAX_VALUATIONS,
) -> FrozenSet[Fact]:
    """``crit_D(Q)`` (or ``crit_D(Q, K)`` when a constraint is given)."""
    domain = domain or schema.domain
    result = {
        fact
        for fact in candidate_critical_facts(query, schema, domain)
        if is_critical(fact, query, schema, domain, constraint, max_valuations)
    }
    return frozenset(result)


def critical_tuples_naive(
    query: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    max_tuples: int = 16,
) -> FrozenSet[Fact]:
    """``crit_D(Q)`` computed with the naive instance enumeration."""
    domain = domain or schema.domain
    result = {
        fact
        for fact in tuple_space(schema, domain)
        if is_critical_naive(fact, query, schema, domain, constraint, max_tuples)
    }
    return frozenset(result)


def common_critical_tuples(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery],
    schema: Schema,
    domain: Optional[Domain] = None,
    constraint: Optional[InstanceConstraint] = None,
    *,
    critical_fn=None,
) -> FrozenSet[Fact]:
    """``crit_D(S) ∩ crit_D(V̄)`` where ``crit_D(V̄) = ∪_i crit_D(V_i)``.

    This is the set whose emptiness characterises query-view security
    (Theorem 4.5); it is also the set of tuples whose status must be
    disclosed to *restore* security via Corollary 5.4.

    ``critical_fn`` (same signature as :func:`critical_tuples`) lets a
    session supply its cached provider for the full-set computations;
    the per-fact candidate filtering below stays direct either way.
    """
    if not views:
        raise SecurityAnalysisError("at least one view is required")
    critical_fn = critical_fn or critical_tuples
    secret_critical = critical_fn(secret, schema, domain, constraint)
    if not secret_critical:
        return frozenset()
    common: Set[Fact] = set()
    for view in views:
        view_candidates = candidate_critical_facts(view, schema, domain)
        overlap = secret_critical & view_candidates
        for fact in overlap:
            if is_critical(fact, view, schema, domain, constraint):
                common.add(fact)
    return frozenset(common)
