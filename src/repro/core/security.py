"""Query-view security decisions (Definition 4.1, Theorems 4.5 and 4.8).

Two complementary procedures are provided.

:func:`decide_security` implements the dictionary-independent decision of
Theorem 4.5: compute the critical tuples of the secret and of every view
over a sufficiently large analysis domain (Proposition 4.9) and check
that the intersection is empty.  The result is a :class:`SecurityDecision`
carrying the evidence (the common critical tuples when insecure).

:func:`verify_security_probabilistically` implements Definition 4.1
literally for a concrete dictionary: it enumerates every possible answer
``s`` of the secret and ``v̄`` of the views and checks
``P[S=s ∧ V̄=v̄] = P[S=s]·P[V̄=v̄]`` (Eq. 4) with exact rational
arithmetic.  It is exponential and meant for small domains — it is what
the test-suite uses to validate Theorem 4.5 end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..cq.query import ConjunctiveQuery
from ..cq.union import UnionQuery
from ..exceptions import SecurityAnalysisError
from ..probability.dictionary import Dictionary
from ..probability.kernel import ProbabilityKernel
from ..relational.domain import Domain
from ..relational.schema import Schema
from ..relational.tuples import Fact
from .domain_bounds import analysis_schema, required_domain_size, untyped_schema

__all__ = [
    "SecurityDecision",
    "decide_security",
    "is_secure",
    "verify_security_probabilistically",
    "independence_gap",
]


@dataclass(frozen=True)
class SecurityDecision:
    """Outcome of a dictionary-independent query-view security check.

    Attributes
    ----------
    secure:
        ``True`` iff the secret is secure with respect to the views for
        every probability distribution (Theorem 4.5).
    secret, views:
        The analysed queries.
    secret_critical:
        ``crit_D(S)`` over the analysis domain.
    view_critical:
        ``crit_D(V_i)`` per view, in view order.
    common_critical:
        ``crit_D(S) ∩ crit_D(V̄)`` — empty iff secure.
    domain:
        The analysis domain that was used.
    method:
        Which procedure produced the decision (``"critical-tuples"``).
    """

    secure: bool
    secret: ConjunctiveQuery
    views: Tuple[ConjunctiveQuery, ...]
    secret_critical: FrozenSet[Fact]
    view_critical: Tuple[FrozenSet[Fact], ...]
    common_critical: FrozenSet[Fact]
    domain: Domain
    method: str = "critical-tuples"

    @property
    def insecure_views(self) -> Tuple[ConjunctiveQuery, ...]:
        """The views that individually share a critical tuple with the secret."""
        offending = []
        for view, crit in zip(self.views, self.view_critical):
            if crit & self.secret_critical:
                offending.append(view)
        return tuple(offending)

    def explain(self) -> str:
        """A short human-readable explanation of the verdict."""
        if self.secure:
            return (
                f"{self.secret.name} is secure w.r.t. "
                f"{', '.join(v.name for v in self.views)}: "
                f"crit({self.secret.name}) and crit(views) are disjoint "
                f"(Theorem 4.5), for every probability distribution."
            )
        witnesses = ", ".join(repr(f) for f in sorted(self.common_critical, key=repr)[:5])
        more = "" if len(self.common_critical) <= 5 else ", ..."
        return (
            f"{self.secret.name} is NOT secure w.r.t. "
            f"{', '.join(v.name for v in self.views)}: "
            f"shared critical tuple(s) {witnesses}{more} exist, so some "
            f"distribution leaks information (Theorem 4.5)."
        )


def _require_query(value, role: str):
    """Uniform type validation for secrets and views.

    The legacy normalisation accepted a :class:`UnionQuery` secret only
    implicitly (through an ``isinstance`` tuple meant for views); this
    makes the contract explicit and the failure mode a clear
    :class:`SecurityAnalysisError` rather than an ``AttributeError``
    deep inside the critical-tuple search.
    """
    if isinstance(value, (ConjunctiveQuery, UnionQuery)):
        return value
    raise SecurityAnalysisError(
        f"the {role} must be a ConjunctiveQuery or a UnionQuery, "
        f"got {type(value).__name__}: {value!r}"
    )


def decide_security(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    critical_fn=None,
    criticality_engine=None,
) -> SecurityDecision:
    """Dictionary-independent security decision via Theorem 4.5.

    Parameters
    ----------
    secret:
        The confidential query ``S``.
    views:
        One view or a sequence of views ``V1, ..., Vk``.
    schema:
        The database schema the queries range over.
    domain:
        Analysis domain.  When omitted, a domain satisfying
        Proposition 4.9 is synthesised from the queries' constants.
    critical_fn:
        Critical-tuple provider with the signature of the engines'
        :meth:`~repro.core.criticality.CriticalityEngine.critical_tuples`.
        When omitted the call delegates to the module-level default
        :class:`~repro.session.AnalysisSession`, which memoizes every
        ``crit_D(Q)`` in a shared LRU cache; sessions pass their own
        cached provider here.
    criticality_engine:
        Name of the criticality engine (see
        :mod:`repro.core.criticality`) the default session should
        compute with; ignored when an explicit ``critical_fn`` is given
        (selection precedence: call-level provider → session engine →
        package default).
    """
    if critical_fn is None:
        from ..session.default import default_session

        return (
            default_session(schema, criticality_engine)
            .decide(secret, views, domain=domain)
            .decision
        )

    _require_query(secret, "secret")
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = [_require_query(view, "view") for view in views]
    if not views:
        raise SecurityAnalysisError("at least one view is required")

    if domain is None:
        working_schema = analysis_schema(schema, [secret, *views])
        domain = working_schema.domain
    else:
        working_schema = untyped_schema(schema, domain)
        minimum = required_domain_size([secret, *views])
        if len(domain) < minimum:
            raise SecurityAnalysisError(
                f"analysis domain has {len(domain)} constants but Proposition 4.9 "
                f"requires at least {minimum} for a domain-independent verdict"
            )

    secret_critical = critical_fn(secret, working_schema, domain)
    view_critical = tuple(
        critical_fn(view, working_schema, domain) for view in views
    )
    all_view_critical: set[Fact] = set()
    for crit in view_critical:
        all_view_critical |= crit
    common = frozenset(secret_critical & all_view_critical)
    return SecurityDecision(
        secure=not common,
        secret=secret,
        views=tuple(views),
        secret_critical=secret_critical,
        view_critical=view_critical,
        common_critical=common,
        domain=domain,
    )


def is_secure(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    criticality_engine=None,
) -> bool:
    """Convenience wrapper returning only the boolean verdict of
    :func:`decide_security`."""
    return decide_security(
        secret, views, schema, domain, criticality_engine=criticality_engine
    ).secure


def verify_security_probabilistically(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    dictionary: Dictionary,
    max_support_size: Optional[int] = None,
) -> bool:
    """Literal Definition 4.1 check for one concrete dictionary.

    Uses Eq. (4): for every pair of answers ``(s, v̄)`` attained over the
    support, check ``P[S=s ∧ V̄=v̄] = P[S=s]·P[V̄=v̄]`` exactly.  The
    joint answer distribution comes from the compiled kernel shared per
    dictionary, so repeated verification of the same pair — or a
    follow-up :func:`independence_gap` on it — enumerates the support
    only once.
    """
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    if not views:
        raise SecurityAnalysisError("at least one view is required")
    kernel = ProbabilityKernel.shared(dictionary)
    joint = kernel.joint_answer_distribution(
        [secret, *views], max_support_size=max_support_size
    )

    secret_marginal: Dict[FrozenSet, Fraction] = {}
    views_marginal: Dict[Tuple, Fraction] = {}
    for key, probability in joint.items():
        secret_answer, view_answers = key[0], key[1:]
        secret_marginal[secret_answer] = (
            secret_marginal.get(secret_answer, Fraction(0)) + probability
        )
        views_marginal[view_answers] = (
            views_marginal.get(view_answers, Fraction(0)) + probability
        )

    for secret_answer, p_secret in secret_marginal.items():
        for view_answers, p_views in views_marginal.items():
            p_joint = joint.get((secret_answer, *view_answers), Fraction(0))
            if p_joint != p_secret * p_views:
                return False
    return True


def independence_gap(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    dictionary: Dictionary,
    max_support_size: Optional[int] = None,
) -> Fraction:
    """The largest violation of Eq. (4) over all answer pairs.

    ``max_{s, v̄} |P[S=s ∧ V̄=v̄] − P[S=s]·P[V̄=v̄]|`` — zero iff the secret
    is secure for this dictionary.  Useful for quantifying *how far* an
    insecure pair is from independence under a specific distribution.
    Shares the kernel's memoized joint distribution with
    :func:`verify_security_probabilistically`.
    """
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    kernel = ProbabilityKernel.shared(dictionary)
    joint = kernel.joint_answer_distribution(
        [secret, *views], max_support_size=max_support_size
    )

    secret_marginal: Dict[FrozenSet, Fraction] = {}
    views_marginal: Dict[Tuple, Fraction] = {}
    for key, probability in joint.items():
        secret_answer, view_answers = key[0], key[1:]
        secret_marginal[secret_answer] = (
            secret_marginal.get(secret_answer, Fraction(0)) + probability
        )
        views_marginal[view_answers] = (
            views_marginal.get(view_answers, Fraction(0)) + probability
        )

    gap = Fraction(0)
    for secret_answer, p_secret in secret_marginal.items():
        for view_answers, p_views in views_marginal.items():
            p_joint = joint.get((secret_answer, *view_answers), Fraction(0))
            gap = max(gap, abs(p_joint - p_secret * p_views))
    return gap
