"""Query-view security under prior knowledge (Section 5).

The adversary may know something about the database beyond the
dictionary: integrity constraints, previously published views, the
status of specific tuples, or cardinality information.  Definition 5.1
relativises query-view security to such knowledge ``K``; Theorem 5.2
characterises it, and Corollaries 5.3–5.5 specialise the
characterisation into decision procedures for the knowledge classes the
paper analyses.  This module provides:

* a :class:`PriorKnowledge` hierarchy turning each knowledge class into
  an event over instances (for the exact numeric check of Definition
  5.1) and, when applicable, into an instance constraint (for the
  relativised critical tuples ``crit_D(Q, K)``);
* syntactic decision procedures:
    - :func:`decide_with_key_constraints`   (Corollary 5.3),
    - :func:`decide_with_cardinality_constraint` (Application 3),
    - :func:`decide_with_tuple_status`      (Corollary 5.4),
    - :func:`decide_with_prior_view`        (Corollary 5.5);
* :func:`verify_with_knowledge` — the literal Definition 5.1 / Eq. (7)
  check for one concrete dictionary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cq.evaluation import evaluate
from ..cq.homomorphism import find_query_homomorphism
from ..cq.query import ConjunctiveQuery
from ..cq.union import UnionQuery
from ..exceptions import KnowledgeError, SecurityAnalysisError
from ..probability.dictionary import Dictionary
from ..probability.events import (
    And,
    Event,
    FactAbsent,
    FactPresent,
    PredicateEvent,
    QueryAnswerIs,
)
from ..probability.kernel import ProbabilityKernel
from ..relational.domain import Domain
from ..relational.instance import Instance
from ..relational.schema import Schema
from ..relational.tuples import Fact, facts_of_relation
from .criticality import InstanceConstraint, common_critical_tuples, create_criticality_engine
from .domain_bounds import analysis_domain, analysis_schema, untyped_schema

__all__ = [
    "PriorKnowledge",
    "KeyConstraintKnowledge",
    "CardinalityConstraintKnowledge",
    "TupleStatusKnowledge",
    "PriorViewKnowledge",
    "ConjunctionKnowledge",
    "KnowledgeDecision",
    "decide_with_key_constraints",
    "decide_with_cardinality_constraint",
    "decide_with_tuple_status",
    "decide_with_prior_view",
    "decide_with_knowledge",
    "verify_with_knowledge",
]


# ---------------------------------------------------------------------------
# Knowledge classes
# ---------------------------------------------------------------------------
class PriorKnowledge:
    """Base class for prior knowledge ``K`` (a boolean property of instances)."""

    def event(self, schema: Schema) -> Event:
        """The knowledge as an event over instances (for numeric checks)."""
        raise NotImplementedError

    def instance_constraint(self) -> Optional[InstanceConstraint]:
        """A subset-closed instance predicate, when the knowledge is one.

        Key constraints are subset-closed (denial constraints) and can be
        pushed into the relativised critical-tuple computation; knowledge
        that is not subset-closed returns ``None``.
        """
        return None

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return type(self).__name__


class KeyConstraintKnowledge(PriorKnowledge):
    """Knowledge that certain attribute positions form keys (Corollary 5.3).

    Parameters
    ----------
    keys:
        Mapping from relation name to the tuple of key attribute
        *positions*.  When omitted, the keys declared on the schema's
        relations are used.
    """

    def __init__(self, keys: Optional[Mapping[str, Sequence[int]]] = None):
        self._keys: Dict[str, Tuple[int, ...]] = {
            name: tuple(positions) for name, positions in (keys or {}).items()
        }

    @classmethod
    def from_schema(cls, schema: Schema) -> "KeyConstraintKnowledge":
        """Build the knowledge from the keys declared on the schema."""
        keys = {
            relation.name: relation.key_positions()
            for relation in schema
            if relation.key_positions()
        }
        if not keys:
            raise KnowledgeError("the schema declares no key constraints")
        return cls(keys)

    def key_positions(self, relation: str) -> Tuple[int, ...]:
        """Key positions of a relation (empty when it has no declared key)."""
        return self._keys.get(relation, ())

    def equivalent(self, left: Fact, right: Fact) -> bool:
        """The relation ``t ≡_K t'``: same relation and same key value."""
        if left.relation != right.relation:
            return False
        positions = self.key_positions(left.relation)
        if not positions:
            return left == right
        return left.project(positions) == right.project(positions)

    def instance_constraint(self) -> InstanceConstraint:
        keys = self._keys

        def satisfies(instance: Instance) -> bool:
            for relation, positions in keys.items():
                seen: Dict[Tuple[object, ...], Fact] = {}
                for fact in instance.relation(relation):
                    value = fact.project(positions)
                    other = seen.get(value)
                    if other is not None and other != fact:
                        return False
                    seen[value] = fact
            return True

        return satisfies

    def event(self, schema: Schema) -> Event:
        support: set[Fact] = set()
        for relation_name in self._keys:
            relation = schema.relation(relation_name)
            support.update(facts_of_relation(relation, schema.domain))
        return PredicateEvent(
            self.instance_constraint(), description=self.describe(), support=support
        )

    def describe(self) -> str:
        parts = [f"{rel}[{','.join(map(str, pos))}]" for rel, pos in sorted(self._keys.items())]
        return f"key constraints on {', '.join(parts)}"


class CardinalityConstraintKnowledge(PriorKnowledge):
    """Knowledge about the number of tuples in the instance (Application 3).

    ``comparison`` is one of ``"exactly"``, ``"at_most"``, ``"at_least"``;
    ``relation`` restricts the count to one relation (``None`` counts the
    whole instance).
    """

    COMPARISONS = ("exactly", "at_most", "at_least")

    def __init__(self, comparison: str, count: int, relation: Optional[str] = None):
        if comparison not in self.COMPARISONS:
            raise KnowledgeError(
                f"comparison must be one of {self.COMPARISONS}, got {comparison!r}"
            )
        if count < 0:
            raise KnowledgeError("cardinality bound must be non-negative")
        self.comparison = comparison
        self.count = count
        self.relation = relation

    def _matches(self, size: int) -> bool:
        if self.comparison == "exactly":
            return size == self.count
        if self.comparison == "at_most":
            return size <= self.count
        return size >= self.count

    def event(self, schema: Schema) -> Event:
        relation = self.relation

        def predicate(instance: Instance) -> bool:
            size = len(instance.relation(relation)) if relation else len(instance)
            return self._matches(size)

        return PredicateEvent(predicate, description=self.describe(), support=None)

    def describe(self) -> str:
        target = f"|{self.relation}|" if self.relation else "|I|"
        symbol = {"exactly": "=", "at_most": "<=", "at_least": ">="}[self.comparison]
        return f"cardinality constraint {target} {symbol} {self.count}"


class TupleStatusKnowledge(PriorKnowledge):
    """Knowledge of the presence/absence of specific tuples (Corollary 5.4)."""

    def __init__(
        self,
        present: Iterable[Fact] = (),
        absent: Iterable[Fact] = (),
    ):
        self.present = frozenset(present)
        self.absent = frozenset(absent)
        overlap = self.present & self.absent
        if overlap:
            raise KnowledgeError(
                f"tuples declared both present and absent: {sorted(overlap)}"
            )

    def covers(self, fact: Fact) -> bool:
        """True when the status of ``fact`` is disclosed by this knowledge."""
        return fact in self.present or fact in self.absent

    def event(self, schema: Schema) -> Event:
        events: List[Event] = [FactPresent(f) for f in sorted(self.present)]
        events.extend(FactAbsent(f) for f in sorted(self.absent))
        if not events:
            return PredicateEvent(lambda _: True, description="trivial knowledge", support=[])
        return And(tuple(events))

    def describe(self) -> str:
        parts = []
        if self.present:
            parts.append("present: " + ", ".join(repr(f) for f in sorted(self.present)))
        if self.absent:
            parts.append("absent: " + ", ".join(repr(f) for f in sorted(self.absent)))
        return "tuple status (" + "; ".join(parts) + ")" if parts else "trivial tuple status"


class PriorViewKnowledge(PriorKnowledge):
    """Knowledge that a previously published view ``U`` has a known answer
    (Application 5 / the *relative security* scenario)."""

    def __init__(
        self,
        view: ConjunctiveQuery,
        answer: Optional[Iterable[Tuple[object, ...]]] = None,
        boolean_answer: Optional[bool] = None,
    ):
        self.view = view
        if view.is_boolean:
            if boolean_answer is None:
                boolean_answer = True
            self.answer = frozenset({()}) if boolean_answer else frozenset()
        else:
            if answer is None:
                raise KnowledgeError(
                    "a non-boolean prior view requires its published answer"
                )
            self.answer = frozenset(tuple(row) for row in answer)

    def event(self, schema: Schema) -> Event:
        return QueryAnswerIs(self.view, self.answer)

    def describe(self) -> str:
        return f"prior view {self.view.name} with answer {sorted(self.answer, key=repr)}"


class ConjunctionKnowledge(PriorKnowledge):
    """Conjunction of several pieces of prior knowledge."""

    def __init__(self, parts: Sequence[PriorKnowledge]):
        if not parts:
            raise KnowledgeError("conjunction knowledge requires at least one part")
        self.parts = tuple(parts)

    def event(self, schema: Schema) -> Event:
        return And(tuple(part.event(schema) for part in self.parts))

    def instance_constraint(self) -> Optional[InstanceConstraint]:
        constraints = [part.instance_constraint() for part in self.parts]
        if any(c is None for c in constraints):
            return None

        def satisfies(instance: Instance) -> bool:
            return all(constraint(instance) for constraint in constraints)  # type: ignore[misc]

        return satisfies

    def describe(self) -> str:
        return " AND ".join(part.describe() for part in self.parts)


# ---------------------------------------------------------------------------
# Decisions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KnowledgeDecision:
    """Outcome of a security analysis under prior knowledge.

    ``secure`` is ``True``/``False`` when the procedure reached a
    dictionary-independent verdict and ``None`` when the syntactic rule
    was inconclusive (callers can then fall back to
    :func:`verify_with_knowledge` for a per-dictionary answer).
    """

    secure: Optional[bool]
    method: str
    explanation: str
    evidence: Mapping[str, object] = field(default_factory=dict)

    @property
    def conclusive(self) -> bool:
        """True when the procedure produced a definite verdict."""
        return self.secure is not None


def decide_with_key_constraints(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    knowledge: KeyConstraintKnowledge,
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    critical_fn=None,
) -> KnowledgeDecision:
    """Corollary 5.3: security under key constraints.

    ``K : S | V̄`` holds for every distribution iff no tuple of
    ``crit_D(S, K)`` is key-equivalent (``≡_K``) to a tuple of
    ``crit_D(V̄, K)``.
    """
    critical_fn = critical_fn or create_criticality_engine().critical_tuples
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    working_schema = (
        analysis_schema(schema, [secret, *views]) if domain is None else untyped_schema(schema, domain)
    )
    domain = working_schema.domain
    constraint = knowledge.instance_constraint()

    secret_critical = critical_fn(secret, working_schema, domain, constraint)
    view_critical: set[Fact] = set()
    for view in views:
        view_critical |= critical_fn(view, working_schema, domain, constraint)

    violating = [
        (t, t2)
        for t in sorted(secret_critical, key=repr)
        for t2 in sorted(view_critical, key=repr)
        if knowledge.equivalent(t, t2)
    ]
    secure = not violating
    explanation = (
        "no key-equivalent pair of relativised critical tuples exists (Corollary 5.3)"
        if secure
        else (
            f"key-equivalent critical tuples exist, e.g. {violating[0][0]!r} ≡_K "
            f"{violating[0][1]!r} (Corollary 5.3)"
        )
    )
    return KnowledgeDecision(
        secure=secure,
        method="corollary-5.3-keys",
        explanation=explanation,
        evidence={
            "secret_critical": frozenset(secret_critical),
            "view_critical": frozenset(view_critical),
            "violating_pairs": tuple(violating),
            "domain": domain,
        },
    )


def decide_with_cardinality_constraint(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    knowledge: CardinalityConstraintKnowledge,
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    critical_fn=None,
) -> KnowledgeDecision:
    """Application 3: cardinality knowledge destroys all non-trivial security.

    With any cardinality constraint as prior knowledge, ``K : S | V̄``
    fails unless the secret or the views are trivial (constant over all
    instances, i.e. have no critical tuples).
    """
    critical_fn = critical_fn or create_criticality_engine().critical_tuples
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    working_schema = (
        analysis_schema(schema, [secret, *views]) if domain is None else untyped_schema(schema, domain)
    )
    domain = working_schema.domain
    secret_trivial = not critical_fn(secret, working_schema, domain)
    views_trivial = all(not critical_fn(v, working_schema, domain) for v in views)
    secure = secret_trivial or views_trivial
    explanation = (
        "the secret or the views are trivial (no critical tuples), so the cardinality "
        "knowledge cannot create a correlation"
        if secure
        else (
            f"{knowledge.describe()} couples every tuple of the instance; no non-trivial "
            "query is secure under cardinality knowledge (Application 3 of Theorem 5.2)"
        )
    )
    return KnowledgeDecision(
        secure=secure,
        method="application-3-cardinality",
        explanation=explanation,
        evidence={"secret_trivial": secret_trivial, "views_trivial": views_trivial},
    )


def decide_with_tuple_status(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    knowledge: TupleStatusKnowledge,
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    critical_fn=None,
    criticality_engine=None,
) -> KnowledgeDecision:
    """Corollary 5.4: disclosing the status of common critical tuples protects.

    If the status (present or absent) of **every** tuple in
    ``crit_D(S) ∩ crit_D(V̄)`` is part of the knowledge, then
    ``K : S | V̄`` holds for every distribution.  When only some are
    covered the rule is inconclusive (``secure=None``).
    """
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    working_schema = (
        analysis_schema(schema, [secret, *views]) if domain is None else untyped_schema(schema, domain)
    )
    domain = working_schema.domain
    common = common_critical_tuples(
        secret,
        views,
        working_schema,
        domain,
        critical_fn=critical_fn,
        criticality_engine=criticality_engine,
    )
    uncovered = frozenset(t for t in common if not knowledge.covers(t))
    if not common:
        return KnowledgeDecision(
            secure=True,
            method="corollary-5.4-tuple-status",
            explanation="the pair is already secure without the knowledge (no common critical tuples)",
            evidence={"common_critical": common, "uncovered": uncovered},
        )
    if not uncovered:
        return KnowledgeDecision(
            secure=True,
            method="corollary-5.4-tuple-status",
            explanation=(
                "the status of every common critical tuple is disclosed by the knowledge, "
                "so the remaining uncertainty factorises (Corollary 5.4)"
            ),
            evidence={"common_critical": common, "uncovered": uncovered},
        )
    return KnowledgeDecision(
        secure=None,
        method="corollary-5.4-tuple-status",
        explanation=(
            f"{len(uncovered)} common critical tuple(s) remain undisclosed; Corollary 5.4 "
            "does not apply — use verify_with_knowledge for a per-dictionary check"
        ),
        evidence={"common_critical": common, "uncovered": uncovered},
    )


# -- Corollary 5.5 (prior views) ------------------------------------------------
def _connected_components(query: ConjunctiveQuery) -> List[Tuple[int, ...]]:
    """Indices of body atoms grouped into variable-connected components."""
    n = len(query.body)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for i in range(n):
        for j in range(i + 1, n):
            if query.body[i].variables & query.body[j].variables:
                union(i, j)
    groups: Dict[int, List[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    return [tuple(v) for v in groups.values()]


def _subquery(query: ConjunctiveQuery, atom_indices: Sequence[int], name: str) -> Optional[ConjunctiveQuery]:
    """The boolean query on a subset of body atoms; ``None`` means 'true'."""
    if not atom_indices:
        return None
    body = tuple(query.body[i] for i in atom_indices)
    variables = {v for atom in body for v in atom.variables}
    comparisons = tuple(
        c for c in query.comparisons if c.variables and c.variables <= variables
    )
    return ConjunctiveQuery((), body, comparisons, name=name)


def _implies(antecedent: Optional[ConjunctiveQuery], consequent: Optional[ConjunctiveQuery]) -> bool:
    """Boolean-query implication ``antecedent ⇒ consequent`` (None = 'true')."""
    if consequent is None:
        return True
    if antecedent is None:
        return False
    return find_query_homomorphism(consequent, antecedent) is not None


def _crit_or_empty(
    query: Optional[ConjunctiveQuery], schema: Schema, domain: Domain, critical_fn
) -> FrozenSet[Fact]:
    if query is None:
        return frozenset()
    return critical_fn(query, schema, domain)


def decide_with_prior_view(
    secret: ConjunctiveQuery,
    view: ConjunctiveQuery,
    prior: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    critical_fn=None,
) -> KnowledgeDecision:
    """Corollary 5.5: does publishing ``view`` leak anything beyond ``prior``?

    All three queries must be boolean conjunctive queries (the paper's
    statement of the corollary).  The procedure searches for splits
    ``U = U1 ∧ U2``, ``S = S1 ∧ S2``, ``V = V1 ∧ V2`` along
    variable-connected components such that the part-1 critical tuples
    are disjoint from the part-2 critical tuples, ``U1 ⇒ S1`` and
    ``U2 ⇒ V2``.  Finding such splits certifies ``U : S | V`` for every
    distribution; exhausting them without success reports insecurity.
    """
    critical_fn = critical_fn or create_criticality_engine().critical_tuples
    for query, label in ((secret, "secret"), (view, "view"), (prior, "prior view")):
        if not query.is_boolean:
            raise KnowledgeError(
                f"Corollary 5.5 is implemented for boolean queries; the {label} has arity "
                f"{query.arity} (use verify_with_knowledge for the general numeric check)"
            )
    all_queries = [secret, view, prior]
    working_schema = (
        analysis_schema(schema, all_queries) if domain is None else untyped_schema(schema, domain)
    )
    domain = working_schema.domain

    prior_components = _connected_components(prior)
    secret_components = _connected_components(secret)
    view_components = _connected_components(view)

    def splits(query: ConjunctiveQuery, components: List[Tuple[int, ...]], label: str):
        for mask in range(1 << len(components)):
            part1 = [i for c, comp in enumerate(components) if mask >> c & 1 for i in comp]
            part2 = [i for c, comp in enumerate(components) if not mask >> c & 1 for i in comp]
            yield (
                _subquery(query, part1, f"{label}1"),
                _subquery(query, part2, f"{label}2"),
            )

    crit_cache: Dict[Optional[Tuple[int, ...]], FrozenSet[Fact]] = {}

    def crit_of(query: Optional[ConjunctiveQuery]) -> FrozenSet[Fact]:
        key = None if query is None else tuple(sorted(repr(a) for a in query.body))
        if key not in crit_cache:
            crit_cache[key] = _crit_or_empty(query, working_schema, domain, critical_fn)
        return crit_cache[key]

    for prior1, prior2 in splits(prior, prior_components, "U"):
        for secret1, secret2 in splits(secret, secret_components, "S"):
            if not _implies(prior1, secret1):
                continue
            for view1, view2 in splits(view, view_components, "V"):
                if not _implies(prior2, view2):
                    continue
                part1 = crit_of(prior1) | crit_of(secret1) | crit_of(view1)
                part2 = crit_of(prior2) | crit_of(secret2) | crit_of(view2)
                if part1 & part2:
                    continue
                return KnowledgeDecision(
                    secure=True,
                    method="corollary-5.5-prior-view",
                    explanation=(
                        "a component split satisfying Corollary 5.5 exists: the prior view "
                        "already accounts for everything the new view says about the secret"
                    ),
                    evidence={
                        "prior_split": (prior1, prior2),
                        "secret_split": (secret1, secret2),
                        "view_split": (view1, view2),
                        "domain": domain,
                    },
                )
    return KnowledgeDecision(
        secure=False,
        method="corollary-5.5-prior-view",
        explanation=(
            "no split along variable-connected components satisfies Corollary 5.5; "
            "publishing the view discloses additional information about the secret"
        ),
        evidence={"domain": domain},
    )


def decide_with_knowledge(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    knowledge: PriorKnowledge,
    schema: Schema,
    domain: Optional[Domain] = None,
    *,
    critical_fn=None,
    criticality_engine=None,
) -> KnowledgeDecision:
    """Dispatch to the appropriate syntactic decision procedure.

    Falls back to an inconclusive decision (``secure=None``) for
    knowledge classes without a syntactic rule (use
    :func:`verify_with_knowledge` in that case).  Without an explicit
    ``critical_fn`` the call delegates to the default
    :class:`~repro.session.AnalysisSession` for critical-tuple caching;
    ``criticality_engine`` selects which engine that session computes
    with (see :mod:`repro.core.criticality`).
    """
    if critical_fn is None:
        from ..session.default import default_session

        return (
            default_session(schema, criticality_engine)
            .with_knowledge(secret, views, knowledge, domain=domain)
            .decision
        )
    if isinstance(knowledge, KeyConstraintKnowledge):
        return decide_with_key_constraints(
            secret, views, knowledge, schema, domain, critical_fn=critical_fn
        )
    if isinstance(knowledge, CardinalityConstraintKnowledge):
        return decide_with_cardinality_constraint(
            secret, views, knowledge, schema, domain, critical_fn=critical_fn
        )
    if isinstance(knowledge, TupleStatusKnowledge):
        return decide_with_tuple_status(
            secret,
            views,
            knowledge,
            schema,
            domain,
            critical_fn=critical_fn,
            criticality_engine=criticality_engine,
        )
    if isinstance(knowledge, PriorViewKnowledge):
        view_list = (
            [views] if isinstance(views, (ConjunctiveQuery, UnionQuery)) else list(views)
        )
        if (
            knowledge.view.is_boolean
            and len(view_list) == 1
            and view_list[0].is_boolean
            and secret.is_boolean
            and knowledge.answer == frozenset({()})
        ):
            return decide_with_prior_view(
                secret,
                view_list[0],
                knowledge.view,
                schema,
                domain,
                critical_fn=critical_fn,
            )
    return KnowledgeDecision(
        secure=None,
        method="unsupported-knowledge",
        explanation=(
            f"no syntactic decision procedure for {knowledge.describe()}; "
            "use verify_with_knowledge for a per-dictionary check"
        ),
    )


def verify_with_knowledge(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    knowledge: PriorKnowledge | Event,
    dictionary: Dictionary,
    max_support_size: Optional[int] = None,
) -> bool:
    """Literal Definition 5.1 / Eq. (7) check for one concrete dictionary.

    For every answer ``s`` of the secret and ``v̄`` of the views (attained
    with non-zero probability together with ``K``), check

        P[S=s ∧ V̄=v̄ ∧ K]·P[K] = P[S=s ∧ K]·P[V̄=v̄ ∧ K].

    The compiled kernel enumerates **one** joint distribution over the
    secret's answers, the views' answers and the truth of ``K``; every
    probability of Eq. (7) is then a marginal of it, where the seed
    implementation re-enumerated the support for each answer combination.
    """
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    if not views:
        raise SecurityAnalysisError("at least one view is required")
    schema = dictionary.schema
    knowledge_event = (
        knowledge if isinstance(knowledge, Event) else knowledge.event(schema)
    )
    kernel = ProbabilityKernel.shared(dictionary)
    joint = kernel.joint_distribution(
        [secret, *views], [knowledge_event], max_support_size=max_support_size
    )

    zero = Fraction(0)
    p_knowledge = zero
    p_secret_k: Dict[FrozenSet, Fraction] = {}
    p_views_k: Dict[Tuple, Fraction] = {}
    p_all_k: Dict[Tuple, Fraction] = {}
    for key, probability in joint.items():
        if not key[-1]:  # K fails on this outcome class
            continue
        secret_answer, view_answers = key[0], key[1:-1]
        p_knowledge += probability
        p_secret_k[secret_answer] = p_secret_k.get(secret_answer, zero) + probability
        p_views_k[view_answers] = p_views_k.get(view_answers, zero) + probability
        p_all_k[(secret_answer, view_answers)] = (
            p_all_k.get((secret_answer, view_answers), zero) + probability
        )
    if p_knowledge == 0:
        raise KnowledgeError("the prior knowledge has probability zero under this dictionary")

    secret_answers = kernel.possible_answers(secret, max_support_size=max_support_size)
    view_answer_lists = [
        kernel.possible_answers(view, max_support_size=max_support_size)
        for view in views
    ]
    for secret_answer in secret_answers:
        for view_answers in itertools.product(*view_answer_lists):
            p_all = p_all_k.get((secret_answer, view_answers), zero)
            if p_all * p_knowledge != p_secret_k.get(secret_answer, zero) * p_views_k.get(
                view_answers, zero
            ):
                return False
    return True
