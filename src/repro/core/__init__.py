"""The paper's primary contribution: query-view security analysis.

Modules
-------
``criticality``   pluggable ``crit_D`` engines (minimal / naive / pruned-parallel)
``critical``      compatibility shim re-exporting the minimal engine
``security``      Theorem 4.5 decisions and Definition 4.1 verification
``practical``     the subgoal-unification quick check (Section 4.2)
``domain_bounds`` Proposition 4.9 analysis domains
``collusion``     multi-party collusion analysis
``prior``         prior knowledge (Section 5, Corollaries 5.3–5.5)
``leakage``       disclosure measurement (Section 6.1, Theorem 6.1)
``encrypted``     encrypted views (Section 5.4)
``asymptotic``    practical security (Section 6.2)
"""

from .adversary import (
    GuessingReport,
    guessing_report,
    posterior_answer_distribution,
    row_posteriors,
)
from .asymptotic import (
    AsymptoticOrder,
    PracticalSecurityLevel,
    PracticalSecurityReport,
    WitnessPattern,
    asymptotic_order,
    classify_practical_security,
    empirical_mu,
)
from .collusion import CollusionReport, analyse_collusion, largest_safe_view_set
from .critical import (
    candidate_critical_facts,
    common_critical_tuples,
    critical_tuples,
    critical_tuples_naive,
    is_critical,
    is_critical_naive,
)
from .criticality import (
    DEFAULT_CRITICALITY_ENGINE,
    CriticalityEngine,
    MinimalEngine,
    NaiveEngine,
    PrunedParallelEngine,
    available_criticality_engines,
    create_criticality_engine,
    register_criticality_engine,
)
from .domain_bounds import (
    analysis_domain,
    analysis_schema,
    max_symbol_count,
    required_domain_size,
)
from .encrypted import (
    EncryptedView,
    EncryptedViewAnswerIs,
    answerable_from_encrypted_view,
    encrypted_view_security,
)
from .leakage import (
    LeakageResult,
    epsilon_of_theorem_6_1,
    leakage_bound_from_epsilon,
    positive_leakage,
    possible_answer_tuples,
)
from .practical import PracticalVerdict, practical_security_check
from .prior import (
    CardinalityConstraintKnowledge,
    ConjunctionKnowledge,
    KeyConstraintKnowledge,
    KnowledgeDecision,
    PriorKnowledge,
    PriorViewKnowledge,
    TupleStatusKnowledge,
    decide_with_cardinality_constraint,
    decide_with_key_constraints,
    decide_with_knowledge,
    decide_with_prior_view,
    decide_with_tuple_status,
    verify_with_knowledge,
)
from .security import (
    SecurityDecision,
    decide_security,
    independence_gap,
    is_secure,
    verify_security_probabilistically,
)

__all__ = [
    "GuessingReport",
    "guessing_report",
    "posterior_answer_distribution",
    "row_posteriors",
    "critical_tuples",
    "critical_tuples_naive",
    "is_critical",
    "is_critical_naive",
    "candidate_critical_facts",
    "common_critical_tuples",
    "CriticalityEngine",
    "MinimalEngine",
    "NaiveEngine",
    "PrunedParallelEngine",
    "DEFAULT_CRITICALITY_ENGINE",
    "register_criticality_engine",
    "available_criticality_engines",
    "create_criticality_engine",
    "SecurityDecision",
    "decide_security",
    "is_secure",
    "verify_security_probabilistically",
    "independence_gap",
    "PracticalVerdict",
    "practical_security_check",
    "analysis_domain",
    "analysis_schema",
    "max_symbol_count",
    "required_domain_size",
    "CollusionReport",
    "analyse_collusion",
    "largest_safe_view_set",
    "PriorKnowledge",
    "KeyConstraintKnowledge",
    "CardinalityConstraintKnowledge",
    "TupleStatusKnowledge",
    "PriorViewKnowledge",
    "ConjunctionKnowledge",
    "KnowledgeDecision",
    "decide_with_key_constraints",
    "decide_with_cardinality_constraint",
    "decide_with_tuple_status",
    "decide_with_prior_view",
    "decide_with_knowledge",
    "verify_with_knowledge",
    "LeakageResult",
    "positive_leakage",
    "possible_answer_tuples",
    "epsilon_of_theorem_6_1",
    "leakage_bound_from_epsilon",
    "EncryptedView",
    "EncryptedViewAnswerIs",
    "encrypted_view_security",
    "answerable_from_encrypted_view",
    "AsymptoticOrder",
    "WitnessPattern",
    "PracticalSecurityLevel",
    "PracticalSecurityReport",
    "asymptotic_order",
    "classify_practical_security",
    "empirical_mu",
]
