"""Measuring the magnitude of disclosures (Section 6.1).

Perfect query-view security is an all-or-nothing criterion.  When it
fails, the paper quantifies the *positive* disclosure with

    leak(S, V̄) = sup_{s, v̄}  ( P[s ⊆ S(I) | v̄ ⊆ V̄(I)] − P[s ⊆ S(I)] ) / P[s ⊆ S(I)]     (Eq. 9)

— the largest relative increase, over atomic monotone statements, of the
adversary's belief in a secret answer after seeing the views.  A pair is
secure iff the leakage is zero; "minute" disclosures (Table 1 rows 2–3)
have small leakage, while serious partial disclosures have large
leakage.

Theorem 6.1 gives an upper bound: if
``P[L_{s,v̄} | S_s ∧ V_v̄] < ε`` for every ``s, v̄`` — where ``L_{s,v̄}``
is the event that the instance contains some tuple of
``T_{s,v̄} = crit(S_s) ∩ crit(V_v̄)`` — then ``leak(S, V̄) ≤ ε²/(1−ε²)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..cq.evaluation import evaluate
from ..cq.query import ConjunctiveQuery
from ..cq.union import UnionQuery
from ..exceptions import SecurityAnalysisError
from ..probability.dictionary import Dictionary
from ..probability.engine import ExactEngine
from ..probability.events import And, Event, FactPresent, Or, QueryContains, query_support
from ..relational.instance import Instance
from ..relational.tuples import Fact
from .criticality import create_criticality_engine

__all__ = [
    "LeakageResult",
    "possible_answer_tuples",
    "positive_leakage",
    "epsilon_of_theorem_6_1",
    "leakage_bound_from_epsilon",
]


@dataclass(frozen=True)
class LeakageResult:
    """The computed leakage together with the witnessing answers.

    Attributes
    ----------
    leakage:
        The value of Eq. (9) over the explored atomic statements.
    worst_secret_rows / worst_view_rows:
        The secret rows ``s`` and per-view rows ``v̄`` achieving it.
    prior / posterior:
        ``P[s ⊆ S(I)]`` and ``P[s ⊆ S(I) | v̄ ⊆ V̄(I)]`` at the maximiser.
    explored:
        Number of ``(s, v̄)`` combinations examined.
    """

    leakage: Fraction
    worst_secret_rows: Optional[Tuple[Tuple[object, ...], ...]]
    worst_view_rows: Optional[Tuple[Tuple[Tuple[object, ...], ...], ...]]
    prior: Optional[Fraction]
    posterior: Optional[Fraction]
    explored: int

    @property
    def is_secure(self) -> bool:
        """True when no explored statement gained probability (leakage 0)."""
        return self.leakage == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeakageResult(leakage={float(self.leakage):.6g}, "
            f"prior={None if self.prior is None else float(self.prior):.6g}, "
            f"posterior={None if self.posterior is None else float(self.posterior):.6g})"
        )


def possible_answer_tuples(
    query: ConjunctiveQuery, dictionary: Dictionary
) -> List[Tuple[object, ...]]:
    """All answer tuples the (monotone) query can produce over the dictionary's domain.

    For a monotone query every attainable answer tuple is attained on the
    full instance (all facts of the query's support present), so a single
    evaluation suffices.
    """
    schema = dictionary.schema
    # key=repr: analysis domains may mix numeric and string constants,
    # which Python refuses to order directly.
    support = sorted(query_support(query, schema), key=repr)
    full = Instance(support)
    return sorted(evaluate(query, full), key=repr)


def _row_combinations(
    rows: List[Tuple[object, ...]], max_rows: int
) -> List[Tuple[Tuple[object, ...], ...]]:
    """Non-empty subsets of candidate rows up to the requested size."""
    combos: List[Tuple[Tuple[object, ...], ...]] = []
    for size in range(1, max_rows + 1):
        combos.extend(itertools.combinations(rows, size))
    return combos


def positive_leakage(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    dictionary: Dictionary,
    max_secret_rows: int = 1,
    max_view_rows: int = 1,
    max_support_size: Optional[int] = None,
    *,
    criticality_engine=None,
) -> LeakageResult:
    """Compute ``leak(S, V̄)`` of Eq. (9) by exhaustive search.

    By default atomic statements are single rows (``|s| = |v_i| = 1``),
    matching the paper's worked Examples 6.2/6.3; ``max_secret_rows`` /
    ``max_view_rows`` widen the search to larger inclusion statements.

    Delegates to the default :class:`~repro.session.AnalysisSession`
    (see :meth:`~repro.session.AnalysisSession.leakage` for the
    session-native form with timing and cache accounting);
    ``criticality_engine`` selects that session's critical-tuple engine
    — the Eq. (9) search itself is probabilistic, but the keyword keeps
    engine selection uniform across the legacy entry points.
    """
    from ..session.default import default_session

    return (
        default_session(dictionary.schema, criticality_engine)
        .leakage(
            secret,
            views,
            dictionary=dictionary,
            max_secret_rows=max_secret_rows,
            max_view_rows=max_view_rows,
            max_support_size=max_support_size,
        )
        .measurement
    )


def _positive_leakage(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    dictionary: Dictionary,
    max_secret_rows: int = 1,
    max_view_rows: int = 1,
    max_support_size: Optional[int] = None,
) -> LeakageResult:
    """The Eq. (9) search itself (called by the session layer)."""
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    if not views:
        raise SecurityAnalysisError("at least one view is required")

    engine = ExactEngine(dictionary, max_support_size=max_support_size)
    secret_rows = possible_answer_tuples(secret, dictionary)
    view_rows = [possible_answer_tuples(view, dictionary) for view in views]

    best = Fraction(0)
    best_secret: Optional[Tuple[Tuple[object, ...], ...]] = None
    best_views: Optional[Tuple[Tuple[Tuple[object, ...], ...], ...]] = None
    best_prior: Optional[Fraction] = None
    best_posterior: Optional[Fraction] = None
    explored = 0

    secret_combos = _row_combinations(secret_rows, max_secret_rows)
    view_combo_lists = [_row_combinations(rows, max_view_rows) for rows in view_rows]

    for secret_combo in secret_combos:
        secret_event = QueryContains(secret, secret_combo)
        prior = engine.probability(secret_event)
        if prior == 0:
            continue
        for view_combo in itertools.product(*view_combo_lists):
            explored += 1
            view_event: Event = And(
                tuple(QueryContains(v, rows) for v, rows in zip(views, view_combo))
            )
            p_view = engine.probability(view_event)
            if p_view == 0:
                continue
            posterior = engine.joint_probability([secret_event, view_event]) / p_view
            gain = (posterior - prior) / prior
            if gain > best:
                best = gain
                best_secret = secret_combo
                best_views = view_combo
                best_prior = prior
                best_posterior = posterior

    return LeakageResult(
        leakage=best,
        worst_secret_rows=best_secret,
        worst_view_rows=best_views,
        prior=best_prior,
        posterior=best_posterior,
        explored=explored,
    )


def epsilon_of_theorem_6_1(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    dictionary: Dictionary,
    max_secret_rows: int = 1,
    max_view_rows: int = 1,
    max_support_size: Optional[int] = None,
    *,
    critical_fn=None,
) -> Fraction:
    """The ε of Theorem 6.1: ``max_{s,v̄} P[L_{s,v̄} | S_s ∧ V_v̄]``.

    ``L_{s,v̄}`` is the event that the instance intersects
    ``T_{s,v̄} = crit(S_s) ∩ crit(V_v̄)`` — the common critical tuples of
    the boolean specialisations.  The probabilities are computed over the
    dictionary's own domain.
    """
    critical_fn = critical_fn or create_criticality_engine().critical_tuples
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    if not views:
        raise SecurityAnalysisError("at least one view is required")

    schema = dictionary.schema
    engine = ExactEngine(dictionary, max_support_size=max_support_size)
    secret_rows = possible_answer_tuples(secret, dictionary)
    view_rows = [possible_answer_tuples(view, dictionary) for view in views]

    epsilon = Fraction(0)
    secret_combos = _row_combinations(secret_rows, max_secret_rows)
    view_combo_lists = [_row_combinations(rows, max_view_rows) for rows in view_rows]

    for secret_combo in secret_combos:
        # Boolean specialisation S_s: "s ⊆ S(I)" as the conjunction of the
        # per-row boolean queries; its critical tuples are the union.
        secret_specs = [secret.boolean_specialisation(row) for row in secret_combo]
        secret_crit: FrozenSet[Fact] = frozenset().union(
            *(critical_fn(spec, schema) for spec in secret_specs)
        )
        secret_event = QueryContains(secret, secret_combo)
        for view_combo in itertools.product(*view_combo_lists):
            view_specs = [
                view.boolean_specialisation(row)
                for view, rows in zip(views, view_combo)
                for row in rows
            ]
            view_crit: FrozenSet[Fact] = frozenset().union(
                *(critical_fn(spec, schema) for spec in view_specs)
            ) if view_specs else frozenset()
            common = secret_crit & view_crit
            view_event: Event = And(
                tuple(QueryContains(v, rows) for v, rows in zip(views, view_combo))
            )
            conditioning = And((secret_event, view_event))
            p_conditioning = engine.probability(conditioning)
            if p_conditioning == 0:
                continue
            if not common:
                continue
            touches_common = Or(tuple(FactPresent(t) for t in sorted(common, key=repr)))
            p_joint = engine.joint_probability([touches_common, conditioning])
            epsilon = max(epsilon, p_joint / p_conditioning)
    return epsilon


def leakage_bound_from_epsilon(epsilon: Fraction | float) -> float:
    """The Theorem 6.1 bound ``ε²/(1−ε²)`` (requires ``ε < 1``)."""
    eps = float(epsilon)
    if not 0 <= eps < 1:
        raise SecurityAnalysisError(
            f"Theorem 6.1 requires 0 <= ε < 1, got ε = {eps}"
        )
    return eps * eps / (1 - eps * eps)
