"""Clients for the audit daemon (blocking sockets and asyncio).

Both clients speak the same one-line-per-message protocol and share the
same surface: :meth:`request` sends one operation and returns the parsed
response envelope; :meth:`call` raises :class:`ServiceError` on a
structured error instead.  One client instance owns one connection and
issues requests sequentially on it; for concurrent traffic (e.g. to
exercise the server's coalescing) open several clients.

Timeouts
--------
Both clients separate *connect* timeouts (how long to wait for the TCP
handshake) from *read* timeouts (how long to wait for one response
line).  A hung server therefore surfaces as a :class:`ReproError`
instead of blocking forever.

Retries
-------
Pass a :class:`RetryPolicy` to either client and :meth:`request` /
:meth:`call` transparently retry transport failures and structured
errors the server marks safe to retry (``overloaded``,
``worker-crashed``), with decorrelated-jitter exponential backoff under
a total backoff budget.  Retrying is idempotent by construction: a
retried request re-sends the identical document, so the fleet's
request-fingerprint dedup (coalescer + result caches) answers repeats
without recomputing.  ``deadline-exceeded`` is *not* retried — the
caller's budget is spent.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, FrozenSet, Iterator, Optional

from ..exceptions import ReproError
from .protocol import RETRYABLE_ERROR_CODES, encode_message

__all__ = [
    "ServiceError",
    "RetryPolicy",
    "AuditServiceClient",
    "AsyncAuditServiceClient",
]


class ServiceError(ReproError):
    """A structured error answered by the service."""

    def __init__(self, code: str, message: str, response: Optional[Dict[str, Any]] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.response = response


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries failed requests.

    Backoff uses *decorrelated jitter*: each delay is drawn uniformly
    from ``[base_delay, 3 × previous_delay]`` and capped at
    ``max_delay`` — retries spread out instead of synchronising into
    thundering herds.  ``seed`` makes the jitter sequence reproducible
    (chaos tests rely on this); ``None`` seeds from the OS.

    ``budget_seconds`` bounds the *total sleep time* across one
    logical request's retries; when the next delay would exceed the
    remaining budget the last failure is returned/raised as-is.
    """

    #: Total attempts including the first (1 = no retries).
    max_attempts: int = 4
    #: Lower bound of every backoff delay, seconds.
    base_delay: float = 0.05
    #: Upper cap on one backoff delay, seconds.
    max_delay: float = 2.0
    #: Total backoff sleep allowed per logical request, seconds.
    budget_seconds: float = 15.0
    #: Structured error codes worth retrying (the server's ``retryable``
    #: flag is honoured too, for codes this policy predates).
    retry_codes: FrozenSet[str] = RETRYABLE_ERROR_CODES
    #: Also retry transport failures (connection reset/refused/timeout)?
    retry_transport_errors: bool = True
    #: RNG seed for deterministic jitter (``None`` = nondeterministic).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("RetryPolicy.max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ReproError("RetryPolicy needs 0 <= base_delay <= max_delay")
        if self.budget_seconds < 0:
            raise ReproError("RetryPolicy.budget_seconds must be >= 0")

    def rng(self) -> random.Random:
        """A fresh jitter RNG (one per client, seeded when asked)."""
        return random.Random(self.seed)

    def next_delay(self, rng: random.Random, previous: float) -> float:
        """The next backoff delay given the ``previous`` one (0 initially)."""
        floor = self.base_delay
        ceiling = max(floor, 3.0 * (previous if previous > 0 else floor))
        return min(self.max_delay, rng.uniform(floor, ceiling))

    def should_retry_response(self, response: Dict[str, Any]) -> bool:
        """Is this structured-error envelope worth retrying?"""
        if response.get("ok"):
            return False
        error = response.get("error") or {}
        code = error.get("code")
        if code in self.retry_codes:
            return True
        return error.get("retryable") is True


class _RetryState:
    """Per-client bookkeeping shared by both client flavours."""

    def __init__(self, policy: Optional[RetryPolicy]):
        self.policy = policy
        self.rng = policy.rng() if policy is not None else None
        self.stats = {"requests": 0, "retries": 0, "backoff_seconds": 0.0, "gave_up": 0}

    def plan_delay(self, previous: float, slept: float) -> Optional[float]:
        """The next backoff delay, or ``None`` when the budget is spent."""
        assert self.policy is not None and self.rng is not None
        delay = self.policy.next_delay(self.rng, previous)
        if slept + delay > self.policy.budget_seconds:
            self.stats["gave_up"] += 1
            return None
        self.stats["retries"] += 1
        self.stats["backoff_seconds"] = round(self.stats["backoff_seconds"] + delay, 6)
        return delay


def _check_envelope(response: Any) -> Dict[str, Any]:
    if not isinstance(response, dict) or "ok" not in response:
        raise ReproError(f"malformed response from the service: {response!r}")
    return response


def _raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response["ok"]:
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", "internal"), error.get("message", "unknown error"), response
        )
    return response


class AuditServiceClient:
    """Blocking client: one TCP connection, sequential requests.

    ``timeout`` is the legacy single knob; ``connect_timeout`` /
    ``read_timeout`` override it for the handshake and the per-request
    response wait respectively.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 60.0,
        *,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self._host = host
        self._port = port
        self._connect_timeout = (
            connect_timeout if connect_timeout is not None else min(timeout, 10.0)
        )
        self._read_timeout = read_timeout if read_timeout is not None else timeout
        self._retry = _RetryState(retry_policy)
        self._socket: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)

    @property
    def retry_stats(self) -> Dict[str, Any]:
        """Retry counters for this client (all zero without a policy)."""
        return dict(self._retry.stats)

    # -- connection --------------------------------------------------------------
    def connect(self) -> "AuditServiceClient":
        """Open the connection (idempotent; ``request`` connects lazily)."""
        if self._socket is None:
            self._socket = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
            self._socket.settimeout(self._read_timeout)
            self._file = self._socket.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (safe to call twice)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def interrupt(self) -> None:
        """Unblock a thread reading this connection (e.g. iterating a
        :meth:`subscribe` stream): shuts the socket down so the blocked
        ``readline`` returns EOF and the stream ends cleanly.  Call
        :meth:`close` afterwards — closing the buffered reader while
        another thread sits in it would deadlock on its internal lock.
        """
        if self._socket is not None:
            try:
                self._socket.shutdown(socket.SHUT_RDWR)
            except OSError:  # already disconnected
                pass

    def __enter__(self) -> "AuditServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ----------------------------------------------------------------
    def send_raw(self, payload: bytes) -> Dict[str, Any]:
        """Send pre-encoded bytes and read one response line (no retries)."""
        self.connect()
        assert self._socket is not None and self._file is not None
        try:
            self._socket.sendall(payload)
            line = self._file.readline()
        except socket.timeout:
            # The connection is desynchronised (a late response may still
            # arrive); drop it so the next attempt starts clean.
            self.close()
            raise ReproError(
                f"no response within the {self._read_timeout}s read timeout"
            ) from None
        if not line:
            raise ReproError("the service closed the connection")
        return _check_envelope(json.loads(line))

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one operation; returns the full response envelope.

        With a :class:`RetryPolicy`, transport failures and retryable
        structured errors are retried with backoff; the identical
        document (same id) is re-sent each attempt.
        """
        document = {"id": next(self._ids), "op": op, **fields}
        payload = encode_message(document)
        policy = self._retry.policy
        self._retry.stats["requests"] += 1
        if policy is None:
            return self.send_raw(payload)
        delay, slept = 0.0, 0.0
        for attempt in range(1, policy.max_attempts + 1):
            last = attempt >= policy.max_attempts
            response: Optional[Dict[str, Any]] = None
            failure: Optional[BaseException] = None
            try:
                response = self.send_raw(payload)
            except (ReproError, OSError) as error:
                self.close()
                if last or not policy.retry_transport_errors:
                    raise
                failure = error
            else:
                if not policy.should_retry_response(response) or last:
                    return response
            delay = self._retry.plan_delay(delay, slept)
            if delay is None:  # budget spent; surface the last failure
                if response is not None:
                    return response
                assert failure is not None
                raise failure
            time.sleep(delay)
            slept += delay
        raise AssertionError("unreachable")  # pragma: no cover

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises :class:`ServiceError` on errors
        and returns only the ``result`` document."""
        return _raise_for_error(self.request(op, **fields))["result"]

    # -- live sessions -----------------------------------------------------------
    def subscribe(
        self, live: str, *, idle_timeout: Optional[float] = None, **fields: Any
    ) -> Iterator[Dict[str, Any]]:
        """Subscribe to a live session's re-verdict notification stream.

        Sends one ``subscribe`` request, validates the acknowledgement
        (raising :class:`ServiceError` if the session is unknown), then
        returns an iterator of notification documents pushed by the
        server — one per ``apply-delta`` landing on the session — until
        the stream is closed by either side.

        The connection is *consumed* by the stream: this client can no
        longer issue requests afterwards; :meth:`close` unsubscribes.
        ``idle_timeout`` bounds the wait for each notification
        (default: wait forever — subscriptions are naturally idle).
        """
        self.connect()
        assert self._socket is not None
        document = {"id": next(self._ids), "op": "subscribe", "live": live, **fields}
        self._retry.stats["requests"] += 1
        _raise_for_error(self.send_raw(encode_message(document)))
        self._socket.settimeout(idle_timeout)

        def _stream() -> Iterator[Dict[str, Any]]:
            while self._file is not None:
                try:
                    line = self._file.readline()
                except socket.timeout:
                    raise ReproError(
                        f"no notification within the {idle_timeout}s idle timeout"
                    ) from None
                except (OSError, ValueError):  # closed underneath us
                    return
                if not line:
                    return
                yield json.loads(line)

        return _stream()

    # -- conveniences ------------------------------------------------------------
    def ping(self) -> bool:
        """True when the daemon answers."""
        return bool(self.call("ping").get("pong"))

    def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot."""
        return self.call("stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop (it finishes in-flight work first)."""
        return self.call("shutdown")


class AsyncAuditServiceClient:
    """Asyncio client: one connection, requests serialised by a lock."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        connect_timeout: float = 10.0,
        read_timeout: float = 120.0,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._read_timeout = read_timeout
        self._retry = _RetryState(retry_policy)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self._ids = itertools.count(1)

    @property
    def retry_stats(self) -> Dict[str, Any]:
        """Retry counters for this client (all zero without a policy)."""
        return dict(self._retry.stats)

    async def connect(self) -> "AsyncAuditServiceClient":
        """Open the connection (idempotent)."""
        if self._writer is None:
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(self._host, self._port),
                    timeout=self._connect_timeout,
                )
            except asyncio.TimeoutError:
                raise ReproError(
                    f"could not connect to {self._host}:{self._port} within "
                    f"the {self._connect_timeout}s connect timeout"
                ) from None
        return self

    async def close(self) -> None:
        """Close the connection."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:  # pragma: no cover - peer already gone
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncAuditServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _send_once(self, payload: bytes) -> Dict[str, Any]:
        await self.connect()
        assert self._reader is not None and self._writer is not None
        async with self._lock:
            self._writer.write(payload)
            await self._writer.drain()
            try:
                line = await asyncio.wait_for(
                    self._reader.readline(), timeout=self._read_timeout
                )
            except asyncio.TimeoutError:
                await self.close()
                raise ReproError(
                    f"no response within the {self._read_timeout}s read timeout"
                ) from None
        if not line:
            raise ReproError("the service closed the connection")
        return _check_envelope(json.loads(line))

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one operation; returns the full response envelope.

        With a :class:`RetryPolicy`, retries mirror the blocking
        client's behaviour (``asyncio.sleep`` for the backoff).
        """
        document = {"id": next(self._ids), "op": op, **fields}
        payload = encode_message(document)
        policy = self._retry.policy
        self._retry.stats["requests"] += 1
        if policy is None:
            return await self._send_once(payload)
        delay, slept = 0.0, 0.0
        for attempt in range(1, policy.max_attempts + 1):
            last = attempt >= policy.max_attempts
            response: Optional[Dict[str, Any]] = None
            failure: Optional[BaseException] = None
            try:
                response = await self._send_once(payload)
            except (ReproError, OSError) as error:
                await self.close()
                if last or not policy.retry_transport_errors:
                    raise
                failure = error
            else:
                if not policy.should_retry_response(response) or last:
                    return response
            delay = self._retry.plan_delay(delay, slept)
            if delay is None:  # budget spent; surface the last failure
                if response is not None:
                    return response
                assert failure is not None
                raise failure
            await asyncio.sleep(delay)
            slept += delay
        raise AssertionError("unreachable")  # pragma: no cover

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises :class:`ServiceError` on errors
        and returns only the ``result`` document."""
        return _raise_for_error(await self.request(op, **fields))["result"]

    async def subscribe(
        self, live: str, *, idle_timeout: Optional[float] = None, **fields: Any
    ) -> AsyncIterator[Dict[str, Any]]:
        """Async flavour of :meth:`AuditServiceClient.subscribe`.

        Validates the acknowledgement, then yields notification
        documents until either side closes the stream.  The connection
        is consumed; :meth:`close` unsubscribes.
        """
        await self.connect()
        assert self._reader is not None and self._writer is not None
        document = {"id": next(self._ids), "op": "subscribe", "live": live, **fields}
        self._retry.stats["requests"] += 1
        async with self._lock:
            self._writer.write(encode_message(document))
            await self._writer.drain()
            line = await asyncio.wait_for(self._reader.readline(), self._read_timeout)
        if not line:
            raise ReproError("the service closed the connection")
        _raise_for_error(_check_envelope(json.loads(line)))
        while True:
            try:
                if idle_timeout is None:
                    line = await self._reader.readline()
                else:
                    line = await asyncio.wait_for(self._reader.readline(), idle_timeout)
            except asyncio.TimeoutError:
                raise ReproError(
                    f"no notification within the {idle_timeout}s idle timeout"
                ) from None
            if not line:
                return
            yield json.loads(line)
