"""Clients for the audit daemon (blocking sockets and asyncio).

Both clients speak the same one-line-per-message protocol and share the
same surface: :meth:`request` sends one operation and returns the parsed
response envelope; :meth:`call` raises :class:`ServiceError` on a
structured error instead.  One client instance owns one connection and
issues requests sequentially on it; for concurrent traffic (e.g. to
exercise the server's coalescing) open several clients.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from typing import Any, Dict, Optional, Tuple

from ..exceptions import ReproError
from .protocol import encode_message

__all__ = ["ServiceError", "AuditServiceClient", "AsyncAuditServiceClient"]


class ServiceError(ReproError):
    """A structured error answered by the service."""

    def __init__(self, code: str, message: str, response: Optional[Dict[str, Any]] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.response = response


def _check_envelope(response: Any) -> Dict[str, Any]:
    if not isinstance(response, dict) or "ok" not in response:
        raise ReproError(f"malformed response from the service: {response!r}")
    return response


def _raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response["ok"]:
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", "internal"), error.get("message", "unknown error"), response
        )
    return response


class AuditServiceClient:
    """Blocking client: one TCP connection, sequential requests."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 60.0):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._socket: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)

    # -- connection --------------------------------------------------------------
    def connect(self) -> "AuditServiceClient":
        """Open the connection (idempotent; ``request`` connects lazily)."""
        if self._socket is None:
            self._socket = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
            self._file = self._socket.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (safe to call twice)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __enter__(self) -> "AuditServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ----------------------------------------------------------------
    def send_raw(self, payload: bytes) -> Dict[str, Any]:
        """Send pre-encoded bytes and read one response line (for tests)."""
        self.connect()
        assert self._socket is not None and self._file is not None
        self._socket.sendall(payload)
        line = self._file.readline()
        if not line:
            raise ReproError("the service closed the connection")
        return _check_envelope(json.loads(line))

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one operation; returns the full response envelope."""
        document = {"id": next(self._ids), "op": op, **fields}
        return self.send_raw(encode_message(document))

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises :class:`ServiceError` on errors
        and returns only the ``result`` document."""
        return _raise_for_error(self.request(op, **fields))["result"]

    # -- conveniences ------------------------------------------------------------
    def ping(self) -> bool:
        """True when the daemon answers."""
        return bool(self.call("ping").get("pong"))

    def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot."""
        return self.call("stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop (it finishes in-flight work first)."""
        return self.call("shutdown")


class AsyncAuditServiceClient:
    """Asyncio client: one connection, requests serialised by a lock."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765):
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self._ids = itertools.count(1)

    async def connect(self) -> "AsyncAuditServiceClient":
        """Open the connection (idempotent)."""
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port
            )
        return self

    async def close(self) -> None:
        """Close the connection."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:  # pragma: no cover - peer already gone
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncAuditServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one operation; returns the full response envelope."""
        await self.connect()
        assert self._reader is not None and self._writer is not None
        document = {"id": next(self._ids), "op": op, **fields}
        async with self._lock:
            self._writer.write(encode_message(document))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ReproError("the service closed the connection")
        return _check_envelope(json.loads(line))

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises :class:`ServiceError` on errors
        and returns only the ``result`` document."""
        return _raise_for_error(await self.request(op, **fields))["result"]
