"""The pre-forked sharded audit fleet: a router in front of worker processes.

The PR 4 daemon (:class:`~repro.service.server.AuditServer`) runs every
analysis on one interpreter, so exact-kernel and crit_D computations
contend on one GIL no matter how many threads the pool holds.  This
module scales the service with *cores* instead:

* **Workers** are pre-forked OS processes, each running the unmodified
  :class:`AuditServer` core on a private unix domain socket — its own
  session pool, kernel memos, result cache and thread pool, untouched by
  any other worker.

* **The router** is a lightweight asyncio process that accepts the same
  JSON-lines-over-TCP protocol clients already speak, computes the
  request fingerprint (:func:`~repro.service.protocol.request_key` —
  which embeds the (schema, dictionary, eval-engine, criticality-engine)
  session fingerprint the server already derives) and routes each
  request to a fixed shard by **rendezvous hashing**.  A given question
  always lands on the same worker, so its session, kernel memos and
  cached result live exactly once — zero cross-process cache churn.
  (Hashing the full request fingerprint rather than the bare session
  fingerprint is deliberate: whole workloads often share one schema and
  dictionary, and session-only routing would pin them all to a single
  shard.)

* **Fleet-wide coalescing**: a shared pending-request table
  (:class:`~repro.service.coalesce.FleetCoalescer`, a small sqlite WAL
  file keyed by the fingerprint) plus in-router subscription futures
  guarantee that a burst of N identical requests arriving on different
  connections costs exactly one computation across the whole fleet —
  the other N−1 subscribe to the owner's result.

* **Fleet load shedding**: the router tracks per-shard queue depth
  (in-flight + waiting-for-a-pooled-connection) and answers with a
  structured ``overloaded`` error once a shard saturates, noting whether
  the whole fleet is saturated — bounded latency instead of collapse.

* **Supervision**: the router watches each worker's process sentinel,
  restarts crashed workers (same socket, same shard identity, so
  routing is unchanged), fails the crashed worker's in-flight requests
  with a retryable ``worker-crashed`` error, and *rewarms* the restarted
  worker by replaying its shard's most recent distinct requests so the
  session pool and caches repopulate before real traffic returns.

* **Aggregated stats**: a ``stats`` request returns fleet totals merged
  from every worker's mergeable metrics snapshot
  (:func:`~repro.service.metrics.merge_snapshots` — true percentiles
  over the union of latency reservoirs, not averages), per-shard queue
  depths, restart counts and the coalescer table state.

``shutdown`` (or :meth:`FleetServer.stop`) drains: the listener closes,
in-flight requests finish and are answered, then every worker is asked
to shut down and reaped — no dropped responses, no orphan processes.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import hashlib
import json
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from typing import Any, Awaitable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..obs import (
    CONTENT_TYPE,
    TRACES,
    Span,
    SlowLog,
    current_trace,
    merge_trace_snapshots,
    render_prometheus,
    slow_log_from_env,
    span,
    start_trace,
)
from ..obs import install_from_env as install_tracing_from_env
from . import faults
from .coalesce import DEFAULT_CLAIM_TTL, FleetCoalescer
from .health import CircuitBreaker
from .metrics import ServiceMetrics, merge_snapshots
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    ERROR_PAYLOAD_TOO_LARGE,
    ERROR_WORKER_CRASHED,
    OPERATIONS,
    PROTOCOL_VERSION,
    AuditRequest,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
    request_key,
    routing_key,
)

__all__ = ["FleetServer", "FleetThread", "run_fleet", "DEFAULT_FLEET_WORKERS"]

#: Default fleet size (pre-forked worker processes).
DEFAULT_FLEET_WORKERS = max(2, min(8, os.cpu_count() or 2))

#: Default per-shard queue depth (in-flight + waiting) before shedding.
DEFAULT_SHARD_QUEUE_LIMIT = 32

#: Default pooled router→worker connections per shard (concurrency bound).
DEFAULT_CONNECTIONS_PER_WORKER = 8

#: Default analysis threads inside each worker process.
DEFAULT_WORKER_THREADS = 2

#: Default number of recent distinct requests replayed to a restarted worker.
DEFAULT_REWARM_REQUESTS = 8

#: Default bound on fleet-wide cached results in the coalescer table.
DEFAULT_FLEET_RESULT_CACHE = 1024

#: The request id used for router-originated traffic to workers.
_ROUTER_ID = "__fleet__"

#: Serialises every ``Process.start`` in this interpreter.  Two forks
#: racing on different threads can leak one worker's sentinel-pipe write
#: end into the other child, which would keep the sentinel unreadable
#: after that worker is killed — the supervisor would never see a crash.
_SPAWN_LOCK = threading.Lock()


def _parent_watchdog(parent_pid: int) -> None:
    """Exit the worker if the router process disappears (orphan guard)."""
    while True:
        time.sleep(1.0)
        if os.getppid() != parent_pid:
            os._exit(1)


def _fleet_worker_main(
    socket_path: str, options: Dict[str, Any], parent_pid: int, shard_index: int
) -> None:
    """One worker process: the unmodified AuditServer on a unix socket."""
    # A forked child inherits the router's thread-local "a loop is
    # running" marker; clear it so asyncio.run starts fresh.
    with contextlib.suppress(Exception):
        asyncio.events._set_running_loop(None)  # type: ignore[attr-defined]
    asyncio.set_event_loop(None)
    # Ctrl-C is the router's business: it drains and asks us to stop.
    with contextlib.suppress(Exception):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Fault rules with a "shard" selector only fire in the targeted
    # worker; the plan itself arrives via fork inheritance or the
    # REPRO_FAULT_PLAN environment variable (spawn start methods).
    faults.set_context(shard=shard_index)
    faults.install_from_env()
    threading.Thread(
        target=_parent_watchdog, args=(parent_pid,), name="parent-watchdog", daemon=True
    ).start()

    from .server import AuditServer

    async def _amain() -> None:
        server = AuditServer(path=socket_path, **options)
        await server.start()
        await server.serve_until_stopped()

    asyncio.run(_amain())


class _Connection:
    """One pooled router→worker stream, tagged with the worker generation."""

    __slots__ = ("reader", "writer", "generation")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, generation: int
    ):
        self.reader = reader
        self.writer = writer
        self.generation = generation


class _Shard:
    """Router-side state of one worker process."""

    __slots__ = (
        "index",
        "path",
        "process",
        "generation",
        "pool",
        "created",
        "outstanding",
        "forwarded",
        "shed",
        "restarts",
        "warm",
        "breaker",
        "diverted",
    )

    def __init__(self, index: int, path: str, breaker: CircuitBreaker):
        self.index = index
        self.path = path
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.generation = 0
        self.pool: "asyncio.Queue[_Connection]" = asyncio.Queue()
        self.created = 0
        self.outstanding = 0
        self.forwarded = 0
        self.shed = 0
        self.restarts = 0
        #: fingerprint → raw request line, most recent last (rewarm source).
        self.warm: "OrderedDict[str, bytes]" = OrderedDict()
        #: Health ladder fed by transport outcomes (see repro.service.health).
        self.breaker = breaker
        #: Requests this shard owned but lost to rerouting while quarantined.
        self.diverted = 0


class FleetServer:
    """The multi-worker audit service: router + pre-forked shard fleet.

    Parameters
    ----------
    host / port:
        The router's public bind address (port 0 picks an ephemeral
        port; read :attr:`address` back after :meth:`start`).
    workers:
        Number of pre-forked worker processes (shards).
    worker_threads:
        Analysis threads inside each worker (small on purpose — the
        fleet's parallelism comes from processes).
    shard_queue_limit:
        Per-shard in-flight + waiting depth before the router sheds
        requests for that shard with an ``overloaded`` error.
    connections_per_worker:
        Pooled router→worker connections (each carries one request at a
        time, so this bounds per-worker concurrency).
    result_cache_size:
        Bound on fleet-wide cached results (the coalescer table) *and*
        each worker's own result cache.
    rewarm_requests:
        Recent distinct requests replayed to a restarted worker.
    coalesce_path:
        Path of the shared coalescer table (default: a file in the
        fleet's private temp directory).  Point two boots at one path
        and the boot-id namespace keeps their rows apart; stale rows
        from dead boots are purged on start.
    claim_ttl:
        Seconds before a pending coalescer claim may be stolen by a
        follower (owner-death reclamation is immediate regardless).
    breaker_options:
        :class:`~repro.service.health.CircuitBreaker` keyword arguments
        applied to every shard (``degrade_after``, ``quarantine_after``,
        ``cooldown_seconds``).
    watchdog_seconds:
        Per-worker computation cap (see
        :class:`~repro.service.server.AuditServer`); ``None`` disables.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else the platform default; override with the
        ``REPRO_FLEET_START_METHOD`` environment variable).
    worker_options:
        Extra :class:`AuditServer` keyword arguments for every worker
        (e.g. ``max_sessions``, ``session_cache_size``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: Optional[int] = None,
        worker_threads: int = DEFAULT_WORKER_THREADS,
        shard_queue_limit: int = DEFAULT_SHARD_QUEUE_LIMIT,
        connections_per_worker: int = DEFAULT_CONNECTIONS_PER_WORKER,
        result_cache_size: int = DEFAULT_FLEET_RESULT_CACHE,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        rewarm_requests: int = DEFAULT_REWARM_REQUESTS,
        coalesce_path: Optional[str] = None,
        claim_ttl: float = DEFAULT_CLAIM_TTL,
        breaker_options: Optional[Mapping[str, Any]] = None,
        watchdog_seconds: Optional[float] = None,
        slow_ms: Optional[float] = None,
        start_method: Optional[str] = None,
        worker_options: Optional[Mapping[str, Any]] = None,
    ):
        if workers is not None and workers < 1:
            raise ReproError("a fleet needs at least one worker process")
        if shard_queue_limit < 1:
            raise ReproError("shard_queue_limit must be at least 1")
        if connections_per_worker < 1:
            raise ReproError("connections_per_worker must be at least 1")
        self._host = host
        self._port = port
        self._workers = workers or DEFAULT_FLEET_WORKERS
        self._shard_queue_limit = shard_queue_limit
        self._connections_per_worker = connections_per_worker
        self._result_cache_size = max(0, result_cache_size)
        self._max_payload = max_payload
        self._rewarm_requests = max(0, rewarm_requests)
        self._coalesce_path = coalesce_path
        self._claim_ttl = claim_ttl
        self._breaker_options = dict(breaker_options or {})
        self._boot_id = ""
        self._diverted = 0
        self._stream_limit = max(4 * max_payload, 1 << 20)
        method = start_method or os.environ.get("REPRO_FLEET_START_METHOD")
        if method is None and "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        self._mp_context = (
            multiprocessing.get_context(method) if method else multiprocessing.get_context()
        )
        self._worker_options: Dict[str, Any] = {
            "workers": worker_threads,
            "queue_limit": max(2 * connections_per_worker, 16),
            "result_cache_size": self._result_cache_size,
            "max_payload": max_payload,
        }
        if watchdog_seconds is not None:
            self._worker_options["watchdog_seconds"] = watchdog_seconds
        if slow_ms is not None:
            self._worker_options["slow_ms"] = slow_ms
        if worker_options:
            self._worker_options.update(worker_options)
        self._slow_ms = slow_ms
        self._slow_log: SlowLog = SlowLog(slow_ms)

        self._metrics = ServiceMetrics()
        self._shards: List[_Shard] = []
        self._subscribers: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        #: live name -> fleet-cached ``live-audit`` fingerprints; each is
        #: ``forget``-ten from the coalescer when a delta hits the session.
        self._live_cached: Dict[str, set] = {}
        self._live_relays = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = False
        self._active = 0
        self._rewarmed = 0
        self._directory: Optional[str] = None
        self._coalescer: Optional[FleetCoalescer] = None
        self._supervisors: List[asyncio.Task] = []
        self._connection_tasks: "set[asyncio.Task]" = set()
        self._started_at = time.time()

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Fork the workers, wait for them, bind the router socket."""
        if self._server is not None:
            raise ReproError("the fleet is already running")
        if not hasattr(asyncio.get_running_loop(), "create_unix_connection"):
            raise ReproError("the worker fleet needs unix domain sockets")  # pragma: no cover
        faults.install_from_env()
        install_tracing_from_env()
        self._slow_log = slow_log_from_env(self._slow_ms)
        self._stopping = False
        self._stop_event = asyncio.Event()
        self._boot_id = uuid.uuid4().hex[:16]
        self._directory = tempfile.mkdtemp(prefix="repro-fleet-")
        self._coalescer = FleetCoalescer(
            self._coalesce_path or os.path.join(self._directory, "coalesce.db"),
            owner=os.getpid(),
            boot=self._boot_id,
            cache_size=self._result_cache_size,
            claim_ttl=self._claim_ttl,
        )
        self._shards = [
            _Shard(
                index,
                os.path.join(self._directory, f"worker-{index}.sock"),
                CircuitBreaker(**self._breaker_options),
            )
            for index in range(self._workers)
        ]
        try:
            await asyncio.gather(*(self._spawn(shard) for shard in self._shards))
            await asyncio.gather(*(self._wait_ready(shard) for shard in self._shards))
            try:
                self._server = await asyncio.start_server(
                    self._on_connection,
                    self._host,
                    self._port,
                    limit=self._stream_limit,
                )
            except OSError as error:
                import errno

                if error.errno == errno.EADDRINUSE:
                    raise ReproError(
                        f"cannot bind {self._host}:{self._port}: address already in "
                        "use (is another daemon running on this port?)"
                    ) from error
                raise ReproError(
                    f"cannot bind {self._host}:{self._port}: {error.strerror or error}"
                ) from error
        except BaseException:
            await self._halt_workers()
            self._cleanup()
            raise
        self._supervisors = [
            asyncio.get_running_loop().create_task(self._supervise(shard))
            for shard in self._shards
        ]
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The router's bound ``(host, port)``."""
        if self._server is None or not self._server.sockets:
            raise ReproError("the fleet is not running")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def metrics(self) -> ServiceMetrics:
        """The router-level metrics (shed / coalesced / cached / errors)."""
        return self._metrics

    @property
    def worker_pids(self) -> List[int]:
        """Live worker process ids, by shard index."""
        return [
            shard.process.pid if shard.process is not None and shard.process.pid else -1
            for shard in self._shards
        ]

    async def serve_until_stopped(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._stop_event is None:
            raise ReproError("call start() first")
        await self._stop_event.wait()
        await self.stop()

    async def stop(self, drain_timeout: float = 60.0) -> None:
        """Drain-then-stop: finish in-flight work, then stop the fleet."""
        if self._stopping and self._server is None:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain: every request already accepted is answered first.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while self._active and loop.time() < deadline:
            await asyncio.sleep(0.01)
        await asyncio.sleep(0.05)  # let just-resolved subscribers flush
        for task in self._supervisors:
            task.cancel()
        if self._supervisors:
            await asyncio.gather(*self._supervisors, return_exceptions=True)
        self._supervisors = []
        await self._halt_workers()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        self._cleanup()
        if self._stop_event is not None:
            self._stop_event.set()

    async def _halt_workers(self) -> None:
        """Ask every worker to shut down; escalate to terminate/kill."""
        await asyncio.gather(
            *(self._stop_worker(shard) for shard in self._shards),
            return_exceptions=True,
        )

    async def _stop_worker(self, shard: _Shard, timeout: float = 10.0) -> None:
        process = shard.process
        if process is None:
            return
        loop = asyncio.get_running_loop()
        if process.is_alive():
            with contextlib.suppress(Exception):
                await asyncio.wait_for(
                    self._forward(shard, encode_message({"id": _ROUTER_ID, "op": "shutdown"})),
                    timeout=5.0,
                )
            await loop.run_in_executor(None, functools.partial(process.join, timeout))
            if process.is_alive():
                process.terminate()
                await loop.run_in_executor(None, functools.partial(process.join, 5.0))
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                await loop.run_in_executor(None, functools.partial(process.join, 5.0))
        else:
            await loop.run_in_executor(None, functools.partial(process.join, 1.0))
        self._drain_pool(shard)

    def _cleanup(self) -> None:
        for shard in self._shards:
            self._drain_pool(shard)
        if self._coalescer is not None:
            self._coalescer.close()
            self._coalescer = None
        if self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None

    # -- worker processes --------------------------------------------------------
    async def _spawn(self, shard: _Shard) -> None:
        """Fork one worker (off-loop so no running-loop state is inherited)."""
        with contextlib.suppress(OSError):
            os.unlink(shard.path)
        process = self._mp_context.Process(
            target=_fleet_worker_main,
            args=(shard.path, dict(self._worker_options), os.getpid(), shard.index),
            name=f"repro-fleet-worker-{shard.index}",
        )
        shard.process = process

        def _locked_start() -> None:
            with _SPAWN_LOCK:
                process.start()

        await asyncio.get_running_loop().run_in_executor(None, _locked_start)

    async def _wait_ready(self, shard: _Shard, timeout: float = 30.0) -> None:
        """Wait until the worker's socket accepts (its loop is serving)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            process = shard.process
            if process is not None and not process.is_alive():
                raise ReproError(
                    f"fleet worker {shard.index} exited with status "
                    f"{process.exitcode} during startup"
                )
            try:
                reader, writer = await asyncio.open_unix_connection(
                    shard.path, limit=self._stream_limit
                )
            except (FileNotFoundError, ConnectionRefusedError, OSError):
                if loop.time() >= deadline:
                    raise ReproError(
                        f"fleet worker {shard.index} did not come up within {timeout}s"
                    )
                await asyncio.sleep(0.05)
                continue
            shard.created += 1
            shard.pool.put_nowait(_Connection(reader, writer, shard.generation))
            return

    async def _supervise(self, shard: _Shard) -> None:
        """Restart-on-crash: watch the sentinel, respawn, rewarm."""
        while True:
            process = shard.process
            if process is None:
                return
            await self._wait_exit(process)
            if self._stopping:
                return
            shard.restarts += 1
            shard.generation += 1
            shard.created = 0
            self._drain_pool(shard)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, functools.partial(process.join, 1.0))
            try:
                await self._spawn(shard)
                await self._wait_ready(shard)
            except ReproError:
                if self._stopping:
                    return
                await asyncio.sleep(0.5)
                continue
            for raw in list(shard.warm.values()):
                loop.create_task(self._rewarm(shard, raw))

    async def _wait_exit(self, process: multiprocessing.process.BaseProcess) -> None:
        """Resolve when the process exits.

        The sentinel pipe is the prompt signal; a periodic ``is_alive``
        poll backs it up, because a grandchild the worker forked (e.g. a
        criticality process pool) inherits the sentinel's write end and
        can outlive a SIGKILLed worker for a moment, keeping the pipe
        open past the actual death.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[None]" = loop.create_future()
        sentinel = process.sentinel

        def _on_exit() -> None:
            if not future.done():
                future.set_result(None)

        loop.add_reader(sentinel, _on_exit)
        try:
            while process.is_alive():
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(asyncio.shield(future), timeout=1.0)
                if future.done():
                    return
        finally:
            with contextlib.suppress(Exception):
                loop.remove_reader(sentinel)

    async def _rewarm(self, shard: _Shard, raw: bytes) -> None:
        """Replay one remembered request so the new worker's caches warm up."""
        with contextlib.suppress(Exception):
            await self._forward(shard, raw)
            self._rewarmed += 1

    # -- connection pool ---------------------------------------------------------
    async def _acquire(self, shard: _Shard) -> _Connection:
        while True:
            try:
                connection = shard.pool.get_nowait()
            except asyncio.QueueEmpty:
                if shard.created < self._connections_per_worker:
                    shard.created += 1
                    try:
                        reader, writer = await asyncio.open_unix_connection(
                            shard.path, limit=self._stream_limit
                        )
                    except Exception as error:
                        shard.created -= 1
                        raise ReproError(
                            f"cannot reach worker {shard.index}: {error}"
                        ) from error
                    return _Connection(reader, writer, shard.generation)
                connection = await shard.pool.get()
            if connection.generation != shard.generation or connection.writer.is_closing():
                self._close_connection(connection)
                continue
            return connection

    def _release(self, shard: _Shard, connection: _Connection) -> None:
        if connection.generation != shard.generation or connection.writer.is_closing():
            self._close_connection(connection)
            return
        shard.pool.put_nowait(connection)

    def _discard(self, shard: _Shard, connection: _Connection) -> None:
        if connection.generation == shard.generation:
            shard.created -= 1
        self._close_connection(connection)

    def _drain_pool(self, shard: _Shard) -> None:
        while True:
            try:
                connection = shard.pool.get_nowait()
            except asyncio.QueueEmpty:
                return
            self._close_connection(connection)

    @staticmethod
    def _close_connection(connection: _Connection) -> None:
        with contextlib.suppress(Exception):
            connection.writer.close()

    async def _forward(self, shard: _Shard, raw: bytes) -> Dict[str, Any]:
        """Send one raw request line to a worker; return its response doc."""
        shard.outstanding += 1
        try:
            connection = await self._acquire(shard)
            try:
                connection.writer.write(raw)
                await connection.writer.drain()
                line = await connection.reader.readline()
            except asyncio.CancelledError:
                self._discard(shard, connection)
                raise
            except Exception as error:
                self._discard(shard, connection)
                raise ReproError(f"worker {shard.index} connection failed: {error}") from error
            if not line:
                self._discard(shard, connection)
                raise ReproError(f"worker {shard.index} closed the connection")
            self._release(shard, connection)
            shard.forwarded += 1
            try:
                return json.loads(line)
            except json.JSONDecodeError as error:  # pragma: no cover - defensive
                raise ReproError(
                    f"unparsable response from worker {shard.index}: {error}"
                ) from error
        finally:
            shard.outstanding -= 1

    # -- routing -----------------------------------------------------------------
    def _shard_for(self, fingerprint: str) -> _Shard:
        """Rendezvous hashing with health-aware fallback.

        The highest-scoring shard owns the key; when its circuit
        breaker is open (quarantined), the key falls to the next shard
        in rendezvous order — a stable reassignment, so a quarantined
        shard's fingerprints consistently land on one fallback instead
        of scattering.  If every breaker is open the primary is used
        anyway (shedding everything would turn a partial outage into a
        total one).
        """
        ranked = sorted(
            self._shards,
            key=lambda shard: hashlib.blake2b(
                f"{fingerprint}|{shard.index}".encode("ascii"), digest_size=8
            ).digest(),
            reverse=True,
        )
        primary = ranked[0]
        for shard in ranked:
            if shard.breaker.allows():
                if shard is not primary:
                    primary.diverted += 1
                    self._diverted += 1
                return shard
        return primary

    # -- the client-facing protocol ----------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._metrics.observe("unknown", "error")
                    writer.write(
                        encode_message(
                            error_response(
                                None,
                                ERROR_PAYLOAD_TOO_LARGE,
                                "request line exceeded the stream buffer; "
                                "connection closed",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                dropped = False
                for rule in faults.fire("server.respond", op=response.get("op")):
                    if rule.action == "drop":
                        dropped = True
                    elif rule.action == "delay":
                        await asyncio.sleep(rule.delay)
                if dropped:
                    # Simulate a connection lost mid-response: close
                    # without answering (the client sees EOF and retries).
                    break
                relay = response.pop("_subscribe_relay", None)
                writer.write(encode_message(response))
                await writer.drain()
                if relay is not None:
                    # The connection is now a notification stream relayed
                    # from the owning worker (dedicated, non-pooled).
                    await self._relay_stream(relay, reader, writer)
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._connection_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        request_id = None
        op = "unknown"
        try:
            document = decode_message(line, self._max_payload)
            if isinstance(document, Mapping):
                candidate = document.get("id")
                if isinstance(candidate, (str, int, float)):
                    request_id = candidate
                named = document.get("op")
                if isinstance(named, str) and named in OPERATIONS:
                    op = named
            request = parse_request(document)
        except ProtocolError as error:
            self._metrics.observe(op, "error")
            return error_response(request_id, error.code, str(error))
        if request.is_control:
            return await self._handle_control(request)
        self._active += 1
        try:
            if request.is_live:
                return await self._handle_live(request, line)
            return await self._handle_analysis(request, line)
        finally:
            self._active -= 1

    async def _handle_control(self, request: AuditRequest) -> Dict[str, Any]:
        if request.op == "ping":
            self._metrics.observe("ping", "computed")
            return ok_response(
                request.id,
                "ping",
                {
                    "pong": True,
                    "version": PROTOCOL_VERSION,
                    "fleet": {"workers": len(self._shards)},
                },
            )
        if request.op == "stats":
            return await self._fleet_stats(request)
        if request.op == "traces":
            return await self._fleet_traces(request)
        if request.op == "metrics":
            return await self._fleet_metrics(request)
        # shutdown: acknowledge, then drain-then-stop via serve_until_stopped.
        self._metrics.observe("shutdown", "computed")
        if self._stop_event is not None:
            self._stop_event.set()
        return ok_response(
            request.id, "shutdown", {"stopping": True, "workers": len(self._shards)}
        )

    @staticmethod
    async def _await_within(
        awaitable: Awaitable[Any], deadline: Optional[float]
    ) -> Any:
        """Await (shielded) until ``deadline`` (perf_counter clock)."""
        if deadline is None:
            return await asyncio.shield(awaitable)
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            raise asyncio.TimeoutError
        return await asyncio.wait_for(asyncio.shield(awaitable), timeout=remaining)

    def _deadline_error(
        self, request: AuditRequest, started: float, where: str
    ) -> Dict[str, Any]:
        elapsed = time.perf_counter() - started
        self._metrics.observe(request.op, "deadline", elapsed)
        return error_response(
            request.id,
            ERROR_DEADLINE_EXCEEDED,
            f"deadline of {request.deadline_ms:g}ms exceeded {where}",
        )

    async def _handle_analysis(
        self, request: AuditRequest, raw: bytes
    ) -> Dict[str, Any]:
        if not request.trace:
            return await self._handle_analysis_core(request, raw)
        # The router owns the distributed trace: its root covers routing,
        # coalescer negotiation and the forward; the worker's own span
        # tree (returned inline in the worker response) is grafted under
        # the ``router.forward`` span before the tree goes back out.
        spec = request.trace
        trace_id = spec.get("id")
        parent_id = spec.get("parent")
        with start_trace(
            "router.route",
            trace_id=trace_id if isinstance(trace_id, str) else None,
            parent_id=parent_id if isinstance(parent_id, str) else None,
        ) as trace:
            trace.root.set("op", request.op)
            response = await self._handle_analysis_core(request, raw)
        document = trace.to_dict()
        TRACES.record(document)
        self._slow_log.maybe_log(document, op=request.op)
        server = response.get("server")
        if isinstance(server, dict):
            server["trace"] = document
        return response

    async def _handle_analysis_core(
        self, request: AuditRequest, raw: bytes
    ) -> Dict[str, Any]:
        fingerprint = hashlib.sha256(request_key(request).encode("utf8")).hexdigest()
        started = time.perf_counter()
        deadline = (
            started + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )
        coalescer = self._coalescer
        assert coalescer is not None

        # 1. Subscribe to an identical in-flight computation (same router).
        waiter = self._subscribers.get(fingerprint)
        if waiter is not None:
            try:
                with span("coalesce.follow"):
                    core = await self._await_within(waiter, deadline)
            except asyncio.TimeoutError:
                return self._deadline_error(
                    request, started, "while awaiting a twin computation"
                )
            self._link_leader(core, "coalesced-leader")
            elapsed = time.perf_counter() - started
            self._metrics.observe(request.op, "coalesced", elapsed)
            return self._respond(request, core, elapsed, fleet="coalesced")

        # 2. Claim the fingerprint on the shared fleet table.
        for _ in range(3):
            if deadline is not None and time.perf_counter() >= deadline:
                return self._deadline_error(
                    request, started, "while negotiating the fleet coalescer"
                )
            with span("coalesce.claim"):
                claimed = coalescer.claim(fingerprint)
            if claimed is None:
                break  # we own the computation
            if claimed:
                core = json.loads(claimed)
                self._link_leader(core, "fleet-cache")
                elapsed = time.perf_counter() - started
                self._metrics.observe(request.op, "cached", elapsed)
                return self._respond(request, core, elapsed, fleet="cached")
            # Pending, but owned by a process without a local future (e.g.
            # another router sharing the table, or an abandon race): wait
            # for the row to resolve, then retry the claim.  A dead or
            # over-TTL owner is reclaimed by claim() itself on the retry.
            with span("coalesce.follow"):
                core = await self._await_remote(
                    coalescer, fingerprint, deadline=deadline
                )
            if core is not None:
                self._link_leader(core, "coalesced-leader")
                elapsed = time.perf_counter() - started
                self._metrics.observe(request.op, "coalesced", elapsed)
                return self._respond(request, core, elapsed, fleet="coalesced")
        else:
            claimed = None  # claim churn: compute without a table entry

        # 2b. The budget may have been consumed waiting for the claim.
        if deadline is not None and time.perf_counter() >= deadline:
            coalescer.abandon(fingerprint)
            return self._deadline_error(request, started, "in the router queue")

        # 3. Route to the fingerprint's shard; shed when it is saturated.
        shard = self._shard_for(fingerprint)
        if shard.outstanding >= self._shard_queue_limit:
            fleet_saturated = all(
                other.outstanding >= self._shard_queue_limit for other in self._shards
            )
            coalescer.abandon(fingerprint)
            shard.shed += 1
            self._metrics.observe(request.op, "shed")
            scope = "all shards are" if fleet_saturated else f"shard {shard.index} is"
            return error_response(
                request.id,
                ERROR_OVERLOADED,
                f"{scope} saturated ({shard.outstanding} in flight, "
                f"limit {self._shard_queue_limit}); retry later",
            )

        # 4. Own the computation; twins subscribe to this future.  With a
        # deadline, the forwarded copy carries only the *remaining*
        # budget (the worker enforces it), and the router adds a small
        # grace before abandoning the worker connection outright.
        trace = current_trace()
        forward_raw = raw
        warm_raw = raw
        document: Optional[Dict[str, Any]] = None
        if deadline is not None or trace is not None:
            document = request.to_document()
            # Rewarm replays must be undeadlined and untraced: a restarted
            # worker warms its caches, it does not re-answer anyone.
            document.pop("trace", None)
            warm_raw = encode_message(document)
            if deadline is not None:
                remaining_ms = max(1.0, (deadline - time.perf_counter()) * 1000.0)
                document["deadline_ms"] = round(remaining_ms, 3)
            forward_raw = encode_message(document)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._subscribers[fingerprint] = future
        try:
            try:
                for rule in faults.fire("router.forward", op=request.op):
                    if rule.action == "delay":
                        await asyncio.sleep(rule.delay)
                    elif rule.action == "error":
                        raise ReproError(
                            rule.message or "injected fault at router.forward"
                        )
                forward_span: Optional[Span] = None
                with span("router.forward") as fwd:
                    if isinstance(fwd, Span):
                        forward_span = fwd
                        fwd.set("shard", shard.index)
                    if trace is not None and document is not None:
                        # Forward the trace context so the worker opens
                        # its subtree under this very span.
                        document["trace"] = {
                            "id": trace.trace_id,
                            "parent": forward_span.span_id if forward_span else None,
                            "return": True,
                        }
                        forward_raw = encode_message(document)
                    if deadline is not None:
                        grace = max(0.0, deadline - time.perf_counter()) + 0.5
                        response = await asyncio.wait_for(
                            self._forward(shard, forward_raw), timeout=grace
                        )
                    else:
                        response = await self._forward(shard, forward_raw)
                shard.breaker.record_success()
                core = {
                    key: response[key]
                    for key in ("ok", "op", "result", "error", "server")
                    if key in response
                }
                core["shard"] = shard.index
                worker_trace = None
                server_doc = core.get("server")
                if isinstance(server_doc, Mapping):
                    server_doc = dict(server_doc)
                    worker_trace = server_doc.pop("trace", None)
                    core["server"] = server_doc
                if trace is not None:
                    # Stamped so coalesced twins and fleet-cache hits can
                    # link to this computation's trace.
                    core["trace_id"] = trace.trace_id
                    if isinstance(worker_trace, Mapping):
                        # The worker answers with a whole trace document;
                        # its root span subtree is what grafts under the
                        # forward span (links/dropped ride along as attrs).
                        subtree = worker_trace.get("root")
                        if isinstance(subtree, Mapping):
                            subtree = dict(subtree)
                            for extra in ("links", "dropped"):
                                value = worker_trace.get(extra)
                                if value:
                                    attrs = dict(subtree.get("attrs") or {})
                                    attrs[extra] = value
                                    subtree["attrs"] = attrs
                            trace.attach_child_doc(forward_span, subtree)
            except asyncio.TimeoutError:
                # The worker missed the deadline *and* the grace: the
                # cancelled _forward discarded its connection, so the
                # router-side slot is reclaimed even if the worker is
                # wedged mid-computation.
                shard.breaker.record_failure()
                core = {
                    "ok": False,
                    "shard": shard.index,
                    "error": {
                        "code": ERROR_DEADLINE_EXCEEDED,
                        "message": f"deadline of {request.deadline_ms:g}ms "
                        f"exceeded awaiting worker {shard.index}",
                    },
                }
            except ReproError as error:
                shard.breaker.record_failure()
                core = {
                    "ok": False,
                    "shard": shard.index,
                    "error": {
                        "code": ERROR_WORKER_CRASHED,
                        "message": f"{error}; the request is safe to retry",
                    },
                }
        finally:
            self._subscribers.pop(fingerprint, None)
            if not future.done():
                future.set_result(core)
        elapsed = time.perf_counter() - started
        if core.get("ok"):
            coalescer.publish(
                fingerprint, json.dumps(core, separators=(",", ":"), default=str)
            )
            if self._rewarm_requests:
                shard.warm[fingerprint] = warm_raw
                shard.warm.move_to_end(fingerprint)
                while len(shard.warm) > self._rewarm_requests:
                    shard.warm.popitem(last=False)
        else:
            coalescer.abandon(fingerprint)
            code = (core.get("error") or {}).get("code")
            if code == ERROR_WORKER_CRASHED:
                self._metrics.observe(request.op, "error", elapsed)
            elif code == ERROR_DEADLINE_EXCEEDED:
                self._metrics.observe(request.op, "deadline", elapsed)
        return self._respond(request, core, elapsed)

    # -- live audit sessions ------------------------------------------------------
    async def _handle_live(self, request: AuditRequest, raw: bytes) -> Dict[str, Any]:
        """Route one live operation to the shard owning its session.

        Every operation of one live session shares a routing
        fingerprint derived from the session *name*
        (:func:`~repro.service.protocol.routing_key`), so creates,
        deltas, audits and subscriptions all land on the worker holding
        the warm incremental state.  Mutations bypass coalescing and
        caching entirely; ``live-audit`` answers are published to the
        fleet result table and **forgotten**
        (:meth:`~repro.service.coalesce.FleetCoalescer.forget`) the
        moment a delta lands on their session, so no router in the
        fleet can serve a verdict for a database that no longer exists.
        """
        started = time.perf_counter()
        name = request.live or ""
        route_fp = hashlib.sha256(routing_key(request).encode("utf8")).hexdigest()
        coalescer = self._coalescer
        assert coalescer is not None

        owns_claim = False
        fingerprint: Optional[str] = None
        if request.op == "live-audit":
            fingerprint = hashlib.sha256(request_key(request).encode("utf8")).hexdigest()
            with span("coalesce.claim"):
                claimed = coalescer.claim(fingerprint)
            if claimed:
                core = json.loads(claimed)
                self._link_leader(core, "fleet-cache")
                elapsed = time.perf_counter() - started
                self._metrics.observe(request.op, "cached", elapsed)
                return self._respond(request, core, elapsed, fleet="cached")
            # None → we own the row (publish/abandon below); "" → someone
            # else is computing, but a snapshot is cheap and a delta may
            # be racing the pending row — just compute our own copy.
            owns_claim = claimed is None

        shard = self._shard_for(route_fp)
        if shard.outstanding >= self._shard_queue_limit:
            if owns_claim and fingerprint is not None:
                coalescer.abandon(fingerprint)
            shard.shed += 1
            self._metrics.observe(request.op, "shed")
            return error_response(
                request.id,
                ERROR_OVERLOADED,
                f"shard {shard.index} is saturated ({shard.outstanding} in flight, "
                f"limit {self._shard_queue_limit}); retry later",
            )

        if request.op == "subscribe":
            return await self._subscribe_upstream(shard, request, raw)

        try:
            with span("router.forward") as fwd:
                if isinstance(fwd, Span):
                    fwd.set("shard", shard.index)
                response = await self._forward(shard, raw)
            shard.breaker.record_success()
        except ReproError as error:
            shard.breaker.record_failure()
            if owns_claim and fingerprint is not None:
                coalescer.abandon(fingerprint)
            elapsed = time.perf_counter() - started
            self._metrics.observe(request.op, "error", elapsed)
            if request.is_live_mutation:
                # A lost delta is NOT safe to retry blindly: the worker
                # may have applied it before crashing, and the restarted
                # worker has lost the session either way.
                return error_response(
                    request.id,
                    ERROR_WORKER_CRASHED,
                    f"{error}; the live session {name!r} must be recreated",
                    retryable=False,
                )
            return error_response(
                request.id,
                ERROR_WORKER_CRASHED,
                f"{error}; the request is safe to retry",
            )

        core = {
            key: response[key]
            for key in ("ok", "op", "result", "error", "server")
            if key in response
        }
        core["shard"] = shard.index
        elapsed = time.perf_counter() - started
        if core.get("ok"):
            if request.op == "live-audit" and fingerprint is not None:
                if owns_claim:
                    coalescer.publish(
                        fingerprint,
                        json.dumps(core, separators=(",", ":"), default=str),
                    )
                self._live_cached.setdefault(name, set()).add(fingerprint)
            elif request.op == "apply-delta":
                # Fleet-wide cache invalidation: drop every live-audit
                # answer this delta just made stale.
                for stale in self._live_cached.pop(name, ()):
                    coalescer.forget(stale)
            self._metrics.observe(request.op, "computed", elapsed)
        else:
            if owns_claim and fingerprint is not None:
                coalescer.abandon(fingerprint)
            self._metrics.observe(request.op, "error", elapsed)
        return self._respond(request, core, elapsed)

    async def _subscribe_upstream(
        self, shard: _Shard, request: AuditRequest, raw: bytes
    ) -> Dict[str, Any]:
        """Open a dedicated worker connection for a notification stream.

        Pooled connections are strictly one-line-in-one-line-out; a
        subscription pushes unsolicited lines, so it gets its own
        upstream connection for as long as the client stays.
        """
        try:
            reader, writer = await asyncio.open_unix_connection(
                shard.path, limit=self._stream_limit
            )
        except Exception as error:
            self._metrics.observe("subscribe", "error")
            return error_response(
                request.id,
                ERROR_WORKER_CRASHED,
                f"cannot reach worker {shard.index}: {error}; retry later",
            )
        try:
            writer.write(raw)
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if not line:
                raise ReproError(f"worker {shard.index} closed the connection")
            response = json.loads(line)
        except Exception as error:
            with contextlib.suppress(Exception):
                writer.close()
            self._metrics.observe("subscribe", "error")
            return error_response(
                request.id,
                ERROR_WORKER_CRASHED,
                f"subscribe failed on worker {shard.index}: {error}",
            )
        if not response.get("ok"):
            with contextlib.suppress(Exception):
                writer.close()
            self._metrics.observe("subscribe", "error")
            return response
        shard.forwarded += 1
        self._metrics.observe("subscribe", "computed")
        server_doc = response.get("server")
        if isinstance(server_doc, dict):
            server_doc["shard"] = shard.index
        response["_subscribe_relay"] = (reader, writer)
        return response

    async def _relay_stream(
        self,
        relay: Tuple[asyncio.StreamReader, asyncio.StreamWriter],
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        """Pump worker notification lines to the client until either side ends."""
        worker_reader, worker_writer = relay
        self._live_relays += 1
        eof = asyncio.ensure_future(client_reader.read(1))
        getter: Optional["asyncio.Future"] = None
        try:
            while True:
                getter = asyncio.ensure_future(worker_reader.readline())
                done, _ = await asyncio.wait(
                    {getter, eof}, return_when=asyncio.FIRST_COMPLETED
                )
                if eof in done:
                    break
                line = getter.result()
                getter = None
                if not line:  # the worker died or was restarted
                    break
                client_writer.write(line)
                await client_writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._live_relays -= 1
            eof.cancel()
            if getter is not None:
                getter.cancel()
            with contextlib.suppress(Exception):
                worker_writer.close()

    async def _await_remote(
        self,
        coalescer: FleetCoalescer,
        fingerprint: str,
        timeout: float = 120.0,
        *,
        deadline: Optional[float] = None,
    ) -> Optional[Dict[str, Any]]:
        """Poll a pending row owned by another process until it resolves.

        Returns ``None`` when the row went away (the caller retries its
        claim) or the budget ran out (the caller's expiry check fires).
        """
        loop = asyncio.get_running_loop()
        stop = loop.time() + timeout
        if deadline is not None:
            stop = min(stop, loop.time() + max(0.0, deadline - time.perf_counter()))
        while loop.time() < stop:
            await asyncio.sleep(0.01)
            waiter = self._subscribers.get(fingerprint)
            if waiter is not None:
                try:
                    return await self._await_within(waiter, deadline)
                except asyncio.TimeoutError:
                    return None
            published = coalescer.lookup(fingerprint)
            if published is not None:
                return json.loads(published)
            if coalescer.claim(fingerprint) is None:
                # The owner abandoned; we inherited the claim.
                coalescer.abandon(fingerprint)
                return None
            # Our claim attempt re-coalesced (row still pending): keep waiting.
        return None

    @staticmethod
    def _link_leader(core: Mapping[str, Any], relation: str) -> None:
        """Record, on a follower's trace, a link to the leader's trace."""
        trace = current_trace()
        if trace is None:
            return
        leader = core.get("trace_id")
        if isinstance(leader, str) and leader != trace.trace_id:
            trace.link(leader, relation)

    def _respond(
        self,
        request: AuditRequest,
        core: Mapping[str, Any],
        elapsed: float,
        *,
        fleet: Optional[str] = None,
    ) -> Dict[str, Any]:
        shard = core.get("shard")
        if not core.get("ok"):
            error_doc = core.get("error") or {}
            return error_response(
                request.id,
                error_doc.get("code", ERROR_INTERNAL),
                error_doc.get("message", "unknown fleet error"),
            )
        server: Dict[str, Any] = dict(core.get("server") or {})
        if fleet == "coalesced":
            server["coalesced"] = True
            server["fleet_coalesced"] = True
        elif fleet == "cached":
            server["cached"] = True
            server["fleet_cached"] = True
        if shard is not None:
            server["shard"] = shard
        server["elapsed_ms"] = round(elapsed * 1000.0, 3)
        return {
            "id": request.id,
            "ok": True,
            "op": request.op,
            "result": core.get("result"),
            "server": server,
        }

    # -- fleet stats -------------------------------------------------------------
    async def _worker_control(
        self, shard: _Shard, op: str, options: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        document: Dict[str, Any] = {"id": _ROUTER_ID, "op": op}
        if options:
            document["options"] = options
        response = await asyncio.wait_for(
            self._forward(shard, encode_message(document)), timeout=15.0
        )
        if not response.get("ok"):
            raise ReproError(f"worker {shard.index} {op} failed: {response!r}")
        return response.get("result") or {}

    async def _worker_stats(self, shard: _Shard) -> Dict[str, Any]:
        return await self._worker_control(shard, "stats", {"mergeable": True})

    async def _fleet_stats(self, request: AuditRequest) -> Dict[str, Any]:
        self._metrics.observe("stats", "computed")
        payloads = await asyncio.gather(
            *(self._worker_stats(shard) for shard in self._shards),
            return_exceptions=True,
        )
        mergeables = [self._metrics.mergeable_snapshot()]
        shards_doc = []
        for shard, payload in zip(self._shards, payloads):
            process = shard.process
            entry: Dict[str, Any] = {
                "shard": shard.index,
                "pid": process.pid if process is not None else None,
                "alive": bool(process is not None and process.is_alive()),
                "restarts": shard.restarts,
                "outstanding": shard.outstanding,
                "queue_limit": self._shard_queue_limit,
                "forwarded": shard.forwarded,
                "shed": shard.shed,
                "connections": shard.created,
                "health": shard.breaker.state,
                "breaker": shard.breaker.stats(),
                "diverted": shard.diverted,
            }
            if isinstance(payload, dict):
                mergeable = payload.pop("mergeable", None)
                if mergeable:
                    mergeables.append(mergeable)
                entry["worker"] = {
                    key: payload[key]
                    for key in (
                        "pending",
                        "workers",
                        "connections",
                        "result_cache_entries",
                        "abandoned",
                        "query_evaluation",
                        "faults",
                        "live",
                    )
                    if key in payload
                }
                entry["sessions"] = payload.get("sessions", [])
            elif isinstance(payload, BaseException):
                entry["error"] = str(payload)
                # A dead/unreachable shard contributes a malformed part;
                # merge_snapshots skips it and marks the merge partial.
                mergeables.append(None)
            shards_doc.append(entry)
        merged = merge_snapshots(mergeables)
        coalescer = self._coalescer
        merged["fleet"] = {
            "workers": len(self._shards),
            "routing": "rendezvous/request-fingerprint",
            "boot_id": self._boot_id,
            "shard_queue_limit": self._shard_queue_limit,
            "connections_per_worker": self._connections_per_worker,
            "active_requests": self._active,
            "rewarmed": self._rewarmed,
            "diverted": self._diverted,
            "live_relays": self._live_relays,
            "live_cached_fingerprints": sum(
                len(keys) for keys in self._live_cached.values()
            ),
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "coalescer": coalescer.stats() if coalescer is not None else None,
            "shards": shards_doc,
        }
        fault_stats = faults.stats()
        if fault_stats is not None:
            merged["fleet"]["faults"] = fault_stats
        return ok_response(request.id, "stats", merged)

    async def _fleet_traces(self, request: AuditRequest) -> Dict[str, Any]:
        """Merge every worker's trace-buffer snapshot with the router's."""
        self._metrics.observe("traces", "computed")
        payloads = await asyncio.gather(
            *(self._worker_control(shard, "traces") for shard in self._shards),
            return_exceptions=True,
        )
        parts: List[Any] = [TRACES.snapshot()]
        parts.extend(
            payload if isinstance(payload, Mapping) else None for payload in payloads
        )
        merged = merge_trace_snapshots(parts)
        merged["workers"] = len(self._shards)
        return ok_response(request.id, "traces", merged)

    async def _fleet_metrics(self, request: AuditRequest) -> Dict[str, Any]:
        """One Prometheus exposition over router + every worker's counters."""
        self._metrics.observe("metrics", "computed")
        payloads = await asyncio.gather(
            *(
                self._worker_control(shard, "metrics", {"mergeable": True})
                for shard in self._shards
            ),
            return_exceptions=True,
        )
        mergeables: List[Any] = [self._metrics.mergeable_snapshot()]
        gauges: Dict[str, Any] = {
            "fleet_workers": len(self._shards),
            "active_requests": self._active,
        }
        for payload in payloads:
            if not isinstance(payload, Mapping):
                mergeables.append(None)
                continue
            mergeables.append(payload.get("mergeable"))
            for name, value in (payload.get("gauges") or {}).items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    gauges[name] = gauges.get(name, 0) + value
        merged = merge_snapshots(mergeables)
        result: Dict[str, Any] = {
            "content_type": CONTENT_TYPE,
            "text": render_prometheus(merged, gauges),
        }
        if merged.get("partial"):
            result["partial"] = True
        return ok_response(request.id, "metrics", result)


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------
def run_fleet(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    announce=None,
    **fleet_options,
) -> None:
    """Run a fleet until ``shutdown`` / Ctrl-C (the CLI entry point)."""

    async def _amain() -> None:
        fleet = FleetServer(host, port, **fleet_options)
        bound = await fleet.start()
        if announce is not None:
            announce(bound)
        try:
            await fleet.serve_until_stopped()
        except asyncio.CancelledError:  # pragma: no cover - Ctrl-C path
            await fleet.stop()
            raise

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass


class FleetThread:
    """A fleet running on a background thread (tests, benchmarks, demos).

    Usage::

        with FleetThread(workers=2) as fleet:
            client = AuditServiceClient(*fleet.address)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **fleet_options):
        self._fleet = FleetServer(host, port, **fleet_options)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The router's bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._address is None:
            raise ReproError("the fleet thread is not running")
        return self._address

    @property
    def fleet(self) -> FleetServer:
        """The wrapped :class:`FleetServer` (e.g. for ``worker_pids``)."""
        return self._fleet

    def start(self) -> "FleetThread":
        """Boot the router loop thread and wait until the fleet listens."""

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def _main() -> None:
                try:
                    self._address = await self._fleet.start()
                except BaseException as error:
                    self._error = error
                    self._started.set()
                    return
                self._started.set()
                await self._fleet.serve_until_stopped()

            try:
                loop.run_until_complete(_main())
            finally:
                loop.close()

        self._thread = threading.Thread(target=_run, name="repro-fleet-router", daemon=True)
        self._thread.start()
        self._started.wait(timeout=120)
        if self._error is not None:
            raise ReproError(f"the fleet failed to start: {self._error}")
        if self._address is None:
            raise ReproError("the fleet did not come up within 120s")
        return self

    def stop(self, timeout: float = 60) -> None:
        """Request a drain-then-stop and join the router thread."""
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            try:
                loop.call_soon_threadsafe(
                    lambda: self._fleet._stop_event is not None
                    and self._fleet._stop_event.set()
                )
            except RuntimeError:
                pass  # the loop already stopped (e.g. a client sent shutdown)
            thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
