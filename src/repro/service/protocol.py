"""The audit-service wire format.

One JSON document per line (``\\n``-terminated, UTF-8).  A *request*
names an operation plus the analysis inputs; every input is plain JSON
(schema documents in the :mod:`repro.io` format, queries as datalog
strings), so workload files can be written by hand or generated
programmatically::

    {"id": 1, "op": "decide",
     "schema": {"relations": [...]},
     "secret": "S(n, p) :- Emp(n, d, p)",
     "views": {"bob": "V(n, d) :- Emp(n, d, p)"}}

A *response* echoes the request id and either carries a result or a
structured error — the connection always survives a malformed request::

    {"id": 1, "ok": true, "op": "decide", "result": {"verdict": false, ...},
     "server": {"coalesced": false, "cached": false, "elapsed_ms": 3.1}}
    {"id": 1, "ok": false, "error": {"code": "invalid-request", "message": "..."}}

Operations
----------
Analysis operations mirror the session API: ``decide``, ``quick``,
``audit``, ``leakage``, ``collusion``, ``with_knowledge``, ``verify``
and ``plan``.  Control operations are ``ping``, ``stats``, ``traces``,
``metrics`` and ``shutdown``.

Live operations address a named :class:`~repro.session.LiveAuditSession`
held by the server (the ``live`` field carries the name):

* ``live-create`` — pin a (schema, secrets, views, facts) state;
* ``apply-delta`` — add/remove facts and publish/retract views, get the
  incremental re-verdict notification back;
* ``live-audit`` — the current verdict snapshot (cacheable: the server
  invalidates the cached result when a delta lands);
* ``subscribe`` — dedicate this connection to the session's
  notification stream: after the acknowledgement, every subsequent
  line pushed by the server is the notification of one mutation.

Mutations are *not* idempotent, so live mutation operations bypass
request coalescing, result caches and retry-after-``worker-crashed``;
the fleet routes every operation of one live session to the same shard
by hashing the session name (see :func:`routing_key`), which is what
keeps the warm incremental state on the owning worker.

Error codes
-----------
``bad-json``            the line is not a JSON object;
``payload-too-large``   the line exceeds the server's payload bound;
``invalid-request``     the envelope is malformed (missing/ill-typed field);
``unknown-operation``   ``op`` is not one of the operations above;
``analysis-error``      the analysis itself failed (bad query, no dictionary, ...);
``overloaded``          the worker queue is full; retry later;
``worker-crashed``      a fleet worker died mid-request; safe to retry;
``deadline-exceeded``   the request's ``deadline_ms`` budget ran out;
``internal``            unexpected server-side failure.

Error envelopes carry a ``retryable`` flag so clients need not hard-code
the code list: ``overloaded`` and ``worker-crashed`` are safe to retry
(the request never ran, or is idempotent and deduplicated fleet-wide by
its fingerprint); ``deadline-exceeded`` is *not* marked retryable — the
caller's time budget is spent and only the caller can grant more.

Tracing
-------
Analysis requests may carry a ``trace`` object asking the fleet to
record a span tree for this request: ``{"return": true}`` opens a trace
server-side and returns the finished tree in the response's
``server.trace``; the router adds ``id``/``parent`` when forwarding so
the worker's spans graft under the router's ``router.forward`` span.
Like ``deadline_ms``, the field is transport metadata: it is excluded
from both the coalescing fingerprint and the session key, so traced and
untraced duplicates still share one computation.

Deadlines
---------
Analysis requests may carry ``deadline_ms``, a wall-clock budget in
milliseconds covering queue wait **and** computation.  The fleet router
deducts its own queue time before forwarding (workers see the remaining
budget), and a worker that overruns abandons the computation, reclaims
the slot, and answers ``deadline-exceeded``.  The deadline is excluded
from the coalescing fingerprint: two requests that differ only in
budget still share one computation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.prior import (
    CardinalityConstraintKnowledge,
    ConjunctionKnowledge,
    KeyConstraintKnowledge,
    PriorKnowledge,
)
from ..exceptions import ReproError
from ..relational.schema import Schema

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_PAYLOAD",
    "ANALYSIS_OPERATIONS",
    "CONTROL_OPERATIONS",
    "LIVE_OPERATIONS",
    "LIVE_MUTATION_OPERATIONS",
    "OPERATIONS",
    "ERROR_BAD_JSON",
    "ERROR_PAYLOAD_TOO_LARGE",
    "ERROR_INVALID_REQUEST",
    "ERROR_UNKNOWN_OPERATION",
    "ERROR_ANALYSIS",
    "ERROR_OVERLOADED",
    "ERROR_WORKER_CRASHED",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_INTERNAL",
    "RETRYABLE_ERROR_CODES",
    "ProtocolError",
    "AuditRequest",
    "parse_request",
    "request_key",
    "routing_key",
    "session_key",
    "knowledge_from_dict",
    "encode_message",
    "decode_message",
    "ok_response",
    "error_response",
]

#: Version tag carried in ``ping`` responses (bumped on breaking changes).
PROTOCOL_VERSION = 1

#: Default upper bound on one request line, in bytes.
DEFAULT_MAX_PAYLOAD = 1 << 20

#: Operations that run an analysis on a session.
ANALYSIS_OPERATIONS = frozenset(
    {"decide", "quick", "audit", "leakage", "collusion", "with_knowledge", "verify", "plan"}
)

#: Operations answered by the server itself.
CONTROL_OPERATIONS = frozenset({"ping", "stats", "traces", "metrics", "shutdown"})

#: Operations addressing a named live audit session (the ``live`` field).
LIVE_OPERATIONS = frozenset({"live-create", "apply-delta", "live-audit", "subscribe"})

#: The live operations that change server-side state.  They are never
#: coalesced, never served from result caches, and never marked
#: retryable — a repeat would apply the delta twice.
LIVE_MUTATION_OPERATIONS = frozenset({"live-create", "apply-delta"})

OPERATIONS = ANALYSIS_OPERATIONS | CONTROL_OPERATIONS | LIVE_OPERATIONS

ERROR_BAD_JSON = "bad-json"
ERROR_PAYLOAD_TOO_LARGE = "payload-too-large"
ERROR_INVALID_REQUEST = "invalid-request"
ERROR_UNKNOWN_OPERATION = "unknown-operation"
ERROR_ANALYSIS = "analysis-error"
ERROR_OVERLOADED = "overloaded"
ERROR_WORKER_CRASHED = "worker-crashed"
ERROR_DEADLINE_EXCEEDED = "deadline-exceeded"
ERROR_INTERNAL = "internal"

#: Codes a client may retry without changing the request: the work
#: either never started (``overloaded``) or is idempotent and
#: deduplicated fleet-wide by the request fingerprint
#: (``worker-crashed``).
RETRYABLE_ERROR_CODES = frozenset({ERROR_OVERLOADED, ERROR_WORKER_CRASHED})


class ProtocolError(ReproError):
    """A request violates the wire format; carries the structured code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


#: Request ids may be any JSON scalar the client chooses.
RequestId = Union[str, int, float, None]

#: ``views`` / ``secrets`` accept a name→query mapping or a plain list.
Queries = Union[Mapping[str, str], Sequence[str], str]


@dataclass(frozen=True)
class AuditRequest:
    """A validated request envelope (analysis inputs still unparsed).

    Queries stay datalog strings and the schema stays a JSON document
    here: parsing them belongs to the execution step, where failures map
    to ``analysis-error`` rather than ``invalid-request``.
    """

    op: str
    id: RequestId = None
    schema: Optional[Mapping[str, Any]] = None
    secret: Optional[str] = None
    views: Optional[Queries] = None
    secrets: Optional[Queries] = None
    dictionary: Optional[Mapping[str, Any]] = None
    knowledge: Optional[Mapping[str, Any]] = None
    engine: str = "exact"
    criticality_engine: Optional[str] = None
    eval_engine: Optional[str] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    #: Wall-clock budget (queue wait + computation) in milliseconds.
    deadline_ms: Optional[float] = None
    #: Tracing directives (``{"return": true, "id": ..., "parent": ...}``).
    #: Transport metadata, excluded from fingerprints like ``deadline_ms``.
    trace: Optional[Mapping[str, Any]] = None
    #: Live-session name (live operations only).
    live: Optional[str] = None
    #: Initial facts (``live-create``) as fact documents.
    facts: Optional[Sequence[Any]] = None
    #: Facts to insert / delete (``apply-delta``) as fact documents.
    add: Optional[Sequence[Any]] = None
    remove: Optional[Sequence[Any]] = None
    #: Views to publish (name → datalog) / retract (names) in a delta.
    publish: Optional[Mapping[str, str]] = None
    retract: Optional[Sequence[str]] = None

    @property
    def is_control(self) -> bool:
        """True for ``ping`` / ``stats`` / ``shutdown``."""
        return self.op in CONTROL_OPERATIONS

    @property
    def is_live(self) -> bool:
        """True for operations addressing a named live session."""
        return self.op in LIVE_OPERATIONS

    @property
    def is_live_mutation(self) -> bool:
        """True for live operations that change server-side state."""
        return self.op in LIVE_MUTATION_OPERATIONS

    def to_document(self) -> Dict[str, Any]:
        """The request as a wire document (round-trips through
        :func:`parse_request` with an identical :func:`request_key`).

        The fleet router uses this to rewrite ``deadline_ms`` to the
        *remaining* budget before forwarding to a worker.
        """
        document: Dict[str, Any] = {"op": self.op, "id": self.id}
        for key in (
            "schema",
            "secret",
            "views",
            "secrets",
            "dictionary",
            "knowledge",
            "live",
            "facts",
            "add",
            "remove",
            "publish",
            "retract",
        ):
            value = getattr(self, key)
            if value is not None:
                document[key] = value
        document["engine"] = self.engine
        if self.criticality_engine is not None:
            document["criticality_engine"] = self.criticality_engine
        if self.eval_engine is not None:
            document["eval_engine"] = self.eval_engine
        if self.options:
            document["options"] = dict(self.options)
        if self.deadline_ms is not None:
            document["deadline_ms"] = self.deadline_ms
        if self.trace is not None:
            document["trace"] = dict(self.trace)
        return document


def _require(document: Mapping[str, Any], key: str, op: str) -> Any:
    value = document.get(key)
    if value is None:
        raise ProtocolError(
            ERROR_INVALID_REQUEST, f"operation {op!r} requires the {key!r} field"
        )
    return value


def _check_queries(value: Any, key: str) -> Queries:
    if isinstance(value, str):
        return value
    if isinstance(value, Mapping):
        if not value or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in value.items()
        ):
            raise ProtocolError(
                ERROR_INVALID_REQUEST,
                f"{key!r} must map recipient names to datalog query strings",
            )
        return dict(value)
    if isinstance(value, Sequence):
        if not value or not all(isinstance(v, str) for v in value):
            raise ProtocolError(
                ERROR_INVALID_REQUEST,
                f"{key!r} must be a non-empty list of datalog query strings",
            )
        return list(value)
    raise ProtocolError(
        ERROR_INVALID_REQUEST,
        f"{key!r} must be a query string, a list of them, or a name→query mapping",
    )


def parse_request(document: Any) -> AuditRequest:
    """Validate a decoded JSON document into an :class:`AuditRequest`.

    Raises :class:`ProtocolError` with ``invalid-request`` or
    ``unknown-operation`` on malformed envelopes.
    """
    if not isinstance(document, Mapping):
        raise ProtocolError(ERROR_INVALID_REQUEST, "a request must be a JSON object")
    op = document.get("op")
    if not isinstance(op, str):
        raise ProtocolError(ERROR_INVALID_REQUEST, "a request must name an 'op' string")
    if op not in OPERATIONS:
        raise ProtocolError(
            ERROR_UNKNOWN_OPERATION,
            f"unknown operation {op!r}; expected one of {', '.join(sorted(OPERATIONS))}",
        )
    request_id = document.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float)):
        raise ProtocolError(ERROR_INVALID_REQUEST, "the request 'id' must be a JSON scalar")
    options = document.get("options") or {}
    if not isinstance(options, Mapping) or not all(isinstance(k, str) for k in options):
        raise ProtocolError(
            ERROR_INVALID_REQUEST, "'options' must be an object with string keys"
        )
    deadline_ms = document.get("deadline_ms")
    if deadline_ms is not None:
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or deadline_ms <= 0
        ):
            raise ProtocolError(
                ERROR_INVALID_REQUEST, "'deadline_ms' must be a positive number"
            )
        deadline_ms = float(deadline_ms)
    trace = document.get("trace")
    if trace is not None:
        if not isinstance(trace, Mapping) or not all(isinstance(k, str) for k in trace):
            raise ProtocolError(
                ERROR_INVALID_REQUEST, "'trace' must be an object with string keys"
            )
        trace = dict(trace)
    if op in CONTROL_OPERATIONS:
        # Control operations accept options too (e.g. the fleet router asks
        # each worker for ``stats`` with ``{"mergeable": true}``).
        return AuditRequest(op=op, id=request_id, options=dict(options), trace=trace)

    if op in LIVE_OPERATIONS:
        return _parse_live_request(
            document, op, request_id, options, deadline_ms, trace
        )

    schema = _require(document, "schema", op)
    if not isinstance(schema, Mapping) or not schema.get("relations"):
        raise ProtocolError(
            ERROR_INVALID_REQUEST,
            "'schema' must be a schema document with a non-empty 'relations' list",
        )
    dictionary = document.get("dictionary")
    if dictionary is not None and not isinstance(dictionary, Mapping):
        raise ProtocolError(ERROR_INVALID_REQUEST, "'dictionary' must be a JSON object")
    engine = document.get("engine", "exact")
    if not isinstance(engine, str):
        raise ProtocolError(ERROR_INVALID_REQUEST, "'engine' must be a string")
    criticality_engine = document.get("criticality_engine")
    if criticality_engine is not None and not isinstance(criticality_engine, str):
        raise ProtocolError(ERROR_INVALID_REQUEST, "'criticality_engine' must be a string")
    eval_engine = document.get("eval_engine")
    if eval_engine is not None and not isinstance(eval_engine, str):
        raise ProtocolError(ERROR_INVALID_REQUEST, "'eval_engine' must be a string")

    secret: Optional[str] = None
    views: Optional[Queries] = None
    secrets: Optional[Queries] = None
    knowledge: Optional[Mapping[str, Any]] = None
    if op == "plan":
        secrets = _check_queries(_require(document, "secrets", op), "secrets")
        views = _check_queries(_require(document, "views", op), "views")
    else:
        secret = _require(document, "secret", op)
        if not isinstance(secret, str):
            raise ProtocolError(ERROR_INVALID_REQUEST, "'secret' must be a datalog string")
        views = _check_queries(_require(document, "views", op), "views")
    if op == "with_knowledge":
        knowledge = _require(document, "knowledge", op)
        if not isinstance(knowledge, Mapping) or "kind" not in knowledge:
            raise ProtocolError(
                ERROR_INVALID_REQUEST,
                "'knowledge' must be an object with a 'kind' field",
            )
    return AuditRequest(
        op=op,
        id=request_id,
        schema=dict(schema),
        secret=secret,
        views=views,
        secrets=secrets,
        dictionary=dict(dictionary) if dictionary is not None else None,
        knowledge=dict(knowledge) if knowledge is not None else None,
        engine=engine,
        criticality_engine=criticality_engine,
        eval_engine=eval_engine,
        options=dict(options),
        deadline_ms=deadline_ms,
        trace=trace,
    )


def _check_fact_list(value: Any, key: str) -> List[Any]:
    """Shallow validation of a fact-document list (deep checks at execution)."""
    if not isinstance(value, Sequence) or isinstance(value, str):
        raise ProtocolError(
            ERROR_INVALID_REQUEST, f"{key!r} must be a list of fact documents"
        )
    return list(value)


def _parse_live_request(
    document: Mapping[str, Any],
    op: str,
    request_id: "RequestId",
    options: Mapping[str, Any],
    deadline_ms: Optional[float],
    trace: Optional[Mapping[str, Any]],
) -> AuditRequest:
    """Validate the live-operation envelopes (``live`` names the session)."""
    live = _require(document, "live", op)
    if not isinstance(live, str) or not live:
        raise ProtocolError(
            ERROR_INVALID_REQUEST, "'live' must name the live session (non-empty string)"
        )
    fields: Dict[str, Any] = {
        "op": op,
        "id": request_id,
        "live": live,
        "options": dict(options),
        "deadline_ms": deadline_ms,
        "trace": trace,
    }
    if op == "live-create":
        schema = _require(document, "schema", op)
        if not isinstance(schema, Mapping) or not schema.get("relations"):
            raise ProtocolError(
                ERROR_INVALID_REQUEST,
                "'schema' must be a schema document with a non-empty 'relations' list",
            )
        fields["schema"] = dict(schema)
        fields["secrets"] = _check_queries(_require(document, "secrets", op), "secrets")
        if document.get("views") is not None:
            fields["views"] = _check_queries(document["views"], "views")
        if document.get("facts") is not None:
            fields["facts"] = _check_fact_list(document["facts"], "facts")
        dictionary = document.get("dictionary")
        if dictionary is not None:
            if not isinstance(dictionary, Mapping):
                raise ProtocolError(
                    ERROR_INVALID_REQUEST, "'dictionary' must be a JSON object"
                )
            fields["dictionary"] = dict(dictionary)
        for key in ("criticality_engine", "eval_engine"):
            value = document.get(key)
            if value is not None:
                if not isinstance(value, str):
                    raise ProtocolError(
                        ERROR_INVALID_REQUEST, f"'{key}' must be a string"
                    )
                fields[key] = value
    elif op == "apply-delta":
        if document.get("add") is not None:
            fields["add"] = _check_fact_list(document["add"], "add")
        if document.get("remove") is not None:
            fields["remove"] = _check_fact_list(document["remove"], "remove")
        publish = document.get("publish")
        if publish is not None:
            if not isinstance(publish, Mapping) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in publish.items()
            ):
                raise ProtocolError(
                    ERROR_INVALID_REQUEST,
                    "'publish' must map view names to datalog query strings",
                )
            fields["publish"] = dict(publish)
        retract = document.get("retract")
        if retract is not None:
            if (
                not isinstance(retract, Sequence)
                or isinstance(retract, str)
                or not all(isinstance(name, str) for name in retract)
            ):
                raise ProtocolError(
                    ERROR_INVALID_REQUEST, "'retract' must be a list of view names"
                )
            fields["retract"] = list(retract)
        if not any(
            fields.get(key) for key in ("add", "remove", "publish", "retract")
        ):
            raise ProtocolError(
                ERROR_INVALID_REQUEST,
                "'apply-delta' needs at least one of 'add', 'remove', "
                "'publish' or 'retract'",
            )
    # subscribe / live-audit carry nothing beyond the session name.
    return AuditRequest(**fields)


def _canonical(value: Any) -> Any:
    """A JSON-stable view of a request field (mappings get sorted keys)."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def dictionary_spec(request: AuditRequest) -> Optional[Dict[str, Any]]:
    """The dictionary-defining fields of a request, normalised.

    The per-request ``dictionary`` object wins; otherwise the schema
    document's ``tuple_probability`` / ``expected_size`` keys apply,
    exactly as :func:`repro.io.dictionary_from_dict` reads them.
    """
    if request.dictionary is not None:
        return _canonical(request.dictionary)
    schema = request.schema or {}
    spec = {
        key: schema[key]
        for key in ("tuple_probability", "expected_size")
        if key in schema
    }
    return _canonical(spec) if spec else None


def session_key(request: AuditRequest) -> str:
    """The session-sharing fingerprint of a request.

    Requests with equal keys run on one shared
    :class:`~repro.session.AnalysisSession` (hence one critical-tuple
    cache and one set of shared probability kernels).
    """
    payload = {
        "schema": _canonical(request.schema),
        "dictionary": dictionary_spec(request),
        "engine": request.engine,
        "criticality_engine": request.criticality_engine,
        "eval_engine": request.eval_engine,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def request_key(request: AuditRequest) -> str:
    """The coalescing/memoization key: everything but the request id.

    Two requests with the same key are the same question to the same
    session, so concurrent duplicates await one computation and repeats
    hit the server's result cache.  The key is textual: α-equivalent but
    differently-spelled queries get distinct keys (the session's own
    critical-tuple cache still unifies their heavy work).
    """
    payload = {
        "op": request.op,
        "schema": _canonical(request.schema),
        "secret": request.secret,
        "views": _canonical(request.views),
        "secrets": _canonical(request.secrets),
        "dictionary": dictionary_spec(request),
        "knowledge": _canonical(request.knowledge),
        "engine": request.engine,
        "criticality_engine": request.criticality_engine,
        "eval_engine": request.eval_engine,
        "options": _canonical(request.options),
    }
    if request.is_live:
        payload["live"] = request.live
        for key in ("facts", "add", "remove", "publish", "retract"):
            value = getattr(request, key)
            if value is not None:
                payload[key] = _canonical(value)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def routing_key(request: AuditRequest) -> str:
    """The string the fleet router hashes to pick a shard.

    For stateless analysis requests this is the full :func:`request_key`
    (duplicates land on one shard and coalesce).  For live operations it
    is derived from the *session name only*, so every create, delta,
    audit and subscription of one live session reaches the shard that
    owns its warm incremental state.
    """
    if request.is_live:
        return f"live|{request.live}"
    return request_key(request)


# ---------------------------------------------------------------------------
# Knowledge documents
# ---------------------------------------------------------------------------
def knowledge_from_dict(document: Mapping[str, Any], schema: Schema) -> PriorKnowledge:
    """Build a :class:`PriorKnowledge` from its JSON description.

    Supported kinds::

        {"kind": "keys"}                                    # keys declared on the schema
        {"kind": "keys", "keys": {"Emp": [0]}}              # explicit key positions
        {"kind": "cardinality", "comparison": "at_most",
         "count": 3, "relation": "Emp"}                     # relation optional
        {"kind": "conjunction", "parts": [ ... ]}           # nested documents
    """
    kind = document.get("kind")
    if kind == "keys":
        keys = document.get("keys")
        if keys is None:
            return KeyConstraintKnowledge.from_schema(schema)
        if not isinstance(keys, Mapping):
            raise ProtocolError(
                ERROR_INVALID_REQUEST, "'keys' must map relation names to position lists"
            )
        return KeyConstraintKnowledge(
            {name: tuple(int(p) for p in positions) for name, positions in keys.items()}
        )
    if kind == "cardinality":
        comparison = document.get("comparison")
        count = document.get("count")
        if not isinstance(comparison, str) or not isinstance(count, int):
            raise ProtocolError(
                ERROR_INVALID_REQUEST,
                "cardinality knowledge needs a 'comparison' string and an integer 'count'",
            )
        return CardinalityConstraintKnowledge(
            comparison, count, relation=document.get("relation")
        )
    if kind == "conjunction":
        parts = document.get("parts")
        if not isinstance(parts, Sequence) or not parts:
            raise ProtocolError(
                ERROR_INVALID_REQUEST, "conjunction knowledge needs a non-empty 'parts' list"
            )
        return ConjunctionKnowledge(
            [knowledge_from_dict(part, schema) for part in parts]
        )
    raise ProtocolError(
        ERROR_INVALID_REQUEST,
        f"unsupported knowledge kind {kind!r}; expected 'keys', 'cardinality' "
        "or 'conjunction'",
    )


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def encode_message(document: Mapping[str, Any]) -> bytes:
    """Serialise one message to its wire form (JSON + newline)."""
    return json.dumps(document, separators=(",", ":"), default=str).encode("utf8") + b"\n"


def decode_message(line: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD) -> Any:
    """Decode one received line; raises :class:`ProtocolError` on bad input."""
    if len(line) > max_payload:
        raise ProtocolError(
            ERROR_PAYLOAD_TOO_LARGE,
            f"request of {len(line)} bytes exceeds the {max_payload}-byte bound",
        )
    try:
        return json.loads(line.decode("utf8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERROR_BAD_JSON, f"request is not valid JSON: {exc}") from exc


def ok_response(
    request_id: RequestId,
    op: str,
    result: Mapping[str, Any],
    *,
    coalesced: bool = False,
    cached: bool = False,
    elapsed_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """A success envelope."""
    server: Dict[str, Any] = {"coalesced": coalesced, "cached": cached}
    if elapsed_ms is not None:
        server["elapsed_ms"] = round(elapsed_ms, 3)
    return {"id": request_id, "ok": True, "op": op, "result": result, "server": server}


def error_response(
    request_id: RequestId,
    code: str,
    message: str,
    *,
    retryable: Optional[bool] = None,
) -> Dict[str, Any]:
    """A structured-error envelope (the connection stays open).

    ``retryable`` defaults to the code's membership in
    :data:`RETRYABLE_ERROR_CODES`; pass it explicitly to override.
    """
    if retryable is None:
        retryable = code in RETRYABLE_ERROR_CODES
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message, "retryable": bool(retryable)},
    }
