"""The disclosure-audit service: a network front door for the analyzer.

The library answers every disclosure question the paper poses (security
decisions, leakage, collusion, prior knowledge, per-dictionary
verification) through :class:`~repro.session.AnalysisSession`, but only
as an in-process call.  This package puts those analyses behind a small
JSON-lines-over-TCP daemon, the way practical disclosure-control
deployments front their engines with a query interface:

* :mod:`repro.service.protocol` — the wire format: one JSON document per
  line, typed request/response envelopes, structured error codes;
* :mod:`repro.service.server` — the asyncio daemon: one shared
  :class:`~repro.session.AnalysisSession` per (schema, dictionary,
  engine, criticality-engine) fingerprint, coalescing of identical
  in-flight requests, a bounded worker pool with explicit load shedding;
* :mod:`repro.service.client` — sync and asyncio clients;
* :mod:`repro.service.metrics` — per-operation counters and latency
  percentiles served through the ``stats`` operation, with a mergeable
  snapshot form so a fleet can aggregate per-worker metrics;
* :mod:`repro.service.fleet` — the pre-forked multi-process fleet: a
  router that shards requests over worker processes by rendezvous
  hashing of the request fingerprint, with fleet-wide coalescing
  (:mod:`repro.service.coalesce`), worker supervision and aggregated
  stats.  ``repro-audit serve --workers N`` (N ≥ 2) boots this instead
  of the single-process daemon;
* :mod:`repro.service.health` — the per-shard circuit breaker behind
  the fleet's graceful-degradation ladder (healthy → degraded →
  quarantined with half-open probing);
* :mod:`repro.service.faults` — the deterministic fault-injection
  harness (``REPRO_FAULT_PLAN``) the chaos tests drive.

Resilience: requests may carry a ``deadline_ms`` budget (expiry is a
structured ``deadline-exceeded`` error and overrunning computations are
abandoned, not leaked), both clients take a :class:`RetryPolicy`
(seeded decorrelated-jitter backoff over retryable errors), and the
fleet's shared coalescer rows are owner-liveness-checked and
boot-namespaced so crashes and restarts never wedge followers or serve
stale verdicts.

Quick start::

    from repro.service import AuditServer, AuditServiceClient, ServerThread

    with ServerThread() as server:
        with AuditServiceClient(*server.address) as client:
            response = client.request(
                "decide",
                schema={"relations": [...]},
                secret="S(n, p) :- Emp(n, d, p)",
                views=["V(n, d) :- Emp(n, d, p)"],
            )
            print(response["result"]["verdict"])
"""

from .client import AsyncAuditServiceClient, AuditServiceClient, RetryPolicy, ServiceError
from .coalesce import FleetCoalescer
from .faults import FaultPlan, FaultRule
from .fleet import FleetServer, FleetThread, run_fleet
from .health import CircuitBreaker
from .metrics import ServiceMetrics, merge_snapshots
from .protocol import (
    ANALYSIS_OPERATIONS,
    CONTROL_OPERATIONS,
    OPERATIONS,
    PROTOCOL_VERSION,
    AuditRequest,
    ProtocolError,
    parse_request,
    request_key,
)
from .server import AuditServer, ServerThread, run_server

__all__ = [
    "ANALYSIS_OPERATIONS",
    "CONTROL_OPERATIONS",
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "AuditRequest",
    "AuditServer",
    "AuditServiceClient",
    "AsyncAuditServiceClient",
    "CircuitBreaker",
    "FaultPlan",
    "FaultRule",
    "FleetCoalescer",
    "FleetServer",
    "FleetThread",
    "ProtocolError",
    "RetryPolicy",
    "ServerThread",
    "ServiceError",
    "ServiceMetrics",
    "merge_snapshots",
    "parse_request",
    "request_key",
    "run_fleet",
    "run_server",
]
