"""The disclosure-audit service: a network front door for the analyzer.

The library answers every disclosure question the paper poses (security
decisions, leakage, collusion, prior knowledge, per-dictionary
verification) through :class:`~repro.session.AnalysisSession`, but only
as an in-process call.  This package puts those analyses behind a small
JSON-lines-over-TCP daemon, the way practical disclosure-control
deployments front their engines with a query interface:

* :mod:`repro.service.protocol` — the wire format: one JSON document per
  line, typed request/response envelopes, structured error codes;
* :mod:`repro.service.server` — the asyncio daemon: one shared
  :class:`~repro.session.AnalysisSession` per (schema, dictionary,
  engine, criticality-engine) fingerprint, coalescing of identical
  in-flight requests, a bounded worker pool with explicit load shedding;
* :mod:`repro.service.client` — sync and asyncio clients;
* :mod:`repro.service.metrics` — per-operation counters and latency
  percentiles served through the ``stats`` operation.

Quick start::

    from repro.service import AuditServer, AuditServiceClient, ServerThread

    with ServerThread() as server:
        with AuditServiceClient(*server.address) as client:
            response = client.request(
                "decide",
                schema={"relations": [...]},
                secret="S(n, p) :- Emp(n, d, p)",
                views=["V(n, d) :- Emp(n, d, p)"],
            )
            print(response["result"]["verdict"])
"""

from .client import AsyncAuditServiceClient, AuditServiceClient, ServiceError
from .metrics import ServiceMetrics
from .protocol import (
    ANALYSIS_OPERATIONS,
    CONTROL_OPERATIONS,
    OPERATIONS,
    PROTOCOL_VERSION,
    AuditRequest,
    ProtocolError,
    parse_request,
    request_key,
)
from .server import AuditServer, ServerThread, run_server

__all__ = [
    "ANALYSIS_OPERATIONS",
    "CONTROL_OPERATIONS",
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "AuditRequest",
    "AuditServer",
    "AuditServiceClient",
    "AsyncAuditServiceClient",
    "ProtocolError",
    "ServerThread",
    "ServiceError",
    "ServiceMetrics",
    "parse_request",
    "request_key",
    "run_server",
]
