"""The fleet-wide pending-request table (sqlite, WAL).

One row per request fingerprint, shared by every process that can reach
the table file, so a burst of N identical requests costs one computation
*across the whole fleet* no matter which connections they arrive on:

* the first arrival :meth:`~FleetCoalescer.claim`\\ s the fingerprint and
  owns the computation;
* concurrent twins see the ``pending`` row and subscribe to the owner's
  result (in-process via a future, cross-process by polling the row);
* once the owner :meth:`~FleetCoalescer.publish`\\ es, the row carries the
  response and doubles as the fleet's shared result cache (bounded,
  oldest-first eviction);
* a failed or shed computation is :meth:`~FleetCoalescer.abandon`\\ ed so
  the next identical request recomputes instead of inheriting the error.

Crash safety
------------
A claim is only useful while its owner is alive to publish.  Each row
records the owner pid, and :meth:`~FleetCoalescer.claim` reclaims a
pending row when the owner process no longer exists (``os.kill(pid, 0)``)
or the claim has outlived ``claim_ttl`` seconds — so a SIGKILLed router
never wedges followers until their drain timeout.  Rows are additionally
namespaced by a *boot id* chosen by the fleet at start-up: a restarted
fleet pointed at the same table file starts from a clean namespace and
can never serve a stale cached verdict published by a previous process
generation (stale rows from dead boots are purged on start).

The table is deliberately stdlib-only (``sqlite3`` in WAL mode with
``synchronous=OFF`` — it is an ephemeral coordination structure, not
durable state) and keyed by the hex digest of
:func:`repro.service.protocol.request_key`, never by raw payloads.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from typing import Any, Dict, Optional

from ..exceptions import ReproError

__all__ = ["FleetCoalescer", "PENDING", "DONE", "DEFAULT_CLAIM_TTL"]

#: ``state`` values of one row.
PENDING = 0
DONE = 1

#: Default bound on completed results kept in the table.
DEFAULT_CACHE_SIZE = 1024

#: Default age after which a pending claim may be reclaimed even if its
#: owner pid still exists (a wedged owner; generous next to any sane
#: request deadline).
DEFAULT_CLAIM_TTL = 120.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS fleet_requests (
    boot        TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    state       INTEGER NOT NULL,
    owner       INTEGER NOT NULL,
    created     REAL NOT NULL,
    result      TEXT,
    PRIMARY KEY (boot, fingerprint)
) WITHOUT ROWID;
"""


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


class FleetCoalescer:
    """The shared pending/result table, one connection per process.

    Thread-safe (one lock around the connection); every operation is a
    single small transaction, so routers and supervisors on different
    processes can share one table file.

    ``boot`` namespaces this fleet generation's rows (see the module
    docstring); ``claim_ttl`` bounds how long a pending claim is
    honoured before followers may steal it (``0`` disables the age
    check; owner-death reclamation always applies).
    """

    def __init__(
        self,
        path: str,
        *,
        owner: int,
        boot: str = "",
        cache_size: int = DEFAULT_CACHE_SIZE,
        claim_ttl: float = DEFAULT_CLAIM_TTL,
    ):
        if cache_size < 0:
            raise ReproError("the coalescer cache size cannot be negative")
        if claim_ttl < 0:
            raise ReproError("the coalescer claim TTL cannot be negative")
        self._path = path
        self._owner = owner
        self._boot = boot
        self._cache_size = cache_size
        self._claim_ttl = claim_ttl
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            path, timeout=5.0, isolation_level=None, check_same_thread=False
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=OFF")
        self._connection.execute(_SCHEMA)
        # The pre-boot-id table, if this path was written by an older
        # build: coordination rows are ephemeral, drop them outright.
        self._connection.execute("DROP TABLE IF EXISTS pending_requests")
        self._purge_dead_boots()
        self._claims = 0
        self._coalesced = 0
        self._cache_hits = 0
        self._published = 0
        self._abandoned = 0
        self._reclaimed = 0
        self._forgotten = 0

    def _purge_dead_boots(self) -> None:
        """Drop rows left by process generations that no longer run.

        A row belongs to a dead generation when its boot id differs from
        ours and its owner pid is gone.  Live foreign boots (two fleets
        deliberately sharing one table file) are left untouched.
        """
        owners = [
            row[0]
            for row in self._connection.execute(
                "SELECT DISTINCT owner FROM fleet_requests WHERE boot != ?",
                (self._boot,),
            )
        ]
        dead = [pid for pid in owners if not _pid_alive(pid)]
        for pid in dead:
            self._connection.execute(
                "DELETE FROM fleet_requests WHERE boot != ? AND owner = ?",
                (self._boot, pid),
            )

    # -- the request path --------------------------------------------------------
    def claim(self, fingerprint: str) -> Optional[str]:
        """Try to own the computation of one fingerprint.

        Returns ``None`` when this caller became the owner (it must later
        :meth:`publish` or :meth:`abandon`), the cached result text when
        the fingerprint is already answered, and ``""`` when another
        owner is still computing (subscribe and wait).

        A pending row whose owner is dead, or older than the claim TTL,
        is *reclaimed*: the caller becomes the new owner (return
        ``None``) instead of subscribing to a result that will never be
        published.
        """
        now = time.time()
        with self._lock:
            cursor = self._connection.execute(
                "INSERT INTO fleet_requests (boot, fingerprint, state, owner, created) "
                "VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT (boot, fingerprint) DO NOTHING",
                (self._boot, fingerprint, PENDING, self._owner, now),
            )
            if cursor.rowcount:
                self._claims += 1
                return None
            row = self._connection.execute(
                "SELECT state, owner, created, result FROM fleet_requests "
                "WHERE boot = ? AND fingerprint = ?",
                (self._boot, fingerprint),
            ).fetchone()
            if row is None:  # the owner abandoned between our two statements
                self._claims += 1
                self._connection.execute(
                    "INSERT OR REPLACE INTO fleet_requests "
                    "(boot, fingerprint, state, owner, created) VALUES (?, ?, ?, ?, ?)",
                    (self._boot, fingerprint, PENDING, self._owner, now),
                )
                return None
            state, row_owner, created, result = row
            if state == DONE and result is not None:
                self._cache_hits += 1
                return result
            stale = (
                row_owner != self._owner and not _pid_alive(row_owner)
            ) or (self._claim_ttl and now - created > self._claim_ttl)
            if stale:
                # Guarded update: only steal the exact row we inspected,
                # so two concurrent reclaimers cannot both win.
                cursor = self._connection.execute(
                    "UPDATE fleet_requests SET owner = ?, created = ? "
                    "WHERE boot = ? AND fingerprint = ? AND state = ? AND owner = ?",
                    (self._owner, now, self._boot, fingerprint, PENDING, row_owner),
                )
                if cursor.rowcount:
                    self._claims += 1
                    self._reclaimed += 1
                    return None
            self._coalesced += 1
            return ""

    def publish(self, fingerprint: str, result: str) -> None:
        """Record the owner's completed result (and prune the cache)."""
        with self._lock:
            self._connection.execute(
                "UPDATE fleet_requests SET state = ?, result = ?, created = ? "
                "WHERE boot = ? AND fingerprint = ?",
                (DONE, result, time.time(), self._boot, fingerprint),
            )
            self._published += 1
            if self._cache_size:
                self._connection.execute(
                    "DELETE FROM fleet_requests WHERE boot = ? AND state = ? "
                    "AND fingerprint NOT IN "
                    "(SELECT fingerprint FROM fleet_requests "
                    " WHERE boot = ? AND state = ? "
                    " ORDER BY created DESC LIMIT ?)",
                    (self._boot, DONE, self._boot, DONE, self._cache_size),
                )
            else:
                self._connection.execute(
                    "DELETE FROM fleet_requests WHERE boot = ? AND fingerprint = ?",
                    (self._boot, fingerprint),
                )

    def abandon(self, fingerprint: str) -> None:
        """Drop a pending claim (failed/shed/crashed computation)."""
        with self._lock:
            self._connection.execute(
                "DELETE FROM fleet_requests WHERE boot = ? AND fingerprint = ?",
                (self._boot, fingerprint),
            )
            self._abandoned += 1

    def lookup(self, fingerprint: str) -> Optional[str]:
        """The published result for a fingerprint, if any (no counters)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT result FROM fleet_requests "
                "WHERE boot = ? AND fingerprint = ? AND state = ?",
                (self._boot, fingerprint, DONE),
            ).fetchone()
        return row[0] if row is not None else None

    def forget(self, fingerprint: str) -> int:
        """Remove a fingerprint outright (cache invalidation).

        This is how the fleet router drops ``live-audit`` answers made
        stale by an ``apply-delta`` on their live session: the cached
        verdict describes a database that no longer exists, so the row
        is deleted fleet-wide regardless of state.  Returns the number
        of rows removed (0 or 1).
        """
        with self._lock:
            cursor = self._connection.execute(
                "DELETE FROM fleet_requests WHERE boot = ? AND fingerprint = ?",
                (self._boot, fingerprint),
            )
            self._forgotten += cursor.rowcount
            return cursor.rowcount

    def release_owner(self, owner: int) -> int:
        """Abandon every pending claim of one owner (crash cleanup)."""
        with self._lock:
            cursor = self._connection.execute(
                "DELETE FROM fleet_requests WHERE boot = ? AND state = ? AND owner = ?",
                (self._boot, PENDING, owner),
            )
            self._abandoned += cursor.rowcount
            return cursor.rowcount

    # -- bookkeeping -------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters plus the live table shape, as plain JSON."""
        with self._lock:
            pending, done = 0, 0
            for state, count in self._connection.execute(
                "SELECT state, COUNT(*) FROM fleet_requests WHERE boot = ? "
                "GROUP BY state",
                (self._boot,),
            ):
                if state == PENDING:
                    pending = count
                else:
                    done = count
            return {
                "path": self._path,
                "boot": self._boot,
                "pending": pending,
                "cached_results": done,
                "cache_size": self._cache_size,
                "claim_ttl": self._claim_ttl,
                "claims": self._claims,
                "coalesced": self._coalesced,
                "cache_hits": self._cache_hits,
                "published": self._published,
                "abandoned": self._abandoned,
                "reclaimed": self._reclaimed,
                "forgotten": self._forgotten,
            }

    def close(self) -> None:
        """Close the connection (safe to call twice)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None  # type: ignore[assignment]

    def __enter__(self) -> "FleetCoalescer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
