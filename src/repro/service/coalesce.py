"""The fleet-wide pending-request table (sqlite, WAL).

One row per request fingerprint, shared by every process that can reach
the table file, so a burst of N identical requests costs one computation
*across the whole fleet* no matter which connections they arrive on:

* the first arrival :meth:`~FleetCoalescer.claim`\\ s the fingerprint and
  owns the computation;
* concurrent twins see the ``pending`` row and subscribe to the owner's
  result (in-process via a future, cross-process by polling the row);
* once the owner :meth:`~FleetCoalescer.publish`\\ es, the row carries the
  response and doubles as the fleet's shared result cache (bounded,
  oldest-first eviction);
* a failed or shed computation is :meth:`~FleetCoalescer.abandon`\\ ed so
  the next identical request recomputes instead of inheriting the error.

The table is deliberately stdlib-only (``sqlite3`` in WAL mode with
``synchronous=OFF`` — it is an ephemeral coordination structure, not
durable state) and keyed by the hex digest of
:func:`repro.service.protocol.request_key`, never by raw payloads.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Any, Dict, Optional

from ..exceptions import ReproError

__all__ = ["FleetCoalescer", "PENDING", "DONE"]

#: ``state`` values of one row.
PENDING = 0
DONE = 1

#: Default bound on completed results kept in the table.
DEFAULT_CACHE_SIZE = 1024

_SCHEMA = """
CREATE TABLE IF NOT EXISTS pending_requests (
    fingerprint TEXT PRIMARY KEY,
    state       INTEGER NOT NULL,
    owner       INTEGER NOT NULL,
    created     REAL NOT NULL,
    result      TEXT
) WITHOUT ROWID;
"""


class FleetCoalescer:
    """The shared pending/result table, one connection per process.

    Thread-safe (one lock around the connection); every operation is a
    single small transaction, so routers and supervisors on different
    processes can share one table file.
    """

    def __init__(self, path: str, *, owner: int, cache_size: int = DEFAULT_CACHE_SIZE):
        if cache_size < 0:
            raise ReproError("the coalescer cache size cannot be negative")
        self._path = path
        self._owner = owner
        self._cache_size = cache_size
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            path, timeout=5.0, isolation_level=None, check_same_thread=False
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=OFF")
        self._connection.execute(_SCHEMA)
        self._claims = 0
        self._coalesced = 0
        self._cache_hits = 0
        self._published = 0
        self._abandoned = 0

    # -- the request path --------------------------------------------------------
    def claim(self, fingerprint: str) -> Optional[str]:
        """Try to own the computation of one fingerprint.

        Returns ``None`` when this caller became the owner (it must later
        :meth:`publish` or :meth:`abandon`), the cached result text when
        the fingerprint is already answered, and ``""`` when another
        owner is still computing (subscribe and wait).
        """
        now = time.time()
        with self._lock:
            cursor = self._connection.execute(
                "INSERT INTO pending_requests (fingerprint, state, owner, created) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT (fingerprint) DO NOTHING",
                (fingerprint, PENDING, self._owner, now),
            )
            if cursor.rowcount:
                self._claims += 1
                return None
            row = self._connection.execute(
                "SELECT state, result FROM pending_requests WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is None:  # the owner abandoned between our two statements
                self._claims += 1
                self._connection.execute(
                    "INSERT OR REPLACE INTO pending_requests "
                    "(fingerprint, state, owner, created) VALUES (?, ?, ?, ?)",
                    (fingerprint, PENDING, self._owner, now),
                )
                return None
            state, result = row
            if state == DONE and result is not None:
                self._cache_hits += 1
                return result
            self._coalesced += 1
            return ""

    def publish(self, fingerprint: str, result: str) -> None:
        """Record the owner's completed result (and prune the cache)."""
        with self._lock:
            self._connection.execute(
                "UPDATE pending_requests SET state = ?, result = ?, created = ? "
                "WHERE fingerprint = ?",
                (DONE, result, time.time(), fingerprint),
            )
            self._published += 1
            if self._cache_size:
                self._connection.execute(
                    "DELETE FROM pending_requests WHERE state = ? AND fingerprint NOT IN "
                    "(SELECT fingerprint FROM pending_requests WHERE state = ? "
                    " ORDER BY created DESC LIMIT ?)",
                    (DONE, DONE, self._cache_size),
                )
            else:
                self._connection.execute(
                    "DELETE FROM pending_requests WHERE fingerprint = ?", (fingerprint,)
                )

    def abandon(self, fingerprint: str) -> None:
        """Drop a pending claim (failed/shed/crashed computation)."""
        with self._lock:
            self._connection.execute(
                "DELETE FROM pending_requests WHERE fingerprint = ?", (fingerprint,)
            )
            self._abandoned += 1

    def lookup(self, fingerprint: str) -> Optional[str]:
        """The published result for a fingerprint, if any (no counters)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT result FROM pending_requests WHERE fingerprint = ? AND state = ?",
                (fingerprint, DONE),
            ).fetchone()
        return row[0] if row is not None else None

    def forget(self, fingerprint: str) -> None:
        """Remove a fingerprint outright (cache invalidation)."""
        with self._lock:
            self._connection.execute(
                "DELETE FROM pending_requests WHERE fingerprint = ?", (fingerprint,)
            )

    def release_owner(self, owner: int) -> int:
        """Abandon every pending claim of one owner (crash cleanup)."""
        with self._lock:
            cursor = self._connection.execute(
                "DELETE FROM pending_requests WHERE state = ? AND owner = ?",
                (PENDING, owner),
            )
            self._abandoned += cursor.rowcount
            return cursor.rowcount

    # -- bookkeeping -------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters plus the live table shape, as plain JSON."""
        with self._lock:
            pending, done = 0, 0
            for state, count in self._connection.execute(
                "SELECT state, COUNT(*) FROM pending_requests GROUP BY state"
            ):
                if state == PENDING:
                    pending = count
                else:
                    done = count
            return {
                "path": self._path,
                "pending": pending,
                "cached_results": done,
                "cache_size": self._cache_size,
                "claims": self._claims,
                "coalesced": self._coalesced,
                "cache_hits": self._cache_hits,
                "published": self._published,
                "abandoned": self._abandoned,
            }

    def close(self) -> None:
        """Close the connection (safe to call twice)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None  # type: ignore[assignment]

    def __enter__(self) -> "FleetCoalescer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
