"""Per-shard health tracking for the fleet router.

A stdlib circuit breaker with a three-rung degradation ladder:

``healthy``
    The shard serves its rendezvous-assigned fingerprints normally.

``degraded``
    ``degrade_after`` consecutive transport failures.  The shard still
    receives traffic (a single crash-restart cycle should not shuffle
    the fingerprint space and cold-start every cache), but the state is
    surfaced in ``stats`` so operators see the first rung.

``quarantined``
    ``quarantine_after`` consecutive failures open the breaker: the
    router reroutes the shard's fingerprints to the next shard in
    rendezvous order.  After ``cooldown_seconds`` the breaker turns
    ``half-open`` and admits exactly one probe request; a success
    closes the breaker (back to ``healthy``), a failure re-opens it
    for another cooldown.

Failures are *transport-level* signals — a crashed worker, a refused
or wedged connection.  Structured analysis errors and deadline
expiries are the worker answering correctly and never trip the
breaker.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict

from ..exceptions import ReproError

__all__ = ["CircuitBreaker"]

STATE_HEALTHY = "healthy"
STATE_DEGRADED = "degraded"
STATE_QUARANTINED = "quarantined"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Thread-safe; the ``clock`` parameter (default
    :func:`time.monotonic`) is injectable so tests can drive the
    cooldown without sleeping.
    """

    def __init__(
        self,
        *,
        degrade_after: int = 1,
        quarantine_after: int = 3,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if degrade_after < 1 or quarantine_after < degrade_after:
            raise ReproError(
                "need 1 <= degrade_after <= quarantine_after "
                f"(got {degrade_after}, {quarantine_after})"
            )
        if cooldown_seconds <= 0:
            raise ReproError("cooldown_seconds must be positive")
        self._degrade_after = degrade_after
        self._quarantine_after = quarantine_after
        self._cooldown = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0  # consecutive
        self._opened_at: float = 0.0
        self._open = False
        self._probing = False
        self._stats = {"failures": 0, "successes": 0, "opened": 0, "probes": 0}

    # -- signal feeds -------------------------------------------------
    def record_success(self) -> None:
        """A request completed over transport (even with an error body)."""
        with self._lock:
            self._stats["successes"] += 1
            self._failures = 0
            self._open = False
            self._probing = False

    def record_failure(self) -> None:
        """A transport-level failure (crash, refused/wedged connection)."""
        with self._lock:
            self._stats["failures"] += 1
            self._failures += 1
            if self._probing:
                # The half-open probe failed: re-open for a fresh cooldown.
                self._probing = False
                self._open = True
                self._opened_at = self._clock()
                self._stats["opened"] += 1
            elif not self._open and self._failures >= self._quarantine_after:
                self._open = True
                self._opened_at = self._clock()
                self._stats["opened"] += 1

    # -- routing decisions --------------------------------------------
    def allows(self) -> bool:
        """May the router send this shard a request right now?

        Closed (healthy/degraded) breakers always allow.  Open breakers
        reject until the cooldown elapses, then admit exactly one probe
        at a time (half-open); further calls reject until that probe is
        resolved by :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            if not self._open:
                return True
            if self._probing:
                return False
            if self._clock() - self._opened_at >= self._cooldown:
                self._probing = True
                self._stats["probes"] += 1
                return True
            return False

    @property
    def state(self) -> str:
        with self._lock:
            if self._open:
                if self._probing or self._clock() - self._opened_at >= self._cooldown:
                    return STATE_HALF_OPEN
                return STATE_QUARANTINED
            if self._failures >= self._degrade_after:
                return STATE_DEGRADED
            return STATE_HEALTHY

    def stats(self) -> Dict[str, Any]:
        state = self.state
        with self._lock:
            return {
                "state": state,
                "consecutive_failures": self._failures,
                **self._stats,
            }
