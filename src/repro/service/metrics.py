"""Operational metrics of the audit service.

The server records one observation per handled request:

* ``computed`` — the request ran an analysis on the worker pool;
* ``coalesced`` — the request awaited an identical in-flight computation;
* ``cached`` — the request was answered from the server's result cache;
* ``error`` — the request failed (malformed, analysis error, internal);
* ``shed`` — the request was rejected because the worker queue was full;
* ``deadline`` — the request's ``deadline_ms`` budget expired before an
  answer was ready (the computation was abandoned or never started).

Latencies are kept per operation in a bounded ring (the most recent
:data:`LATENCY_WINDOW` observations) from which the ``stats`` operation
derives p50/p95/p99.  Everything is guarded by one lock: observations
come from the event loop *and* from worker threads.

Fleet aggregation
-----------------
A multi-worker fleet holds one :class:`ServiceMetrics` per worker
process plus one in the router, so the ``stats`` operation needs a
*mergeable* form: :meth:`ServiceMetrics.mergeable_snapshot` exports the
raw counters and the latency reservoir itself (not derived percentiles),
and :func:`merge_snapshots` combines any number of those into one
document shaped exactly like :meth:`ServiceMetrics.snapshot`.  Because
the reservoirs travel whole, the merged p50/p95/p99 are computed over
the union of the samples — identical to what a single combined stream
would report (up to each ring's :data:`LATENCY_WINDOW` truncation) —
instead of averaging per-worker percentiles, which has no fidelity
guarantee.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "ServiceMetrics",
    "LATENCY_WINDOW",
    "HISTOGRAM_BUCKETS_MS",
    "percentile",
    "merge_snapshots",
]

#: Number of recent latency samples kept per operation.
LATENCY_WINDOW = 4096

#: Observation outcomes (see module docstring).
OUTCOMES = ("computed", "coalesced", "cached", "error", "shed", "deadline")

#: Upper bounds (milliseconds) of the cumulative latency histogram.  The
#: windowed percentile ring forgets old observations; these counters are
#: *cumulative over the process lifetime*, which is what Prometheus-style
#: exposition requires (a scraper computes rates from monotone counters).
HISTOGRAM_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    ``samples`` must be sorted ascending and non-empty.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(samples) == 1:
        return samples[0]
    position = (len(samples) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(samples) - 1)
    weight = position - lower
    return samples[lower] * (1 - weight) + samples[upper] * weight


class _OpMetrics:
    """Counters, a latency ring, and a cumulative histogram for one operation."""

    __slots__ = ("counts", "latencies", "bucket_counts", "latency_sum", "latency_count")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        self.latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        #: Per-bucket (non-cumulative) counts; the final slot is overflow.
        self.bucket_counts: List[int] = [0] * (len(HISTOGRAM_BUCKETS_MS) + 1)
        self.latency_sum = 0.0
        self.latency_count = 0

    def observe_latency(self, elapsed_ms: float) -> None:
        self.latencies.append(elapsed_ms)
        self.bucket_counts[bisect_left(HISTOGRAM_BUCKETS_MS, elapsed_ms)] += 1
        self.latency_sum += elapsed_ms
        self.latency_count += 1


def _histogram_doc(
    bucket_counts: List[int], latency_sum: float, latency_count: int
) -> Dict[str, object]:
    """Render raw per-bucket counts as the exposed cumulative form."""
    cumulative: Dict[str, int] = {}
    running = 0
    for bound, count in zip(HISTOGRAM_BUCKETS_MS, bucket_counts):
        running += count
        label = str(int(bound)) if float(bound).is_integer() else str(bound)
        cumulative[label] = running
    return {
        "buckets_ms": cumulative,
        "sum_ms": round(latency_sum, 3),
        "count": latency_count,
    }


def _latency_doc(ordered: List[float]) -> Dict[str, object]:
    """The derived latency block of one sorted, non-empty sample list."""
    return {
        "count": len(ordered),
        "mean": round(sum(ordered) / len(ordered), 3),
        "p50": round(percentile(ordered, 50), 3),
        "p95": round(percentile(ordered, 95), 3),
        "p99": round(percentile(ordered, 99), 3),
        "max": round(ordered[-1], 3),
    }


class ServiceMetrics:
    """Thread-safe counters + latency percentiles, snapshot as plain JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._ops: Dict[str, _OpMetrics] = {}

    def observe(
        self, op: str, outcome: str, elapsed_seconds: Optional[float] = None
    ) -> None:
        """Record one handled request."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}; expected one of {OUTCOMES}")
        with self._lock:
            entry = self._ops.get(op)
            if entry is None:
                entry = self._ops[op] = _OpMetrics()
            entry.counts[outcome] += 1
            if elapsed_seconds is not None:
                entry.observe_latency(elapsed_seconds * 1000.0)

    # -- reading -----------------------------------------------------------------
    def total(self, outcome: str) -> int:
        """Sum of one outcome counter across operations."""
        with self._lock:
            return sum(entry.counts.get(outcome, 0) for entry in self._ops.values())

    def snapshot(self) -> Dict[str, object]:
        """The metrics as one JSON-serialisable document.

        ``totals.duplicate_hits`` = coalesced + result-cache hits: the
        number of requests that never reached the worker pool because an
        identical question was in flight or already answered.
        """
        with self._lock:
            operations: Dict[str, object] = {}
            totals = {outcome: 0 for outcome in OUTCOMES}
            for op, entry in sorted(self._ops.items()):
                for outcome, count in entry.counts.items():
                    totals[outcome] += count
                requests = sum(entry.counts.values())
                op_doc: Dict[str, object] = {"requests": requests, **entry.counts}
                if entry.latencies:
                    op_doc["latency_ms"] = _latency_doc(sorted(entry.latencies))
                if entry.latency_count:
                    op_doc["histogram"] = _histogram_doc(
                        entry.bucket_counts, entry.latency_sum, entry.latency_count
                    )
                operations[op] = op_doc
            requests = sum(totals.values())
            duplicates = totals["coalesced"] + totals["cached"]
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "totals": {
                    "requests": requests,
                    **totals,
                    "duplicate_hits": duplicates,
                    "coalescing_hit_rate": (
                        totals["coalesced"] / requests if requests else 0.0
                    ),
                    "duplicate_hit_rate": duplicates / requests if requests else 0.0,
                },
                "operations": operations,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        totals = self.snapshot()["totals"]
        return f"ServiceMetrics(requests={totals['requests']}, duplicates={totals['duplicate_hits']})"

    def mergeable_snapshot(self) -> Dict[str, Any]:
        """The raw, lossless form :func:`merge_snapshots` combines.

        Unlike :meth:`snapshot`, latency reservoirs are exported as the
        sample lists themselves so the fleet can derive percentiles over
        the *union* of the workers' observations::

            {"started": <epoch>,
             "operations": {op: {"counts": {...}, "latencies_ms": [...],
                                 "histogram": {"buckets": [...], "sum_ms": ..., "count": ...}}}}

        The histogram travels as the raw per-bucket count list (final
        slot = overflow) so merging is element-wise addition.
        """
        with self._lock:
            return {
                "started": self._started,
                "operations": {
                    op: {
                        "counts": dict(entry.counts),
                        "latencies_ms": [round(v, 6) for v in entry.latencies],
                        "histogram": {
                            "buckets": list(entry.bucket_counts),
                            "sum_ms": round(entry.latency_sum, 6),
                            "count": entry.latency_count,
                        },
                    }
                    for op, entry in self._ops.items()
                },
            }


def merge_snapshots(parts: Iterable[Any]) -> Dict[str, object]:
    """Combine mergeable snapshots into one :meth:`ServiceMetrics.snapshot` doc.

    Counters are summed and latency reservoirs concatenated, so the
    merged p50/p95/p99 equal those of a single stream that had seen every
    observation (each source ring is still bounded by
    :data:`LATENCY_WINDOW`, so extremely long-lived fleets merge the most
    recent window of each worker).  ``uptime_seconds`` is measured from
    the earliest ``started`` stamp.

    A shard that dies between stats polls contributes a malformed part
    (``None``, an exception's string form, an empty doc): such parts are
    skipped and the merged document carries ``partial: true`` instead of
    the merge raising fleet-wide.
    """
    started: Optional[float] = None
    counts: Dict[str, Dict[str, int]] = {}
    samples: Dict[str, List[float]] = {}
    buckets: Dict[str, List[int]] = {}
    sums: Dict[str, float] = {}
    hist_counts: Dict[str, int] = {}
    partial = False
    for part in parts:
        if not isinstance(part, Mapping):
            partial = True
            continue
        part_started = part.get("started")
        if isinstance(part_started, (int, float)):
            started = part_started if started is None else min(started, part_started)
        operations = part.get("operations")
        if not isinstance(operations, Mapping):
            if operations is not None:
                partial = True
            continue
        for op, entry in operations.items():
            if not isinstance(entry, Mapping):
                partial = True
                continue
            merged = counts.setdefault(op, {outcome: 0 for outcome in OUTCOMES})
            part_counts = entry.get("counts")
            if isinstance(part_counts, Mapping):
                for outcome, count in part_counts.items():
                    if outcome in merged and isinstance(count, int):
                        merged[outcome] += count
            latencies = entry.get("latencies_ms") or []
            samples.setdefault(op, []).extend(
                float(v) for v in latencies if isinstance(v, (int, float))
            )
            histogram = entry.get("histogram")
            if isinstance(histogram, Mapping):
                part_buckets = histogram.get("buckets")
                if (
                    isinstance(part_buckets, list)
                    and len(part_buckets) == len(HISTOGRAM_BUCKETS_MS) + 1
                ):
                    merged_buckets = buckets.setdefault(
                        op, [0] * (len(HISTOGRAM_BUCKETS_MS) + 1)
                    )
                    for index, count in enumerate(part_buckets):
                        if isinstance(count, int):
                            merged_buckets[index] += count
                sum_ms = histogram.get("sum_ms")
                if isinstance(sum_ms, (int, float)):
                    sums[op] = sums.get(op, 0.0) + float(sum_ms)
                count = histogram.get("count")
                if isinstance(count, int):
                    hist_counts[op] = hist_counts.get(op, 0) + count

    operations_doc: Dict[str, object] = {}
    totals = {outcome: 0 for outcome in OUTCOMES}
    for op in sorted(counts):
        op_counts = counts[op]
        for outcome, count in op_counts.items():
            totals[outcome] += count
        op_doc: Dict[str, object] = {"requests": sum(op_counts.values()), **op_counts}
        if samples.get(op):
            op_doc["latency_ms"] = _latency_doc(sorted(samples[op]))
        if hist_counts.get(op):
            op_doc["histogram"] = _histogram_doc(
                buckets.get(op, [0] * (len(HISTOGRAM_BUCKETS_MS) + 1)),
                sums.get(op, 0.0),
                hist_counts[op],
            )
        operations_doc[op] = op_doc
    requests = sum(totals.values())
    duplicates = totals["coalesced"] + totals["cached"]
    merged_doc: Dict[str, object] = {
        "uptime_seconds": round(time.time() - started, 3) if started is not None else 0.0,
        "totals": {
            "requests": requests,
            **totals,
            "duplicate_hits": duplicates,
            "coalescing_hit_rate": totals["coalesced"] / requests if requests else 0.0,
            "duplicate_hit_rate": duplicates / requests if requests else 0.0,
        },
        "operations": operations_doc,
    }
    if partial:
        merged_doc["partial"] = True
    return merged_doc
