"""Operational metrics of the audit service.

The server records one observation per handled request:

* ``computed`` — the request ran an analysis on the worker pool;
* ``coalesced`` — the request awaited an identical in-flight computation;
* ``cached`` — the request was answered from the server's result cache;
* ``error`` — the request failed (malformed, analysis error, internal);
* ``shed`` — the request was rejected because the worker queue was full;
* ``deadline`` — the request's ``deadline_ms`` budget expired before an
  answer was ready (the computation was abandoned or never started).

Latencies are kept per operation in a bounded ring (the most recent
:data:`LATENCY_WINDOW` observations) from which the ``stats`` operation
derives p50/p95/p99.  Everything is guarded by one lock: observations
come from the event loop *and* from worker threads.

Fleet aggregation
-----------------
A multi-worker fleet holds one :class:`ServiceMetrics` per worker
process plus one in the router, so the ``stats`` operation needs a
*mergeable* form: :meth:`ServiceMetrics.mergeable_snapshot` exports the
raw counters and the latency reservoir itself (not derived percentiles),
and :func:`merge_snapshots` combines any number of those into one
document shaped exactly like :meth:`ServiceMetrics.snapshot`.  Because
the reservoirs travel whole, the merged p50/p95/p99 are computed over
the union of the samples — identical to what a single combined stream
would report (up to each ring's :data:`LATENCY_WINDOW` truncation) —
instead of averaging per-worker percentiles, which has no fidelity
guarantee.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "ServiceMetrics",
    "LATENCY_WINDOW",
    "percentile",
    "merge_snapshots",
]

#: Number of recent latency samples kept per operation.
LATENCY_WINDOW = 4096

#: Observation outcomes (see module docstring).
OUTCOMES = ("computed", "coalesced", "cached", "error", "shed", "deadline")


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    ``samples`` must be sorted ascending and non-empty.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(samples) == 1:
        return samples[0]
    position = (len(samples) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(samples) - 1)
    weight = position - lower
    return samples[lower] * (1 - weight) + samples[upper] * weight


class _OpMetrics:
    """Counters and a latency ring for one operation."""

    __slots__ = ("counts", "latencies")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        self.latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)


def _latency_doc(ordered: List[float]) -> Dict[str, object]:
    """The derived latency block of one sorted, non-empty sample list."""
    return {
        "count": len(ordered),
        "mean": round(sum(ordered) / len(ordered), 3),
        "p50": round(percentile(ordered, 50), 3),
        "p95": round(percentile(ordered, 95), 3),
        "p99": round(percentile(ordered, 99), 3),
        "max": round(ordered[-1], 3),
    }


class ServiceMetrics:
    """Thread-safe counters + latency percentiles, snapshot as plain JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._ops: Dict[str, _OpMetrics] = {}

    def observe(
        self, op: str, outcome: str, elapsed_seconds: Optional[float] = None
    ) -> None:
        """Record one handled request."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}; expected one of {OUTCOMES}")
        with self._lock:
            entry = self._ops.get(op)
            if entry is None:
                entry = self._ops[op] = _OpMetrics()
            entry.counts[outcome] += 1
            if elapsed_seconds is not None:
                entry.latencies.append(elapsed_seconds * 1000.0)

    # -- reading -----------------------------------------------------------------
    def total(self, outcome: str) -> int:
        """Sum of one outcome counter across operations."""
        with self._lock:
            return sum(entry.counts.get(outcome, 0) for entry in self._ops.values())

    def snapshot(self) -> Dict[str, object]:
        """The metrics as one JSON-serialisable document.

        ``totals.duplicate_hits`` = coalesced + result-cache hits: the
        number of requests that never reached the worker pool because an
        identical question was in flight or already answered.
        """
        with self._lock:
            operations: Dict[str, object] = {}
            totals = {outcome: 0 for outcome in OUTCOMES}
            for op, entry in sorted(self._ops.items()):
                for outcome, count in entry.counts.items():
                    totals[outcome] += count
                requests = sum(entry.counts.values())
                op_doc: Dict[str, object] = {"requests": requests, **entry.counts}
                if entry.latencies:
                    op_doc["latency_ms"] = _latency_doc(sorted(entry.latencies))
                operations[op] = op_doc
            requests = sum(totals.values())
            duplicates = totals["coalesced"] + totals["cached"]
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "totals": {
                    "requests": requests,
                    **totals,
                    "duplicate_hits": duplicates,
                    "coalescing_hit_rate": (
                        totals["coalesced"] / requests if requests else 0.0
                    ),
                    "duplicate_hit_rate": duplicates / requests if requests else 0.0,
                },
                "operations": operations,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        totals = self.snapshot()["totals"]
        return f"ServiceMetrics(requests={totals['requests']}, duplicates={totals['duplicate_hits']})"

    def mergeable_snapshot(self) -> Dict[str, Any]:
        """The raw, lossless form :func:`merge_snapshots` combines.

        Unlike :meth:`snapshot`, latency reservoirs are exported as the
        sample lists themselves so the fleet can derive percentiles over
        the *union* of the workers' observations::

            {"started": <epoch>,
             "operations": {op: {"counts": {...}, "latencies_ms": [...]}}}
        """
        with self._lock:
            return {
                "started": self._started,
                "operations": {
                    op: {
                        "counts": dict(entry.counts),
                        "latencies_ms": [round(v, 6) for v in entry.latencies],
                    }
                    for op, entry in self._ops.items()
                },
            }


def merge_snapshots(parts: Iterable[Mapping[str, Any]]) -> Dict[str, object]:
    """Combine mergeable snapshots into one :meth:`ServiceMetrics.snapshot` doc.

    Counters are summed and latency reservoirs concatenated, so the
    merged p50/p95/p99 equal those of a single stream that had seen every
    observation (each source ring is still bounded by
    :data:`LATENCY_WINDOW`, so extremely long-lived fleets merge the most
    recent window of each worker).  ``uptime_seconds`` is measured from
    the earliest ``started`` stamp.
    """
    started: Optional[float] = None
    counts: Dict[str, Dict[str, int]] = {}
    samples: Dict[str, List[float]] = {}
    for part in parts:
        part_started = part.get("started")
        if isinstance(part_started, (int, float)):
            started = part_started if started is None else min(started, part_started)
        operations = part.get("operations")
        if not isinstance(operations, Mapping):
            continue
        for op, entry in operations.items():
            merged = counts.setdefault(op, {outcome: 0 for outcome in OUTCOMES})
            for outcome, count in (entry.get("counts") or {}).items():
                if outcome in merged and isinstance(count, int):
                    merged[outcome] += count
            latencies = entry.get("latencies_ms") or []
            samples.setdefault(op, []).extend(float(v) for v in latencies)

    operations_doc: Dict[str, object] = {}
    totals = {outcome: 0 for outcome in OUTCOMES}
    for op in sorted(counts):
        op_counts = counts[op]
        for outcome, count in op_counts.items():
            totals[outcome] += count
        op_doc: Dict[str, object] = {"requests": sum(op_counts.values()), **op_counts}
        if samples.get(op):
            op_doc["latency_ms"] = _latency_doc(sorted(samples[op]))
        operations_doc[op] = op_doc
    requests = sum(totals.values())
    duplicates = totals["coalesced"] + totals["cached"]
    return {
        "uptime_seconds": round(time.time() - started, 3) if started is not None else 0.0,
        "totals": {
            "requests": requests,
            **totals,
            "duplicate_hits": duplicates,
            "coalescing_hit_rate": totals["coalesced"] / requests if requests else 0.0,
            "duplicate_hit_rate": duplicates / requests if requests else 0.0,
        },
        "operations": operations_doc,
    }
