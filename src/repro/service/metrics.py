"""Operational metrics of the audit service.

The server records one observation per handled request:

* ``computed`` — the request ran an analysis on the worker pool;
* ``coalesced`` — the request awaited an identical in-flight computation;
* ``cached`` — the request was answered from the server's result cache;
* ``error`` — the request failed (malformed, analysis error, internal);
* ``shed`` — the request was rejected because the worker queue was full.

Latencies are kept per operation in a bounded ring (the most recent
:data:`LATENCY_WINDOW` observations) from which the ``stats`` operation
derives p50/p95/p99.  Everything is guarded by one lock: observations
come from the event loop *and* from worker threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["ServiceMetrics", "LATENCY_WINDOW", "percentile"]

#: Number of recent latency samples kept per operation.
LATENCY_WINDOW = 4096

#: Observation outcomes (see module docstring).
OUTCOMES = ("computed", "coalesced", "cached", "error", "shed")


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    ``samples`` must be sorted ascending and non-empty.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(samples) == 1:
        return samples[0]
    position = (len(samples) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(samples) - 1)
    weight = position - lower
    return samples[lower] * (1 - weight) + samples[upper] * weight


class _OpMetrics:
    """Counters and a latency ring for one operation."""

    __slots__ = ("counts", "latencies")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
        self.latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)


class ServiceMetrics:
    """Thread-safe counters + latency percentiles, snapshot as plain JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._ops: Dict[str, _OpMetrics] = {}

    def observe(
        self, op: str, outcome: str, elapsed_seconds: Optional[float] = None
    ) -> None:
        """Record one handled request."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}; expected one of {OUTCOMES}")
        with self._lock:
            entry = self._ops.get(op)
            if entry is None:
                entry = self._ops[op] = _OpMetrics()
            entry.counts[outcome] += 1
            if elapsed_seconds is not None:
                entry.latencies.append(elapsed_seconds * 1000.0)

    # -- reading -----------------------------------------------------------------
    def total(self, outcome: str) -> int:
        """Sum of one outcome counter across operations."""
        with self._lock:
            return sum(entry.counts.get(outcome, 0) for entry in self._ops.values())

    def snapshot(self) -> Dict[str, object]:
        """The metrics as one JSON-serialisable document.

        ``totals.duplicate_hits`` = coalesced + result-cache hits: the
        number of requests that never reached the worker pool because an
        identical question was in flight or already answered.
        """
        with self._lock:
            operations: Dict[str, object] = {}
            totals = {outcome: 0 for outcome in OUTCOMES}
            for op, entry in sorted(self._ops.items()):
                for outcome, count in entry.counts.items():
                    totals[outcome] += count
                requests = sum(entry.counts.values())
                op_doc: Dict[str, object] = {"requests": requests, **entry.counts}
                if entry.latencies:
                    ordered = sorted(entry.latencies)
                    op_doc["latency_ms"] = {
                        "count": len(ordered),
                        "mean": round(sum(ordered) / len(ordered), 3),
                        "p50": round(percentile(ordered, 50), 3),
                        "p95": round(percentile(ordered, 95), 3),
                        "p99": round(percentile(ordered, 99), 3),
                        "max": round(ordered[-1], 3),
                    }
                operations[op] = op_doc
            requests = sum(totals.values())
            duplicates = totals["coalesced"] + totals["cached"]
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "totals": {
                    "requests": requests,
                    **totals,
                    "duplicate_hits": duplicates,
                    "coalescing_hit_rate": (
                        totals["coalesced"] / requests if requests else 0.0
                    ),
                    "duplicate_hit_rate": duplicates / requests if requests else 0.0,
                },
                "operations": operations,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        totals = self.snapshot()["totals"]
        return f"ServiceMetrics(requests={totals['requests']}, duplicates={totals['duplicate_hits']})"
