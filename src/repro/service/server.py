"""The asyncio disclosure-audit daemon.

Architecture
------------
The event loop owns all bookkeeping — the session pool, the in-flight
table, the result cache and the pending counter — so none of it needs a
lock; only the analyses themselves leave the loop, onto a bounded
:class:`~concurrent.futures.ThreadPoolExecutor`.  Three mechanisms keep
the daemon healthy under heavy, repetitive traffic:

* **Session sharing.**  Requests are fingerprinted on (schema document,
  dictionary spec, verification engine, criticality engine); all
  requests with one fingerprint run on one shared
  :class:`~repro.session.AnalysisSession`, so the critical-tuple cache
  and the per-dictionary probability kernels are reused across clients
  and connections.  The pool is LRU-bounded.

* **Request coalescing.**  Identical requests (same
  :func:`~repro.service.protocol.request_key`) that arrive while the
  first one is still computing *await the same future* instead of
  queueing duplicate work; completed answers additionally populate a
  bounded result cache, so a burst of N duplicates costs one
  computation no matter how the burst interleaves with completions.

* **Load shedding.**  At most ``queue_limit`` analyses may be pending on
  the worker pool; beyond that the server answers immediately with a
  structured ``overloaded`` error instead of letting the queue grow
  without bound.

The worker threads share sessions, which is safe because
:class:`~repro.session.cache.CriticalTupleCache` is thread-safe and
session analyses are otherwise read-only over immutable queries.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import errno
import functools
import hashlib
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from fractions import Fraction
from typing import Any, Awaitable, Dict, Mapping, Optional, Tuple

from ..audit.auditor import SecurityAuditor
from ..exceptions import ReproError
from ..obs import (
    CONTENT_TYPE,
    TRACES,
    SlowLog,
    current_trace,
    record_span,
    render_prometheus,
    slow_log_from_env,
    span,
    start_trace,
    tracing_enabled,
)
from ..obs import install_from_env as install_tracing_from_env
from . import faults
from ..io import dictionary_from_dict, schema_from_dict
from ..session import (
    AnalysisSession,
    LiveAuditSession,
    PublishingPlan,
    fact_from_document,
)
from ..session.results import (
    AnalysisResult,
    CollusionResult,
    DecisionResult,
    KnowledgeResult,
    LeakageAnalysis,
    PlanAuditResult,
    VerificationResult,
)
from .metrics import ServiceMetrics
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    ERROR_ANALYSIS,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    ERROR_PAYLOAD_TOO_LARGE,
    OPERATIONS,
    PROTOCOL_VERSION,
    AuditRequest,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    knowledge_from_dict,
    ok_response,
    parse_request,
    request_key,
    session_key,
)

__all__ = ["AuditServer", "ServerThread", "run_server"]

#: Default bound on concurrently pending analyses (load-shedding threshold).
DEFAULT_QUEUE_LIMIT = 64

#: Default number of shared sessions kept (LRU).
DEFAULT_MAX_SESSIONS = 32

#: Default number of completed request payloads memoized (LRU).
DEFAULT_RESULT_CACHE = 1024

#: Default number of live audit sessions kept (LRU; oldest is dropped).
DEFAULT_MAX_LIVE = 32


def _fraction_fields(value: Optional[Fraction]) -> Dict[str, Any]:
    if value is None:
        return {}
    return {"exact": str(value), "float": float(value)}


def _cache_delta(result: AnalysisResult) -> Dict[str, int]:
    used = result.cache_used
    return {"hits": used.hits, "misses": used.misses, "evictions": used.evictions}


def result_payload(result: AnalysisResult) -> Dict[str, Any]:
    """Serialise a session :class:`AnalysisResult` to plain JSON.

    Every payload carries the unified fields (``kind``, ``verdict``,
    ``explanation``, timing, cache delta); flavours add their own detail
    on top.
    """
    payload: Dict[str, Any] = {
        "kind": result.kind,
        "verdict": result.verdict,
        "conclusive": result.conclusive,
        "explanation": result.explain(),
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "cache_used": _cache_delta(result),
    }
    if isinstance(result, DecisionResult):
        decision = result.decision
        payload["common_critical_count"] = len(decision.common_critical)
        payload["method"] = decision.method
    elif isinstance(result, CollusionResult):
        report = result.report
        payload["recipients"] = list(report.recipients)
        payload["insecure_recipients"] = list(report.insecure_recipients)
        payload["secure_recipients"] = list(report.secure_recipients)
    elif isinstance(result, KnowledgeResult):
        payload["method"] = result.decision.method
    elif isinstance(result, LeakageAnalysis):
        measurement = result.measurement
        payload["leakage"] = _fraction_fields(measurement.leakage)
        payload["explored"] = measurement.explored
        if measurement.prior is not None:
            payload["prior"] = _fraction_fields(measurement.prior)
            payload["posterior"] = _fraction_fields(measurement.posterior)
    elif isinstance(result, VerificationResult):
        payload["engine"] = result.engine
    elif isinstance(result, PlanAuditResult):
        payload["entries"] = [
            {
                "secret": entry.secret_name,
                "recipient": entry.recipient,
                "view": entry.view_name,
                "secure": entry.secure,
            }
            for entry in result.entries
        ]
        payload["violations"] = [
            {"secret": entry.secret_name, "recipient": entry.recipient}
            for entry in result.violations
        ]
    return payload


class AuditServer:
    """The JSON-lines-over-TCP audit daemon.

    Parameters
    ----------
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back from
        :attr:`address` after :meth:`start`).
    path:
        Bind a unix domain socket at this path instead of a TCP port
        (how fleet workers listen for their router); ``address`` then
        returns ``(path, 0)``.
    workers:
        Worker-pool size for CPU-bound analyses (default: CPU count,
        capped at 8).
    queue_limit:
        Maximum pending analyses before requests are shed with an
        ``overloaded`` error.
    max_sessions / result_cache_size:
        LRU bounds of the shared-session pool and the completed-result
        memo.
    session_cache_size:
        ``CriticalTupleCache`` size of each shared session.
    max_payload:
        Upper bound (bytes) on one request line.
    slow_ms:
        Threshold of the structured slow-request log: traced requests
        slower than this emit one JSON line naming the dominant span
        (``REPRO_TRACE_SLOW_MS`` / ``REPRO_TRACE_SLOW_LOG`` override).
    watchdog_seconds:
        Server-side cap on any one computation, applied even to
        requests that carry no ``deadline_ms`` (``None`` disables).
        Overrunning computations are *abandoned*: the worker slot is
        reclaimed immediately, the caller (and any coalesced twins)
        get a ``deadline-exceeded`` error, and if the stray thread
        eventually finishes its result still lands in the result cache
        so the work is not wasted.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        path: Optional[str] = None,
        workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        result_cache_size: int = DEFAULT_RESULT_CACHE,
        session_cache_size: int = 512,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        watchdog_seconds: Optional[float] = None,
        slow_ms: Optional[float] = None,
        max_live: int = DEFAULT_MAX_LIVE,
    ):
        if queue_limit < 1:
            raise ReproError("queue_limit must be at least 1")
        if watchdog_seconds is not None and watchdog_seconds <= 0:
            raise ReproError("watchdog_seconds must be positive (or None)")
        self._host = host
        self._port = port
        self._path = path
        self._workers = workers or min(8, os.cpu_count() or 1)
        self._queue_limit = queue_limit
        self._max_sessions = max(1, max_sessions)
        self._result_cache_size = max(0, result_cache_size)
        self._session_cache_size = session_cache_size
        self._max_payload = max_payload
        self._watchdog_seconds = watchdog_seconds
        self._slow_ms = slow_ms
        self._slow_log: SlowLog = SlowLog(slow_ms)
        self._abandoned_total = 0
        self._abandoned_running = 0
        self._metrics = ServiceMetrics()
        self._sessions: "OrderedDict[str, AnalysisSession]" = OrderedDict()
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._results: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._max_live = max(1, max_live)
        self._live: "OrderedDict[str, LiveAuditSession]" = OrderedDict()
        #: live name -> subscriber notification queues (loop thread only).
        self._live_subscribers: Dict[str, list] = {}
        #: live name -> result-cache keys its ``live-audit`` answers occupy;
        #: popped (cache invalidation) whenever a delta lands on the session.
        self._live_result_keys: Dict[str, set] = {}
        self._pending = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._connections = 0
        self._connection_tasks: "set[asyncio.Task]" = set()

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the bound address."""
        if self._server is not None:
            raise ReproError("the server is already running")
        faults.install_from_env()
        install_tracing_from_env()
        self._slow_log = slow_log_from_env(self._slow_ms)
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-audit"
        )
        # The stream limit sits above max_payload so an oversized-but-bounded
        # line is still read whole and answered with a structured error.
        limit = max(2 * self._max_payload, 1 << 16)
        try:
            if self._path is not None:
                self._server = await asyncio.start_unix_server(
                    self._on_connection, path=self._path, limit=limit
                )
            else:
                self._server = await asyncio.start_server(
                    self._on_connection, self._host, self._port, limit=limit
                )
        except OSError as error:
            self._executor.shutdown(wait=False)
            self._executor = None
            where = self._path if self._path is not None else f"{self._host}:{self._port}"
            if error.errno == errno.EADDRINUSE:
                raise ReproError(
                    f"cannot bind {where}: address already in use "
                    "(is another daemon running on this port?)"
                ) from error
            raise ReproError(
                f"cannot bind {where}: {error.strerror or error}"
            ) from error
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — or ``(path, 0)`` on a unix socket."""
        if self._server is None or not self._server.sockets:
            raise ReproError("the server is not running")
        if self._path is not None:
            return self._path, 0
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def metrics(self) -> ServiceMetrics:
        """The live metrics object."""
        return self._metrics

    async def serve_until_stopped(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._stop_event is None:
            raise ReproError("call start() first")
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, drain pending work, release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Let in-flight analyses finish so clients waiting on coalesced
        # futures are answered before the pool disappears.
        while self._pending:
            await asyncio.sleep(0.01)
        # Then drop connections idling in readline().
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._stop_event is not None:
            self._stop_event.set()

    # -- connection handling ------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line overran the stream buffer: the framing is
                    # lost, so answer once and drop only this connection.
                    self._metrics.observe("unknown", "error")
                    writer.write(
                        encode_message(
                            error_response(
                                None,
                                ERROR_PAYLOAD_TOO_LARGE,
                                "request line exceeded the stream buffer; "
                                "connection closed",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                dropped = False
                for rule in faults.fire("server.respond", op=response.get("op")):
                    if rule.action == "drop":
                        dropped = True
                    elif rule.action == "delay":
                        await asyncio.sleep(rule.delay)
                if dropped:
                    # Simulate a connection lost mid-response: close
                    # without answering (the client sees EOF and retries).
                    break
                subscribed = response.pop("_subscribe_live", None)
                writer.write(encode_message(response))
                await writer.drain()
                if subscribed is not None:
                    # The connection now belongs to the notification
                    # stream: every further line we write is one
                    # mutation's re-verdict document.
                    await self._stream_notifications(subscribed, reader, writer)
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client vanished
            pass
        except asyncio.CancelledError:
            pass  # server shutdown; fall through to close the transport
        finally:
            self._connections -= 1
            if task is not None:
                self._connection_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        request_id = None
        op = "unknown"
        try:
            document = decode_message(line, self._max_payload)
            if isinstance(document, Mapping):
                candidate = document.get("id")
                if isinstance(candidate, (str, int, float)):
                    request_id = candidate
                # Attribute envelope errors to the named operation so the
                # per-op error counters stay meaningful.  The op may be
                # any JSON value here (an unhashable one must not kill
                # the connection); parse_request rejects non-strings.
                named = document.get("op")
                if isinstance(named, str) and named in OPERATIONS:
                    op = named
            request = parse_request(document)
        except ProtocolError as error:
            self._metrics.observe(op, "error")
            return error_response(request_id, error.code, str(error))
        if request.is_control:
            return self._handle_control(request)
        if request.is_live:
            return await self._handle_live(request)
        return await self._handle_analysis(request)

    def _handle_control(self, request: AuditRequest) -> Dict[str, Any]:
        if request.op == "ping":
            self._metrics.observe("ping", "computed")
            return ok_response(
                request.id, "ping", {"pong": True, "version": PROTOCOL_VERSION}
            )
        if request.op == "stats":
            self._metrics.observe("stats", "computed")
            payload = self._stats_payload()
            if request.options.get("mergeable"):
                # The raw counters + latency reservoirs, so a fleet router
                # can merge per-worker stats without losing percentile
                # fidelity (see repro.service.metrics.merge_snapshots).
                payload["mergeable"] = self._metrics.mergeable_snapshot()
            return ok_response(request.id, "stats", payload)
        if request.op == "traces":
            self._metrics.observe("traces", "computed")
            return ok_response(request.id, "traces", TRACES.snapshot())
        if request.op == "metrics":
            self._metrics.observe("metrics", "computed")
            if request.options.get("mergeable"):
                # The fleet router merges per-worker parts and renders once.
                payload: Dict[str, Any] = {
                    "mergeable": self._metrics.mergeable_snapshot(),
                    "gauges": self._gauges(),
                }
            else:
                merged = self._metrics.snapshot()
                payload = {
                    "content_type": CONTENT_TYPE,
                    "text": render_prometheus(merged, self._gauges()),
                }
            return ok_response(request.id, "metrics", payload)
        # shutdown
        self._metrics.observe("shutdown", "computed")
        if self._stop_event is not None:
            self._stop_event.set()
        return ok_response(request.id, "shutdown", {"stopping": True})

    def _gauges(self) -> Dict[str, Any]:
        """Point-in-time gauges for the Prometheus exposition."""
        return {
            "pending_analyses": self._pending,
            "connections": self._connections,
            "sessions": len(self._sessions),
            "result_cache_entries": len(self._results),
            "workers": self._workers,
            "queue_limit": self._queue_limit,
            "live_sessions": len(self._live),
            "live_subscribers": sum(
                len(queues) for queues in self._live_subscribers.values()
            ),
        }

    def _stats_payload(self) -> Dict[str, Any]:
        sessions = []
        for key, session in self._sessions.items():
            entry: Dict[str, Any] = {
                "fingerprint": hashlib.sha256(key.encode("utf8")).hexdigest()[:12],
                "engine": session.engine_name,
                "criticality_engine": session.criticality_engine_name,
                "eval_engine": session.eval_engine,
                "cache": session.cache_stats.to_dict(),
            }
            kernel_stats = SecurityAuditor.kernel_stats_for(session.dictionary)
            if kernel_stats is not None:
                entry["kernels"] = kernel_stats
            sessions.append(entry)
        from ..cq.compiled import evaluation_stats

        payload = {
            **self._metrics.snapshot(),
            "pending": self._pending,
            "queue_limit": self._queue_limit,
            "workers": self._workers,
            "connections": self._connections,
            "result_cache_entries": len(self._results),
            "abandoned": {
                "total": self._abandoned_total,
                "running": self._abandoned_running,
            },
            "query_evaluation": evaluation_stats(),
            "sessions": sessions,
            "live": {
                name: {
                    "revision": live.revision,
                    "facts": live.fact_count,
                    "secrets": list(live.secret_names),
                    "views": list(live.view_names),
                    "subscribers": len(self._live_subscribers.get(name, ())),
                    "stats": dict(live.stats),
                }
                for name, live in self._live.items()
            },
            "tracing": {
                "enabled": tracing_enabled(),
                "recorded": TRACES.snapshot()["recorded"],
                "slow_threshold_ms": self._slow_log.threshold_ms,
                "slow_logged": self._slow_log.logged,
            },
        }
        fault_stats = faults.stats()
        if fault_stats is not None:
            payload["faults"] = fault_stats
        return payload

    # -- analysis dispatch --------------------------------------------------------
    def _deadline_of(self, request: AuditRequest, started: float) -> Optional[float]:
        """Absolute expiry (perf_counter clock) of one request, if any."""
        deadline = None
        if request.deadline_ms is not None:
            deadline = started + request.deadline_ms / 1000.0
        if self._watchdog_seconds is not None:
            cap = started + self._watchdog_seconds
            deadline = cap if deadline is None else min(deadline, cap)
        return deadline

    def _budget_text(self, request: AuditRequest) -> str:
        if request.deadline_ms is not None:
            return f"deadline of {request.deadline_ms:g}ms"
        return f"watchdog of {self._watchdog_seconds:g}s"

    def _deadline_expired(
        self, request: AuditRequest, started: float, where: str
    ) -> Dict[str, Any]:
        elapsed = time.perf_counter() - started
        self._metrics.observe(request.op, "deadline", elapsed)
        return error_response(
            request.id,
            ERROR_DEADLINE_EXCEEDED,
            f"{self._budget_text(request)} exceeded {where}",
        )

    @staticmethod
    async def _await_within(
        awaitable: Awaitable[Any], deadline: Optional[float]
    ) -> Any:
        """Await (shielded) until ``deadline``; raises ``TimeoutError``.

        Shielding matters twice over: an impatient client must not
        cancel a computation twins are awaiting, and a deadline expiry
        must abandon — not cancel — the executor future so the eventual
        result can still be harvested into the cache.
        """
        if deadline is None:
            return await asyncio.shield(awaitable)
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            raise asyncio.TimeoutError
        return await asyncio.wait_for(asyncio.shield(awaitable), timeout=remaining)

    def _reap_abandoned(self, key: str, task: "asyncio.Future") -> None:
        """An abandoned computation finished: harvest it (loop thread)."""
        self._abandoned_running -= 1
        try:
            payload = task.result()
        except BaseException:  # noqa: BLE001 - late failures are uninteresting
            return
        if self._result_cache_size:
            self._results[key] = {"ok": True, "result": payload}
            self._results.move_to_end(key)
            while len(self._results) > self._result_cache_size:
                self._results.popitem(last=False)

    async def _handle_analysis(self, request: AuditRequest) -> Dict[str, Any]:
        if not request.trace:
            return await self._handle_analysis_core(request)
        # Open a server-side trace for this request.  The router passes
        # ``id``/``parent`` so the worker's spans graft under its own
        # ``router.forward`` span; a bare ``{"return": true}`` from a
        # client opens a fresh trace here.
        spec = request.trace
        trace_id = spec.get("id")
        parent_id = spec.get("parent")
        with start_trace(
            "server.handle",
            trace_id=trace_id if isinstance(trace_id, str) else None,
            parent_id=parent_id if isinstance(parent_id, str) else None,
        ) as trace:
            trace.root.set("op", request.op)
            response = await self._handle_analysis_core(request)
        document = trace.to_dict()
        TRACES.record(document)
        self._slow_log.maybe_log(document, op=request.op)
        server = response.get("server")
        if isinstance(server, dict):
            server["trace"] = document
        return response

    async def _handle_analysis_core(self, request: AuditRequest) -> Dict[str, Any]:
        key = request_key(request)
        started = time.perf_counter()
        deadline = self._deadline_of(request, started)

        inflight = self._inflight.get(key)
        if inflight is not None:
            # Coalesce: await the twin computation (shielded so one
            # impatient client cannot cancel it from under the others).
            try:
                with span("coalesce.follow"):
                    response_core = await self._await_within(inflight, deadline)
            except asyncio.TimeoutError:
                return self._deadline_expired(
                    request, started, "while awaiting a twin computation"
                )
            self._link_leader(response_core, "coalesced-leader")
            elapsed = time.perf_counter() - started
            self._metrics.observe(request.op, "coalesced", elapsed)
            return self._finish(request, response_core, elapsed, coalesced=True)

        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self._link_leader(cached, "result-cache")
            elapsed = time.perf_counter() - started
            self._metrics.observe(request.op, "cached", elapsed)
            return self._finish(request, cached, elapsed, cached=True)

        if deadline is not None and time.perf_counter() >= deadline:
            # The budget was spent upstream (router queue, network):
            # answer structurally instead of starting doomed work.
            return self._deadline_expired(request, started, "before computation started")

        if self._pending >= self._queue_limit:
            self._metrics.observe(request.op, "shed")
            return error_response(
                request.id,
                ERROR_OVERLOADED,
                f"worker queue is full ({self._pending} pending, "
                f"limit {self._queue_limit}); retry later",
            )

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._inflight[key] = future
        self._pending += 1
        work: Optional["asyncio.Future"] = None
        abandoned = False
        try:
            try:
                session = self._session_for(request)
                work = self._submit(loop, session, request)
                payload = await self._await_within(work, deadline)
                response_core = {"ok": True, "result": payload}
            except asyncio.TimeoutError:
                # Watchdog: reclaim the slot now, let the stray thread
                # run to completion in the background (harvested below).
                abandoned = True
                response_core = {
                    "ok": False,
                    "code": ERROR_DEADLINE_EXCEEDED,
                    "message": f"{self._budget_text(request)} exceeded "
                    "mid-computation; the computation was abandoned",
                }
            except ProtocolError as error:
                response_core = {"ok": False, "code": error.code, "message": str(error)}
            except ReproError as error:
                response_core = {"ok": False, "code": ERROR_ANALYSIS, "message": str(error)}
            except Exception as error:  # noqa: BLE001 - the daemon must survive
                response_core = {
                    "ok": False,
                    "code": ERROR_INTERNAL,
                    "message": f"{type(error).__name__}: {error}",
                }
            trace = current_trace()
            if trace is not None:
                # Stamped before the future resolves so coalesced twins
                # (and later cache hits) can link to this computation.
                response_core["trace_id"] = trace.trace_id
        finally:
            self._pending -= 1
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(response_core)
        if abandoned and work is not None:
            self._abandoned_total += 1
            self._abandoned_running += 1
            work.add_done_callback(functools.partial(self._reap_abandoned, key))
        elapsed = time.perf_counter() - started
        if response_core["ok"] and self._result_cache_size:
            self._results[key] = response_core
            self._results.move_to_end(key)
            while len(self._results) > self._result_cache_size:
                self._results.popitem(last=False)
        self._metrics.observe(
            request.op,
            "deadline" if abandoned else "computed" if response_core["ok"] else "error",
            elapsed,
        )
        return self._finish(request, response_core, elapsed)

    def _submit(
        self, loop: asyncio.AbstractEventLoop, session: AnalysisSession, request: AuditRequest
    ) -> "asyncio.Future":
        """Schedule one analysis on the worker pool.

        With a trace open, the contextvars context is copied into the
        worker thread so engine-level spans land under this request's
        tree, and the queue wait (submission → thread pickup) becomes
        its own span.  Untraced requests take the bare path — no
        context copy, no extra closure.
        """
        if current_trace() is None:
            return loop.run_in_executor(self._executor, self._execute, session, request)
        enqueued = time.perf_counter()
        context = contextvars.copy_context()

        def _traced() -> Dict[str, Any]:
            record_span("server.queue_wait", (time.perf_counter() - enqueued) * 1000.0)
            with span("server.execute"):
                return self._execute(session, request)

        return loop.run_in_executor(self._executor, context.run, _traced)

    def _link_leader(self, response_core: Mapping[str, Any], relation: str) -> None:
        """Record, on a follower's trace, a link to the leader's trace."""
        trace = current_trace()
        if trace is None:
            return
        leader = response_core.get("trace_id")
        if isinstance(leader, str) and leader != trace.trace_id:
            trace.link(leader, relation)

    def _finish(
        self,
        request: AuditRequest,
        response_core: Mapping[str, Any],
        elapsed: float,
        *,
        coalesced: bool = False,
        cached: bool = False,
    ) -> Dict[str, Any]:
        if response_core["ok"]:
            return ok_response(
                request.id,
                request.op,
                response_core["result"],
                coalesced=coalesced,
                cached=cached,
                elapsed_ms=elapsed * 1000.0,
            )
        return error_response(request.id, response_core["code"], response_core["message"])

    # -- live audit sessions ------------------------------------------------------
    async def _handle_live(self, request: AuditRequest) -> Dict[str, Any]:
        """Dispatch one live operation (loop thread; see protocol docs).

        Mutations (``live-create``, ``apply-delta``) bypass coalescing
        and the result cache — applying a delta twice is a different
        database — and run to completion even past a deadline (an
        abandoned half-applied delta would corrupt the session).
        ``live-audit`` answers *are* cached: the keys are remembered per
        session and invalidated the moment a delta lands.
        """
        started = time.perf_counter()
        name = request.live or ""
        try:
            if request.op == "subscribe":
                if name not in self._live:
                    raise ReproError(f"no live session named {name!r}")
                self._metrics.observe("subscribe", "computed")
                live = self._live[name]
                response = ok_response(
                    request.id,
                    "subscribe",
                    {"live": name, "revision": live.revision, "subscribed": True},
                    elapsed_ms=(time.perf_counter() - started) * 1000.0,
                )
                # Sentinel for _on_connection: after this ack the
                # connection is dedicated to the notification stream.
                response["_subscribe_live"] = name
                return response

            if request.op == "live-audit":
                key = request_key(request)
                cached = self._results.get(key)
                if cached is not None:
                    self._results.move_to_end(key)
                    elapsed = time.perf_counter() - started
                    self._metrics.observe("live-audit", "cached", elapsed)
                    return self._finish(request, cached, elapsed, cached=True)

            if self._pending >= self._queue_limit:
                self._metrics.observe(request.op, "shed")
                return error_response(
                    request.id,
                    ERROR_OVERLOADED,
                    f"worker queue is full ({self._pending} pending, "
                    f"limit {self._queue_limit}); retry later",
                )
            loop = asyncio.get_running_loop()
            self._pending += 1
            try:
                if request.op == "live-create":
                    if name in self._live:
                        raise ReproError(
                            f"a live session named {name!r} already exists"
                        )
                    live, payload = await loop.run_in_executor(
                        self._executor, self._live_create, request
                    )
                    if name in self._live:  # lost a create race mid-build
                        raise ReproError(
                            f"a live session named {name!r} already exists"
                        )
                    self._live[name] = live
                    while len(self._live) > self._max_live:
                        dropped, _ = self._live.popitem(last=False)
                        self._live_subscribers.pop(dropped, None)
                        self._invalidate_live_results(dropped)
                elif request.op == "apply-delta":
                    if name not in self._live:
                        raise ReproError(f"no live session named {name!r}")
                    live = self._live[name]
                    self._live.move_to_end(name)
                    notifications = await loop.run_in_executor(
                        self._executor, self._live_delta, live, request
                    )
                    self._invalidate_live_results(name)
                    self._fan_out(name, notifications)
                    payload = dict(notifications[-1])
                    payload["events"] = len(notifications)
                else:  # live-audit (cache miss)
                    live = self._live[name] if name in self._live else None
                    if live is None:
                        raise ReproError(f"no live session named {name!r}")
                    self._live.move_to_end(name)
                    payload = await loop.run_in_executor(
                        self._executor, self._live_snapshot, live
                    )
            finally:
                self._pending -= 1
        except ReproError as error:
            self._metrics.observe(request.op, "error")
            return error_response(request.id, ERROR_ANALYSIS, str(error))
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            self._metrics.observe(request.op, "error")
            return error_response(
                request.id, ERROR_INTERNAL, f"{type(error).__name__}: {error}"
            )
        elapsed = time.perf_counter() - started
        response_core = {"ok": True, "result": payload}
        if request.op == "live-audit" and self._result_cache_size:
            key = request_key(request)
            self._results[key] = response_core
            self._results.move_to_end(key)
            self._live_result_keys.setdefault(name, set()).add(key)
            while len(self._results) > self._result_cache_size:
                self._results.popitem(last=False)
        self._metrics.observe(request.op, "computed", elapsed)
        return self._finish(request, response_core, elapsed)

    def _live_create(self, request: AuditRequest) -> Tuple[LiveAuditSession, Dict[str, Any]]:
        """Build a live session and its initial snapshot (worker thread).

        Registration stays on the loop thread (`_handle_live`), which
        owns all bookkeeping.
        """
        for rule in faults.fire("server.execute", op=request.op):
            faults.perform(rule)
        name = request.live or ""
        schema = schema_from_dict(request.schema)
        if request.dictionary is not None:
            dictionary = dictionary_from_dict(request.dictionary, schema)
        else:
            dictionary = dictionary_from_dict(request.schema, schema)
        secrets = request.secrets
        if not isinstance(secrets, Mapping):
            secrets = {f"secret-{i}": q for i, q in enumerate(secrets)}
        views = request.views
        if views is not None and not isinstance(views, Mapping):
            views = (
                {f"view-{i}": q for i, q in enumerate(views)}
                if not isinstance(views, str)
                else {"view-0": views}
            )
        facts = [fact_from_document(doc) for doc in request.facts or ()]
        store = None
        if request.options.get("store"):
            from ..storage.sqlite import SQLiteFactStore

            store = SQLiteFactStore()
        live = LiveAuditSession(
            schema,
            secrets=secrets,
            views=views,
            facts=facts,
            store=store,
            dictionary=dictionary,
            eval_engine=request.eval_engine,
            criticality_engine=request.criticality_engine,
            cache_size=self._session_cache_size,
        )
        snapshot = live.snapshot()
        snapshot["created"] = True
        snapshot["live"] = name
        return live, snapshot

    @staticmethod
    def _live_delta(live: LiveAuditSession, request: AuditRequest) -> list:
        """Apply one delta request (worker thread); returns notifications.

        Order within one request: view retractions, then publications,
        then the batched fact delta — so a request can atomically swap a
        view and shift the data underneath it.
        """
        for rule in faults.fire("server.execute", op=request.op):
            faults.perform(rule)
        notifications = []
        for view_name in request.retract or ():
            notifications.append(live.retract(view_name))
        for view_name, query in (request.publish or {}).items():
            notifications.append(live.publish(view_name, query))
        added = [fact_from_document(doc) for doc in request.add or ()]
        removed = [fact_from_document(doc) for doc in request.remove or ()]
        if added or removed or not notifications:
            notifications.append(live.apply_delta(added=added, removed=removed))
        return notifications

    @staticmethod
    def _live_snapshot(live: LiveAuditSession) -> Dict[str, Any]:
        return live.snapshot()

    def _invalidate_live_results(self, name: str) -> None:
        """Drop cached ``live-audit`` answers made stale by a delta."""
        for key in self._live_result_keys.pop(name, ()):
            self._results.pop(key, None)

    def _fan_out(self, name: str, notifications: list) -> None:
        """Push a delta's notifications to every subscriber (loop thread)."""
        queues = self._live_subscribers.get(name)
        if not queues:
            return
        for queue in list(queues):
            for notification in notifications:
                queue.put_nowait(notification)

    async def _stream_notifications(
        self, name: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Dedicate this connection to a live session's re-verdict stream.

        Ends when the client closes its side (EOF) or the server stops;
        the subscription is torn down either way.
        """
        queue: "asyncio.Queue" = asyncio.Queue()
        self._live_subscribers.setdefault(name, []).append(queue)
        eof = asyncio.ensure_future(reader.read(1))
        getter: Optional["asyncio.Future"] = None
        try:
            while True:
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, eof}, return_when=asyncio.FIRST_COMPLETED
                )
                if eof in done:
                    break
                notification = getter.result()
                getter = None
                writer.write(encode_message(notification))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            eof.cancel()
            if getter is not None:
                getter.cancel()
            queues = self._live_subscribers.get(name)
            if queues is not None:
                with contextlib.suppress(ValueError):
                    queues.remove(queue)
                if not queues:
                    self._live_subscribers.pop(name, None)

    # -- session pool -------------------------------------------------------------
    def _session_for(self, request: AuditRequest) -> AnalysisSession:
        """The shared session for a request's fingerprint (loop thread only)."""
        key = session_key(request)
        session = self._sessions.get(key)
        if session is None:
            schema = schema_from_dict(request.schema)
            if request.dictionary is not None:
                dictionary = dictionary_from_dict(request.dictionary, schema)
            else:
                dictionary = dictionary_from_dict(request.schema, schema)
            session = AnalysisSession(
                schema,
                dictionary=dictionary,
                engine=request.engine,
                criticality_engine=request.criticality_engine,
                eval_engine=request.eval_engine,
                cache_size=self._session_cache_size,
            )
            while len(self._sessions) >= self._max_sessions:
                self._sessions.popitem(last=False)
            self._sessions[key] = session
        self._sessions.move_to_end(key)
        return session

    # -- the worker-side execution ------------------------------------------------
    def _execute(self, session: AnalysisSession, request: AuditRequest) -> Dict[str, Any]:
        """Run one analysis (worker thread; session state is thread-safe)."""
        for rule in faults.fire("server.execute", op=request.op):
            faults.perform(rule)
        op = request.op
        options = dict(request.options)
        if op == "decide":
            return result_payload(session.decide(request.secret, request.views))
        if op == "quick":
            return result_payload(session.quick_check(request.secret, request.views))
        if op == "collusion":
            return result_payload(session.collusion(request.secret, request.views))
        if op == "leakage":
            return result_payload(
                session.leakage(request.secret, request.views, **options)
            )
        if op == "verify":
            return result_payload(
                session.verify(request.secret, request.views, **options)
            )
        if op == "with_knowledge":
            knowledge = knowledge_from_dict(request.knowledge, session.schema)
            return result_payload(
                session.with_knowledge(request.secret, request.views, knowledge)
            )
        if op == "plan":
            plan = PublishingPlan(secrets=request.secrets, views=request.views)
            return result_payload(session.audit_plan(plan))
        if op == "audit":
            auditor = SecurityAuditor(session.schema, session=session)
            views = (
                request.views
                if isinstance(request.views, Mapping)
                else list(request.views)
                if not isinstance(request.views, str)
                else [request.views]
            )
            report = auditor.audit(request.secret, views)
            payload = report.to_dict()
            # The uniform verdict field every other op carries; also what
            # `repro-audit request` keys its exit code on.
            payload["verdict"] = report.all_secure
            payload["observability"] = auditor.observability()
            return payload
        raise ProtocolError(ERROR_INTERNAL, f"unroutable operation {op!r}")


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------
def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    announce=None,
    **server_options,
) -> None:
    """Run a daemon until ``shutdown`` / Ctrl-C (the CLI entry point).

    ``announce`` is called with the bound ``(host, port)`` once the
    socket is listening.
    """

    async def _amain() -> None:
        server = AuditServer(host, port, **server_options)
        bound = await server.start()
        if announce is not None:
            announce(bound)
        try:
            await server.serve_until_stopped()
        except asyncio.CancelledError:  # pragma: no cover - Ctrl-C path
            await server.stop()
            raise

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass


class ServerThread:
    """A daemon running on a background thread (tests, benchmarks, demos).

    Usage::

        with ServerThread(workers=4) as server:
            client = AuditServiceClient(*server.address)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **server_options):
        self._server = AuditServer(host, port, **server_options)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._address is None:
            raise ReproError("the server thread is not running")
        return self._address

    @property
    def server(self) -> AuditServer:
        """The wrapped :class:`AuditServer` (e.g. for ``metrics``)."""
        return self._server

    def start(self) -> "ServerThread":
        """Boot the loop thread and wait until the socket is listening."""

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def _main() -> None:
                try:
                    self._address = await self._server.start()
                except BaseException as error:  # pragma: no cover - bind failure
                    self._error = error
                    self._started.set()
                    return
                self._started.set()
                await self._server.serve_until_stopped()

            try:
                loop.run_until_complete(_main())
            finally:
                loop.close()

        self._thread = threading.Thread(target=_run, name="repro-audit-server", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)
        if self._error is not None:
            raise ReproError(f"server failed to start: {self._error}")
        if self._address is None:
            raise ReproError("server did not come up within 30s")
        return self

    def stop(self, timeout: float = 30) -> None:
        """Request a stop and join the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            try:
                loop.call_soon_threadsafe(
                    lambda: self._server._stop_event is not None
                    and self._server._stop_event.set()
                )
            except RuntimeError:
                pass  # the loop already stopped (e.g. a client sent shutdown)
            thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
