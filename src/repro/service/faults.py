"""Deterministic fault injection for the audit service (public face).

The machinery lives in :mod:`repro.faults` — a leaf module with no
intra-package dependencies, so the storage and evaluation layers can
consult fault points without importing the service stack.  This module
re-exports it under the service namespace, which is where users and
the chaos test-suite look for it:

>>> from repro.service import faults
>>> plan = faults.FaultPlan.from_spec(
...     {"seed": 7, "faults": [
...         {"point": "server.execute", "action": "delay",
...          "op": "decide", "delay": 0.2},
...     ]}
... )
>>> faults.install(plan)      # or REPRO_FAULT_PLAN='{"seed": 7, ...}'
>>> faults.uninstall()

See :mod:`repro.faults` for the fault-point catalog, the JSON plan
format, and the determinism guarantees.
"""

from ..faults import (  # noqa: F401
    FAULT_ACTIONS,
    FAULT_PLAN_ENV,
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
    active_plan,
    fire,
    install,
    install_from_env,
    perform,
    set_context,
    stats,
    uninstall,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_POINTS",
    "FAULT_ACTIONS",
    "FaultRule",
    "FaultPlan",
    "install",
    "uninstall",
    "install_from_env",
    "active_plan",
    "set_context",
    "fire",
    "perform",
    "stats",
]
