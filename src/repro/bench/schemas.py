"""The schemas and query-view pairs used throughout the paper.

Centralising them here keeps the examples, tests and benchmarks in sync
with the paper's notation:

* ``employee_schema`` — ``Emp(name, department, phone)`` (Table 1,
  Examples 6.2/6.3);
* ``binary_schema`` — the single binary relation ``R(X, Y)`` over
  ``D = {a, b}`` (Examples 4.2, 4.3, 4.6, 4.7, 4.12);
* ``patient_schema`` — ``Patient(name, disease)`` (the hospital example
  of Section 3.2);
* ``manufacturing_schema`` — the motivating manufacturing-company data
  exchange of the introduction;
* ``table1_pairs`` — the four query-view pairs of Table 1 with the
  disclosure level the paper assigns to each.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from ..audit.classification import DisclosureLevel
from ..cq.parser import parse_query
from ..cq.query import ConjunctiveQuery
from ..relational.domain import Domain
from ..relational.schema import RelationSchema, Schema

__all__ = [
    "employee_schema",
    "binary_schema",
    "patient_schema",
    "manufacturing_schema",
    "Table1Row",
    "table1_pairs",
]


def employee_schema(
    names: int = 2, departments: int = 2, phones: int = 2
) -> Schema:
    """The ``Emp(name, department, phone)`` schema with small attribute domains."""
    name_domain = Domain([f"n{i}" for i in range(names)], name="names")
    department_domain = Domain([f"d{i}" for i in range(departments)], name="departments")
    phone_domain = Domain([f"p{i}" for i in range(phones)], name="phones")
    relation = RelationSchema(
        "Emp",
        ("name", "department", "phone"),
        {
            "name": name_domain,
            "department": department_domain,
            "phone": phone_domain,
        },
    )
    return Schema([relation])


def binary_schema(domain_values: Tuple[object, ...] = ("a", "b")) -> Schema:
    """The single binary relation ``R(X, Y)`` used by Examples 4.2–4.7."""
    domain = Domain(domain_values, name="D")
    relation = RelationSchema("R", ("X", "Y"))
    return Schema([relation], domain=domain)


def patient_schema(names: int = 3, diseases: int = 2) -> Schema:
    """The hospital ``Patient(name, disease)`` schema of Section 3.2."""
    name_domain = Domain([f"patient{i}" for i in range(names)], name="names")
    disease_domain = Domain([f"disease{i}" for i in range(diseases)], name="diseases")
    relation = RelationSchema(
        "Patient",
        ("name", "disease"),
        {"name": name_domain, "disease": disease_domain},
    )
    return Schema([relation])


def manufacturing_schema() -> Schema:
    """The manufacturing company of the introduction.

    Relations
    ---------
    ``Part(product, part, supplier_price)``
        detailed part information exchanged with suppliers (view ``V1``),
    ``Product(product, feature, selling_price)``
        product features and selling prices for retailers (view ``V2``),
    ``Labor(product, labor_cost)``
        labour cost information for the tax consultancy (view ``V3``),
    ``Cost(product, manufacturing_cost)``
        the internal manufacturing cost the company wants to protect
        (secret ``S``).
    """
    products = Domain(["widget", "gadget"], name="products")
    parts = Domain(["bolt", "chip"], name="parts")
    money = Domain([10, 20], name="money")
    features = Domain(["blue", "fast"], name="features")
    return Schema(
        [
            RelationSchema(
                "Part",
                ("product", "part", "supplier_price"),
                {"product": products, "part": parts, "supplier_price": money},
            ),
            RelationSchema(
                "Product",
                ("product", "feature", "selling_price"),
                {"product": products, "feature": features, "selling_price": money},
            ),
            RelationSchema(
                "Labor",
                ("product", "labor_cost"),
                {"product": products, "labor_cost": money},
            ),
            RelationSchema(
                "Cost",
                ("product", "manufacturing_cost"),
                {"product": products, "manufacturing_cost": money},
            ),
        ]
    )


class Table1Row(NamedTuple):
    """One row of Table 1: the views, the secret and the expected verdicts."""

    row: int
    views: Tuple[ConjunctiveQuery, ...]
    secret: ConjunctiveQuery
    expected_level: DisclosureLevel
    expected_secure: bool


def table1_pairs() -> List[Table1Row]:
    """The four query-view pairs of Table 1 with the paper's verdicts."""
    return [
        Table1Row(
            row=1,
            views=(parse_query("V1(n, d) :- Emp(n, d, p)"),),
            secret=parse_query("S1(d) :- Emp(n, d, p)"),
            expected_level=DisclosureLevel.TOTAL,
            expected_secure=False,
        ),
        Table1Row(
            row=2,
            views=(
                parse_query("V2(n, d) :- Emp(n, d, p)"),
                parse_query("V2p(d, p) :- Emp(n, d, p)"),
            ),
            secret=parse_query("S2(n, p) :- Emp(n, d, p)"),
            expected_level=DisclosureLevel.PARTIAL,
            expected_secure=False,
        ),
        Table1Row(
            row=3,
            views=(parse_query("V3(n) :- Emp(n, d, p)"),),
            secret=parse_query("S3(p) :- Emp(n, d, p)"),
            expected_level=DisclosureLevel.MINUTE,
            expected_secure=False,
        ),
        Table1Row(
            row=4,
            views=(parse_query("V4(n) :- Emp(n, Mgmt, p)"),),
            secret=parse_query("S4(n) :- Emp(n, HR, p)"),
            expected_level=DisclosureLevel.NONE,
            expected_secure=True,
        ),
    ]
