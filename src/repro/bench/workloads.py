"""Random workload generators for scaling benchmarks and property tests.

The paper contains no synthetic-workload experiment (it is a theory
paper), but a reproduction needs one to exercise the decision procedures
beyond the worked examples: the scaling benchmark compares the exact
critical-tuple procedure, the naive enumeration and the practical
unification algorithm on randomly generated conjunctive queries, and the
property-based tests draw from the same generator.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cq.atoms import Atom
from ..cq.query import ConjunctiveQuery
from ..cq.terms import Constant, Variable
from ..relational.domain import Domain
from ..relational.schema import RelationSchema, Schema

__all__ = [
    "WorkloadConfig",
    "random_schema",
    "random_query",
    "random_query_view_pair",
    "scaling_workload",
]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the random query generator."""

    relations: int = 2
    max_arity: int = 3
    domain_size: int = 3
    max_subgoals: int = 3
    max_variables: int = 4
    constant_probability: float = 0.3
    head_probability: float = 0.5


def random_schema(config: WorkloadConfig, rng: random.Random) -> Schema:
    """A schema with ``config.relations`` relations of random arity."""
    domain = Domain([f"c{i}" for i in range(config.domain_size)], name="D")
    relations = []
    for index in range(config.relations):
        arity = rng.randint(1, config.max_arity)
        relations.append(
            RelationSchema(f"R{index}", tuple(f"a{i}" for i in range(arity)))
        )
    return Schema(relations, domain=domain)


def random_query(
    schema: Schema,
    config: WorkloadConfig,
    rng: random.Random,
    name: str = "Q",
    boolean: Optional[bool] = None,
) -> ConjunctiveQuery:
    """A random conjunctive query over the schema.

    Subgoal terms are drawn from a small pool of variables and the
    domain's constants; the head projects a random subset of the
    variables used (or is empty for boolean queries).
    """
    variables = [Variable(f"x{i}") for i in range(config.max_variables)]
    constants = [Constant(v) for v in schema.domain.values]
    subgoal_count = rng.randint(1, config.max_subgoals)
    body: List[Atom] = []
    used_variables: List[Variable] = []
    for _ in range(subgoal_count):
        relation = rng.choice(list(schema.relations))
        terms = []
        for _ in range(relation.arity):
            if rng.random() < config.constant_probability:
                terms.append(rng.choice(constants))
            else:
                variable = rng.choice(variables)
                terms.append(variable)
                if variable not in used_variables:
                    used_variables.append(variable)
        body.append(Atom(relation.name, terms))
    if boolean is None:
        boolean = not used_variables or rng.random() > config.head_probability
    if boolean or not used_variables:
        head: Tuple = ()
    else:
        head_size = rng.randint(1, len(used_variables))
        head = tuple(rng.sample(used_variables, head_size))
    return ConjunctiveQuery(head, body, name=name)


def random_query_view_pair(
    config: WorkloadConfig, seed: int
) -> Tuple[Schema, ConjunctiveQuery, ConjunctiveQuery]:
    """A (schema, secret, view) triple drawn deterministically from a seed."""
    rng = random.Random(seed)
    schema = random_schema(config, rng)
    secret = random_query(schema, config, rng, name="S")
    view = random_query(schema, config, rng, name="V")
    return schema, secret, view


def scaling_workload(
    domain_sizes: Sequence[int],
    pairs_per_size: int = 5,
    base_seed: int = 7,
    config: Optional[WorkloadConfig] = None,
) -> List[Tuple[int, Schema, ConjunctiveQuery, ConjunctiveQuery]]:
    """The workload of the scaling benchmark: pairs over growing domains."""
    config = config or WorkloadConfig()
    workload = []
    for domain_size in domain_sizes:
        sized = WorkloadConfig(
            relations=config.relations,
            max_arity=config.max_arity,
            domain_size=domain_size,
            max_subgoals=config.max_subgoals,
            max_variables=config.max_variables,
            constant_probability=config.constant_probability,
            head_probability=config.head_probability,
        )
        for index in range(pairs_per_size):
            schema, secret, view = random_query_view_pair(
                sized, seed=base_seed + 1000 * domain_size + index
            )
            workload.append((domain_size, schema, secret, view))
    return workload
