"""Shared benchmark support: paper schemas and random workload generators."""

from .schemas import (
    Table1Row,
    binary_schema,
    employee_schema,
    manufacturing_schema,
    patient_schema,
    table1_pairs,
)
from .workloads import (
    WorkloadConfig,
    random_query,
    random_query_view_pair,
    random_schema,
    scaling_workload,
)

__all__ = [
    "Table1Row",
    "binary_schema",
    "employee_schema",
    "manufacturing_schema",
    "patient_schema",
    "table1_pairs",
    "WorkloadConfig",
    "random_query",
    "random_query_view_pair",
    "random_schema",
    "scaling_workload",
]
