"""repro — a query-view security analyzer.

A from-scratch reproduction of Miklau & Suciu, *A Formal Analysis of
Information Disclosure in Data Exchange* (SIGMOD 2004 / JCSS 2007):
given views to be published and a query to be kept secret, decide — for
every probability distribution over databases — whether the views
disclose anything about the secret, measure the magnitude of the
disclosure when they do, and analyse collusion, prior knowledge,
encrypted views and asymptotic ("practical") security.

Quick start
-----------
The front door is the session API: compile queries once, analyse many
times, and let the session memoize every critical-tuple set.

>>> from repro import AnalysisSession
>>> from repro.bench import employee_schema
>>> session = AnalysisSession(employee_schema())
>>> secret = session.compile("S(n) :- Emp(n, HR, p)")
>>> session.decide(secret, "V(n) :- Emp(n, Mgmt, p)").secure
True

Batch audits share the cache across every secret × view pair:

>>> from repro import PublishingPlan
>>> plan = PublishingPlan(
...     secrets={"hr_names": "S(n) :- Emp(n, HR, p)"},
...     views={"bob": "V(n) :- Emp(n, Mgmt, p)"},
... )
>>> session.audit_plan(plan).secure
True

The legacy free functions remain fully supported and now delegate to a
default session (see ``docs/API.md`` for the migration notes):

>>> from repro import q, decide_security
>>> decide_security(q("S(n) :- Emp(n, HR, p)"),
...                 q("V(n) :- Emp(n, Mgmt, p)"),
...                 employee_schema()).secure
True
"""

from .audit import (
    AuditFinding,
    AuditReport,
    DisclosureAssessment,
    DisclosureLevel,
    SecurityAuditor,
    classify_disclosure,
)
from .core import (
    CardinalityConstraintKnowledge,
    CollusionReport,
    CriticalityEngine,
    EncryptedView,
    KeyConstraintKnowledge,
    KnowledgeDecision,
    LeakageResult,
    PracticalSecurityLevel,
    PracticalSecurityReport,
    PracticalVerdict,
    PriorViewKnowledge,
    SecurityDecision,
    TupleStatusKnowledge,
    analyse_collusion,
    analysis_domain,
    asymptotic_order,
    available_criticality_engines,
    classify_practical_security,
    common_critical_tuples,
    create_criticality_engine,
    critical_tuples,
    decide_security,
    decide_with_knowledge,
    epsilon_of_theorem_6_1,
    is_critical,
    is_secure,
    positive_leakage,
    practical_security_check,
    register_criticality_engine,
    verify_security_probabilistically,
    verify_with_knowledge,
)
from .cq import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    UnionQuery,
    Variable,
    parse_query,
    q,
    union_of,
)
from .exceptions import (
    DomainError,
    IntractableAnalysisError,
    KnowledgeError,
    ParseError,
    ProbabilityError,
    QueryError,
    ReproError,
    SchemaError,
    SecurityAnalysisError,
)
from .probability import (
    Dictionary,
    ExactEngine,
    MonteCarloSampler,
    NaiveExactEngine,
    ProbabilityKernel,
    query_polynomial,
)
from .relational import Domain, Fact, Instance, RelationSchema, Schema
from .session import (
    AnalysisResult,
    AnalysisSession,
    CacheStats,
    CompiledQuery,
    CriticalTupleCache,
    PlanAuditResult,
    PublishingPlan,
    available_engines,
    register_engine,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational substrate
    "Domain",
    "RelationSchema",
    "Schema",
    "Fact",
    "Instance",
    # conjunctive queries
    "ConjunctiveQuery",
    "UnionQuery",
    "union_of",
    "Atom",
    "Comparison",
    "Variable",
    "Constant",
    "parse_query",
    "q",
    # probability
    "Dictionary",
    "ExactEngine",
    "NaiveExactEngine",
    "ProbabilityKernel",
    "MonteCarloSampler",
    "query_polynomial",
    # core security analysis
    "critical_tuples",
    "is_critical",
    "common_critical_tuples",
    "CriticalityEngine",
    "register_criticality_engine",
    "available_criticality_engines",
    "create_criticality_engine",
    "SecurityDecision",
    "decide_security",
    "is_secure",
    "verify_security_probabilistically",
    "PracticalVerdict",
    "practical_security_check",
    "analysis_domain",
    "CollusionReport",
    "analyse_collusion",
    "KeyConstraintKnowledge",
    "CardinalityConstraintKnowledge",
    "TupleStatusKnowledge",
    "PriorViewKnowledge",
    "KnowledgeDecision",
    "decide_with_knowledge",
    "verify_with_knowledge",
    "LeakageResult",
    "positive_leakage",
    "epsilon_of_theorem_6_1",
    "EncryptedView",
    "PracticalSecurityLevel",
    "PracticalSecurityReport",
    "asymptotic_order",
    "classify_practical_security",
    # session API
    "AnalysisSession",
    "CompiledQuery",
    "CriticalTupleCache",
    "CacheStats",
    "PublishingPlan",
    "AnalysisResult",
    "PlanAuditResult",
    "register_engine",
    "available_engines",
    # audit layer
    "SecurityAuditor",
    "DisclosureLevel",
    "DisclosureAssessment",
    "classify_disclosure",
    "AuditReport",
    "AuditFinding",
    # exceptions
    "ReproError",
    "SchemaError",
    "DomainError",
    "QueryError",
    "ParseError",
    "ProbabilityError",
    "SecurityAnalysisError",
    "KnowledgeError",
    "IntractableAnalysisError",
]
