"""Command-line interface for query-view security audits.

The CLI wraps the session-backed
:class:`~repro.audit.auditor.SecurityAuditor` so a data owner can audit
a publishing plan without writing Python::

    repro-audit decide   --schema schema.json --secret "S(n,p) :- Emp(n,d,p)" \
                         --view "V(n,d) :- Emp(n,d,p)"
    repro-audit audit    --schema schema.json --secret "..." \
                         --view bob="V(n,d) :- Emp(n,d,p)" --view carol="W(d,p) :- Emp(n,d,p)"
    repro-audit quick    --schema schema.json --secret "..." --view "..."
    repro-audit leakage  --schema schema.json --secret "..." --view "..." --probability 1/4
    repro-audit collusion --schema schema.json --secret "..." --view bob="..." --view carol="..."
    repro-audit plan     --plan plan.json
    repro-audit load     --store facts.db facts.json --csv Emp=employees.csv
    repro-audit serve    --port 8765 --workers 4
    repro-audit request  --port 8765 --op decide --schema schema.json \
                         --secret "..." --view "..."

The schema JSON format is documented in :mod:`repro.io`; ``plan`` takes
the same document extended with ``secrets`` and ``views`` mappings and
runs the batch :meth:`~repro.session.AnalysisSession.audit_plan`.
``serve`` runs the asyncio audit daemon of :mod:`repro.service` and
``request`` sends it one operation (either assembled from the usual
flags or read verbatim from ``--payload file.json``); ``request
--trace`` asks the daemon to return its span tree inline, and
``request --op subscribe --payload ...`` keeps the connection open and
streams one JSON line per re-verdict notification of a live audit
session (see :mod:`repro.session.live`).  ``trace``
sends the same request and renders the distributed span waterfall
instead of raw JSON, and ``top`` polls a daemon's merged ``stats`` and
``traces`` operations into a live per-shard/per-op view.
Every command exits with status 0 when the secret is safe under the
requested analysis and status 1 when a disclosure was found, so the
tool can gate a CI pipeline or a publishing workflow; transport and
configuration errors exit 2.  ``request`` additionally distinguishes
the service's retryable-class failures — exit 3 = overloaded, 4 =
worker-crashed, 5 = deadline-exceeded — and takes ``--deadline-ms``
(end-to-end time budget) and ``--retries`` (attempts with jittered
backoff).  ``serve --fault-plan`` installs a deterministic
fault-injection plan (see :mod:`repro.faults`) for chaos testing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .audit.auditor import SecurityAuditor
from .exceptions import ReproError
from .io import load_audit_configuration, load_publishing_plan
from .probability.dictionary import Dictionary
from .session import AnalysisSession

__all__ = ["main", "build_parser"]


def _parse_views(raw_views: Sequence[str]) -> Dict[str, str]:
    """Parse ``--view`` arguments of the form ``[recipient=]query``.

    A recipient prefix is recognised only when the first ``=`` occurs
    *left of* the ``:-`` separator **and** the text before it looks like
    a bare recipient name (no parentheses or quotes).  This keeps
    queries whose head mentions an ``=``-containing constant — e.g.
    ``V('a=b') :- R(x, y)`` — from being torn apart at the wrong place.
    """
    views: Dict[str, str] = {}
    for index, raw in enumerate(raw_views):
        head = raw.partition(":-")[0]
        separator = head.find("=")
        prefix = raw[:separator] if separator != -1 else ""
        if separator != -1 and prefix and not any(c in prefix for c in "()'\""):
            recipient, query = prefix.strip(), raw[separator + 1 :]
        else:
            recipient, query = f"user{index + 1}", raw
        views[recipient] = query.strip()
    return views


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro-audit`` tool."""
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Query-view security audits (Miklau & Suciu, SIGMOD 2004).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(subparser: argparse.ArgumentParser, multi_view_names: bool) -> None:
        subparser.add_argument("--schema", required=True, help="path to the schema JSON file")
        subparser.add_argument("--secret", required=True, help="the confidential query (datalog)")
        help_text = (
            "a view to publish, optionally prefixed with a recipient name "
            "(recipient=QUERY); repeat for several views"
            if multi_view_names
            else "a view to publish (datalog); repeat for several views"
        )
        subparser.add_argument("--view", action="append", required=True, help=help_text)
        subparser.add_argument(
            "--probability",
            default=None,
            help="uniform tuple probability for quantitative measures (e.g. 1/4)",
        )
        subparser.add_argument(
            "--criticality-engine",
            default=None,
            help=(
                "critical-tuple computation engine: pruned-parallel (default), "
                "minimal, or naive"
            ),
        )
        subparser.add_argument(
            "--eval-engine",
            default=None,
            help=(
                "query-evaluation engine: compiled (default), naive, or sql "
                "(defaults to $REPRO_EVAL_ENGINE)"
            ),
        )

    decide = subparsers.add_parser("decide", help="dictionary-independent decision (Theorem 4.5)")
    add_common(decide, multi_view_names=False)

    quick = subparsers.add_parser("quick", help="practical subgoal-unification check (Section 4.2)")
    add_common(quick, multi_view_names=False)

    audit = subparsers.add_parser("audit", help="full audit: classification, quick check, leakage")
    add_common(audit, multi_view_names=True)
    audit.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the report as JSON, including cache and probability-kernel "
            "observability counters"
        ),
    )

    leakage = subparsers.add_parser("leakage", help="measure the positive disclosure (Section 6.1)")
    add_common(leakage, multi_view_names=False)

    collusion = subparsers.add_parser("collusion", help="multi-party collusion analysis")
    add_common(collusion, multi_view_names=True)

    plan = subparsers.add_parser(
        "plan",
        help="batch audit of a multi-secret/multi-view publishing plan (session API)",
    )
    plan.add_argument(
        "--plan",
        required=True,
        help="path to a JSON publishing plan (schema document plus 'secrets' and 'views')",
    )
    plan.add_argument(
        "--engine",
        default="exact",
        help="verification engine for the session (default: exact)",
    )
    plan.add_argument(
        "--criticality-engine",
        default=None,
        help=(
            "critical-tuple computation engine: pruned-parallel (default), "
            "minimal, or naive"
        ),
    )
    plan.add_argument(
        "--eval-engine",
        default=None,
        help=(
            "query-evaluation engine: compiled (default), naive, or sql "
            "(defaults to $REPRO_EVAL_ENGINE)"
        ),
    )
    plan.add_argument(
        "--show-cache-stats",
        action="store_true",
        help="print critical-tuple cache statistics after the audit",
    )

    load = subparsers.add_parser(
        "load",
        help="bulk-load JSON/CSV facts into a sqlite fact store (repro.storage)",
    )
    load.add_argument(
        "--store",
        required=True,
        help="path of the sqlite store file (created or appended to)",
    )
    load.add_argument(
        "facts",
        nargs="*",
        help=(
            "JSON fact files: either [[relation, v1, ...], ...] or "
            "{relation: [[v1, ...], ...]} (optionally under a 'facts' key)"
        ),
    )
    load.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="RELATION=PATH",
        help="load a CSV file as one relation (one fact per row); repeatable",
    )

    serve = subparsers.add_parser(
        "serve", help="run the JSON-lines-over-TCP audit daemon (repro.service)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765, help="bind port (default 8765; 0 = ephemeral)")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="1 (default) runs the in-process daemon with a thread pool; "
        "N >= 2 pre-forks N worker processes behind a sharding router "
        "(fingerprint routing, fleet-wide coalescing)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="pending analyses before requests are shed with an 'overloaded' "
        "error (per shard when --workers >= 2)",
    )
    serve.add_argument(
        "--max-payload",
        type=int,
        default=None,
        help="maximum request line size in bytes (default 1 MiB)",
    )
    serve.add_argument(
        "--worker-threads",
        type=int,
        default=None,
        help="analysis threads inside each fleet worker process "
        "(only with --workers >= 2; default 2)",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        help="fault-injection plan: inline JSON or a path to a JSON file "
        "(testing only; exported as REPRO_FAULT_PLAN so fleet workers "
        "inherit it)",
    )

    request = subparsers.add_parser(
        "request", help="send one operation to a running audit daemon"
    )
    request.add_argument("--host", default="127.0.0.1", help="daemon address")
    request.add_argument("--port", type=int, default=8765, help="daemon port")
    request.add_argument(
        "--payload",
        default=None,
        help="path to a JSON request document sent verbatim (overrides the flags below)",
    )
    request.add_argument(
        "--op",
        default=None,
        help="operation: decide, quick, audit, leakage, collusion, with_knowledge, "
        "verify, plan, ping, stats, shutdown, live-create, apply-delta, "
        "live-audit, subscribe (subscribe streams notifications until EOF)",
    )
    request.add_argument("--schema", default=None, help="path to the schema JSON file")
    request.add_argument("--secret", default=None, help="the confidential query (datalog)")
    request.add_argument(
        "--view",
        action="append",
        default=None,
        help="a view, optionally prefixed recipient=QUERY; repeat for several",
    )
    request.add_argument(
        "--probability", default=None, help="uniform tuple probability (e.g. 1/4)"
    )
    request.add_argument("--engine", default=None, help="verification engine name")
    request.add_argument(
        "--criticality-engine", default=None, help="criticality engine name"
    )
    request.add_argument(
        "--eval-engine", default=None, help="query-evaluation engine name"
    )
    request.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="total time budget in milliseconds (queue wait + computation); "
        "an expired budget exits 5 with a 'deadline-exceeded' error",
    )
    request.add_argument(
        "--retries",
        type=int,
        default=None,
        help="total attempts for retryable failures (overloaded, worker "
        "crash, dropped connection); default 1 = no retry",
    )
    request.add_argument(
        "--trace",
        action="store_true",
        help="ask the daemon for its server-side span tree, returned "
        "inline under result 'server.trace'",
    )
    request.add_argument(
        "--max-events",
        type=int,
        default=0,
        help="with --op subscribe: stop after this many streamed "
        "notifications (default 0 = stream until the daemon closes)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="send one traced operation and print its span waterfall",
    )
    for flag_parser in (trace,):
        flag_parser.add_argument("--host", default="127.0.0.1", help="daemon address")
        flag_parser.add_argument("--port", type=int, default=8765, help="daemon port")
        flag_parser.add_argument(
            "--payload",
            default=None,
            help="path to a JSON request document sent verbatim (overrides the flags below)",
        )
        flag_parser.add_argument(
            "--op", default=None, help="operation: decide, quick, audit, ..."
        )
        flag_parser.add_argument("--schema", default=None, help="path to the schema JSON file")
        flag_parser.add_argument("--secret", default=None, help="the confidential query (datalog)")
        flag_parser.add_argument(
            "--view",
            action="append",
            default=None,
            help="a view, optionally prefixed recipient=QUERY; repeat for several",
        )
        flag_parser.add_argument(
            "--probability", default=None, help="uniform tuple probability (e.g. 1/4)"
        )
        flag_parser.add_argument("--engine", default=None, help="verification engine name")
        flag_parser.add_argument(
            "--criticality-engine", default=None, help="criticality engine name"
        )
        flag_parser.add_argument(
            "--eval-engine", default=None, help="query-evaluation engine name"
        )
        flag_parser.add_argument("--deadline-ms", type=float, default=None, help=argparse.SUPPRESS)
        flag_parser.add_argument("--retries", type=int, default=None, help=argparse.SUPPRESS)
    trace.add_argument(
        "--json",
        action="store_true",
        help="print the raw trace document instead of the rendered waterfall",
    )

    top = subparsers.add_parser(
        "top",
        help="live per-shard/per-op view of a running daemon (stats + traces)",
    )
    top.add_argument("--host", default="127.0.0.1", help="daemon address")
    top.add_argument("--port", type=int, default=8765, help="daemon port")
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="number of polls before exiting (default 0 = until interrupted)",
    )

    return parser


def _dictionary_for(args, schema) -> Optional[Dictionary]:
    if getattr(args, "probability", None) is not None:
        return Dictionary.uniform(schema, Fraction(args.probability))
    return None


def _run_load(args, parser: argparse.ArgumentParser) -> int:
    """The ``load`` command: bulk-ingest facts into a sqlite store file."""
    from .storage import SQLiteFactStore

    if not args.facts and not args.csv:
        parser.error("load needs at least one JSON fact file or --csv relation=path")
    csv_sources: List[Tuple[str, str]] = []
    for spec in args.csv:
        relation, separator, path = spec.partition("=")
        if not separator or not relation or not path:
            parser.error(f"--csv expects RELATION=PATH, got {spec!r}")
        csv_sources.append((relation, path))
    with SQLiteFactStore(args.store) as store:
        total = 0
        for path in args.facts:
            loaded = store.load_json(path)
            total += loaded
            print(f"{path}: {loaded} facts")
        for relation, path in csv_sources:
            loaded = store.load_csv(path, relation)
            total += loaded
            print(f"{path} -> {relation}: {loaded} facts")
        print(f"{args.store}: {len(store)} facts total (+{total} this load)")
        for relation, arity, count in store.relations():
            print(f"  {relation}/{arity}: {count}")
    return 0


def _run_serve(args) -> int:
    """The ``serve`` command: run the audit daemon until shutdown.

    ``--workers N`` with N >= 2 boots the pre-forked fleet (a sharding
    router in front of N worker processes); the default and ``--workers
    1`` keep the single-process in-process daemon.
    """
    if getattr(args, "fault_plan", None):
        from .faults import FAULT_PLAN_ENV, FaultPlan

        FaultPlan.from_text(args.fault_plan)  # validate before booting
        os.environ[FAULT_PLAN_ENV] = args.fault_plan

    if args.workers is not None and args.workers >= 2:
        from .service.fleet import run_fleet

        options = {"workers": args.workers, "shard_queue_limit": args.queue_limit}
        if args.max_payload is not None:
            options["max_payload"] = args.max_payload
        if args.worker_threads is not None:
            options["worker_threads"] = args.worker_threads
        run_fleet(
            args.host,
            args.port,
            announce=lambda bound: print(
                f"repro-audit fleet ({args.workers} workers) listening on "
                f"{bound[0]}:{bound[1]}",
                flush=True,
            ),
            **options,
        )
        return 0

    from .service.server import run_server

    options = {"queue_limit": args.queue_limit}
    if args.workers is not None:
        options["workers"] = args.workers
    if args.max_payload is not None:
        options["max_payload"] = args.max_payload
    run_server(
        args.host,
        args.port,
        announce=lambda bound: print(
            f"repro-audit daemon listening on {bound[0]}:{bound[1]}", flush=True
        ),
        **options,
    )
    return 0


#: Structured service errors each get their own exit code so scripted
#: callers can distinguish "back off" from "retry now" from "give up".
_REQUEST_ERROR_EXITS = {
    "overloaded": 3,
    "worker-crashed": 4,
    "deadline-exceeded": 5,
}


def _request_parts(args, parser: argparse.ArgumentParser):
    """Assemble one service request from CLI flags (or ``--payload``).

    Returns ``(op, document, retry_policy)``; shared by ``request`` and
    ``trace``.
    """
    from .service.client import RetryPolicy

    if args.payload is not None:
        with open(args.payload, "r", encoding="utf8") as handle:
            document = json.load(handle)
        if not isinstance(document, dict) or "op" not in document:
            parser.error("--payload must hold a JSON object with an 'op' field")
    else:
        if args.op is None:
            parser.error(f"{args.command} needs --op (or --payload)")
        document = {"op": args.op}
        if args.schema is not None:
            with open(args.schema, "r", encoding="utf8") as handle:
                document["schema"] = json.load(handle)
        if args.secret is not None:
            document["secret"] = args.secret
        if args.view:
            document["views"] = _parse_views(args.view)
        if args.probability is not None:
            document["dictionary"] = {"tuple_probability": args.probability}
        if args.engine is not None:
            document["engine"] = args.engine
        if args.criticality_engine is not None:
            document["criticality_engine"] = args.criticality_engine
        if args.eval_engine is not None:
            document["eval_engine"] = args.eval_engine

    if args.deadline_ms is not None:
        if args.deadline_ms <= 0:
            parser.error("--deadline-ms must be positive")
        document["deadline_ms"] = args.deadline_ms
    retry_policy = None
    if args.retries is not None:
        if args.retries < 1:
            parser.error("--retries must be at least 1 (1 = no retry)")
        if args.retries > 1:
            retry_policy = RetryPolicy(max_attempts=args.retries)
    return document.pop("op"), document, retry_policy


def _send_request(args, op: str, document: dict, retry_policy) -> dict:
    from .service.client import AuditServiceClient

    with AuditServiceClient(args.host, args.port, retry_policy=retry_policy) as client:
        return client.request(op, **{
            key: value for key, value in document.items() if key != "id"
        })


def _run_trace(args, parser: argparse.ArgumentParser) -> int:
    """The ``trace`` command: one traced request, rendered as a waterfall.

    Exit codes match ``request``; the span tree is the daemon's own
    (router plus worker for a fleet), printed to stdout.
    """
    from .obs import render_waterfall

    op, document, retry_policy = _request_parts(args, parser)
    document["trace"] = {"return": True}
    response = _send_request(args, op, document, retry_policy)
    if not response.get("ok"):
        error_doc = response.get("error") or {}
        code = error_doc.get("code", "internal")
        print(f"error: [{code}] {error_doc.get('message', 'unknown service error')}", file=sys.stderr)
        return _REQUEST_ERROR_EXITS.get(code, 2)
    trace_doc = (response.get("server") or {}).get("trace")
    if not isinstance(trace_doc, dict):
        print("error: the daemon returned no trace document", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(trace_doc, indent=2))
    else:
        print(render_waterfall(trace_doc))
    verdict = (response.get("result") or {}).get("verdict")
    if verdict is not None:
        print(f"verdict: {verdict}")
    return 1 if verdict is False else 0


def _run_top(args) -> int:
    """The ``top`` command: poll a daemon's stats and traces, render live."""
    import time as _time

    from .obs import render_top
    from .service.client import AuditServiceClient

    iteration = 0
    try:
        with AuditServiceClient(args.host, args.port) as client:
            while True:
                iteration += 1
                stats = client.request("stats")
                traces = client.request("traces")
                stats_doc = stats.get("result") if stats.get("ok") else {}
                traces_doc = traces.get("result") if traces.get("ok") else None
                if sys.stdout.isatty() and iteration > 1:
                    print("\x1b[2J\x1b[H", end="")
                print(f"repro-audit top — {args.host}:{args.port}  (poll {iteration})")
                print(render_top(stats_doc or {}, traces_doc))
                if args.iterations and iteration >= args.iterations:
                    return 0
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _run_subscribe(args, document: dict) -> int:
    """Stream a live session's notifications as JSON lines on stdout.

    Each ``apply-delta`` landing on the subscribed session prints one
    notification line (re-audited verdicts, flipped views).  Runs until
    the daemon closes the stream, ``--max-events`` notifications have
    arrived, or the user interrupts; all of those exit 0.
    """
    from .service.client import AuditServiceClient, ServiceError

    live = document.get("live")
    fields = {
        key: value for key, value in document.items() if key not in ("id", "live")
    }
    try:
        with AuditServiceClient(args.host, args.port) as client:
            count = 0
            for notification in client.subscribe(live, **fields):
                print(json.dumps(notification), flush=True)
                count += 1
                if args.max_events and count >= args.max_events:
                    break
    except ServiceError as error:
        print(f"error: [{error.code}] {error.message}", file=sys.stderr)
        return _REQUEST_ERROR_EXITS.get(error.code, 2)
    except KeyboardInterrupt:
        pass
    return 0


def _run_request(args, parser: argparse.ArgumentParser) -> int:
    """The ``request`` command: one operation against a running daemon.

    Exit codes mirror the local commands — 0 = ok (and not a
    disclosure), 1 = the analysis found a disclosure, 2 = transport/
    protocol/other errors — plus one distinct code per retryable-class
    service error: 3 = overloaded, 4 = worker-crashed, 5 =
    deadline-exceeded (each with a one-line ``error: [code] message``
    on stderr).
    """
    op, document, retry_policy = _request_parts(args, parser)
    if op == "subscribe":
        return _run_subscribe(args, document)
    if getattr(args, "trace", False):
        document["trace"] = {"return": True}
    response = _send_request(args, op, document, retry_policy)
    print(json.dumps(response, indent=2))
    if not response.get("ok"):
        error_doc = response.get("error") or {}
        code = error_doc.get("code", "internal")
        message = error_doc.get("message", "unknown service error")
        print(f"error: [{code}] {message}", file=sys.stderr)
        return _REQUEST_ERROR_EXITS.get(code, 2)
    verdict = (response.get("result") or {}).get("verdict")
    if op == "quick":
        # Mirror the local command: only the sound "certainly secure"
        # certificate exits 0; an inconclusive check exits 1.
        return 0 if verdict is True else 1
    return 1 if verdict is False else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.command == "serve":
            return _run_serve(args)

        if args.command == "request":
            return _run_request(args, parser)

        if args.command == "trace":
            return _run_trace(args, parser)

        if args.command == "top":
            return _run_top(args)

        if args.command == "load":
            return _run_load(args, parser)

        if args.command == "plan":
            schema, dictionary, plan = load_publishing_plan(args.plan)
            session = AnalysisSession(
                schema,
                dictionary=dictionary,
                engine=args.engine,
                criticality_engine=args.criticality_engine,
                eval_engine=args.eval_engine,
            )
            result = session.audit_plan(plan)
            print(result.render())
            if args.show_cache_stats:
                print(f"cache: {session.cache_stats!r}")
            return 0 if result.secure else 1

        schema, configured_dictionary = load_audit_configuration(args.schema)
        dictionary = _dictionary_for(args, schema) or configured_dictionary
        auditor = SecurityAuditor(
            schema,
            dictionary=dictionary,
            criticality_engine=args.criticality_engine,
            eval_engine=args.eval_engine,
        )
        named_views = _parse_views(args.view)
        view_queries = list(named_views.values())

        if args.command == "decide":
            decision = auditor.decide(args.secret, view_queries)
            print(decision.explain())
            return 0 if decision.secure else 1

        if args.command == "quick":
            verdict = auditor.quick_check(args.secret, view_queries)
            print(verdict.explain())
            return 0 if verdict.certainly_secure else 1

        if args.command == "audit":
            report = auditor.audit(args.secret, named_views)
            if args.json:
                document = report.to_dict()
                document["observability"] = auditor.observability()
                print(json.dumps(document, indent=2))
            else:
                print(report.render())
            return 0 if report.all_secure else 1

        if args.command == "leakage":
            if dictionary is None:
                parser.error(
                    "leakage measurement needs --probability or a dictionary in the schema file"
                )
            result = auditor.measure_leakage(args.secret, view_queries, dictionary=dictionary)
            print(f"leak(S, V̄) = {float(result.leakage):.6g}")
            if result.worst_secret_rows is not None:
                print(f"worst secret rows: {result.worst_secret_rows}")
                print(f"worst view rows:   {result.worst_view_rows}")
                print(
                    f"prior {float(result.prior):.6g} -> posterior {float(result.posterior):.6g}"
                )
            return 0 if result.leakage == 0 else 1

        if args.command == "collusion":
            outcome = auditor.session.collusion(args.secret, named_views)
            print(outcome.report.summary())
            return 0 if outcome.secure else 1

        parser.error(f"unknown command {args.command!r}")
        return 2
    except OSError as error:
        # Unreadable schema/plan files must not exit 1: that status means
        # "disclosure found" and is consumed by CI gates.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
