"""Applied audit layer: classification, reports and the high-level auditor."""

from .auditor import SecurityAuditor
from .classification import DisclosureAssessment, DisclosureLevel, classify_disclosure
from .report import AuditFinding, AuditReport, render_table

__all__ = [
    "SecurityAuditor",
    "DisclosureAssessment",
    "DisclosureLevel",
    "classify_disclosure",
    "AuditFinding",
    "AuditReport",
    "render_table",
]
