"""Audit reports: structured findings plus plain-text rendering.

The audit layer aggregates the individual analyses (security decision,
practical check, leakage, classification, collusion) into a
:class:`AuditReport` that can be rendered as a plain-text table for
humans or consumed programmatically — this is the artefact a data owner
would attach to a data-exchange review.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from ..core.collusion import CollusionReport
from ..core.leakage import LeakageResult
from ..core.practical import PracticalVerdict
from ..core.security import SecurityDecision
from .classification import DisclosureAssessment, DisclosureLevel

__all__ = ["AuditFinding", "AuditReport", "render_table"]


@dataclass(frozen=True)
class AuditFinding:
    """One audited (secret, views) combination."""

    secret_name: str
    view_names: Tuple[str, ...]
    assessment: DisclosureAssessment
    practical: Optional[PracticalVerdict] = None
    leakage: Optional[LeakageResult] = None

    @property
    def level(self) -> DisclosureLevel:
        """The qualitative disclosure level."""
        return self.assessment.level

    @property
    def secure(self) -> bool:
        """The dictionary-independent security verdict."""
        return self.assessment.secure

    def row(self) -> Tuple[str, str, str, str, str]:
        """The finding as a row of the rendered table."""
        leak = self.leakage or self.assessment.leakage
        leak_text = "-" if leak is None else f"{float(leak.leakage):.3g}"
        practical_text = "-"
        if self.practical is not None:
            practical_text = "secure" if self.practical.certainly_secure else "flagged"
        return (
            self.secret_name,
            ", ".join(self.view_names),
            self.level.value,
            "yes" if self.secure else "no",
            f"{practical_text} / leak={leak_text}",
        )


@dataclass(frozen=True)
class AuditReport:
    """A collection of findings for one audit run."""

    findings: Tuple[AuditFinding, ...]
    collusion: Optional[CollusionReport] = None
    notes: Tuple[str, ...] = field(default_factory=tuple)
    #: Wall-clock seconds per audit phase (``classify``, ``practical``,
    #: ``collusion``), when the producer measured them.
    timings: Optional[Mapping[str, float]] = None

    @property
    def all_secure(self) -> bool:
        """True when every audited secret is perfectly secure."""
        return all(finding.secure for finding in self.findings)

    @property
    def violations(self) -> Tuple[AuditFinding, ...]:
        """Findings where security fails."""
        return tuple(f for f in self.findings if not f.secure)

    def to_dict(self) -> dict:
        """The report as one JSON-serialisable document.

        This is the machine-readable shape emitted by ``repro-audit
        audit --json`` and by the audit service's ``audit`` operation.
        """
        findings = []
        for finding in self.findings:
            leak = finding.leakage or finding.assessment.leakage
            document = {
                "secret": finding.secret_name,
                "views": list(finding.view_names),
                "disclosure": finding.level.value,
                "secure": finding.secure,
            }
            if finding.practical is not None:
                document["practical"] = {
                    "certainly_secure": finding.practical.certainly_secure,
                    "possibly_insecure": finding.practical.possibly_insecure,
                }
            if leak is not None:
                document["leakage"] = {
                    "exact": str(leak.leakage),
                    "float": float(leak.leakage),
                }
            findings.append(document)
        document = {
            "all_secure": self.all_secure,
            "findings": findings,
            "notes": list(self.notes),
            "rendered": self.render(),
        }
        if self.collusion is not None:
            document["collusion"] = {
                "secure_overall": self.collusion.secure_overall,
                "recipients": list(self.collusion.recipients),
                "insecure_recipients": list(self.collusion.insecure_recipients),
            }
        if self.timings is not None:
            document["timings_ms"] = {
                phase: round(seconds * 1000.0, 3)
                for phase, seconds in self.timings.items()
            }
        return document

    def render(self) -> str:
        """Render the report as a plain-text table (plus collusion summary)."""
        header = ("secret", "views", "disclosure", "secure", "details")
        rows = [finding.row() for finding in self.findings]
        text = render_table(header, rows)
        sections = [text]
        if self.collusion is not None:
            sections.append(self.collusion.summary())
        for note in self.notes:
            sections.append(f"note: {note}")
        return "\n\n".join(sections)


def render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a small fixed-width text table (no external dependencies)."""
    columns = len(header)
    widths = [len(str(header[i])) for i in range(columns)]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))

    def render_row(row: Sequence[str]) -> str:
        return " | ".join(str(row[i]).ljust(widths[i]) for i in range(columns))

    separator = "-+-".join("-" * w for w in widths)
    lines = [render_row(header), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
