"""The high-level auditing API.

:class:`SecurityAuditor` is the entry point a data owner uses before
publishing views: it wraps the exact decision procedures, the practical
quick check, the leakage measurement, the qualitative classification and
the collusion analysis behind a small number of methods, and produces
:class:`~repro.audit.report.AuditReport` objects.

Since the session redesign the auditor is a thin veneer over an
:class:`~repro.session.AnalysisSession`: every critical-tuple set it
computes is memoized in the session's LRU cache, so a multi-view audit
(or repeated audits over the same schema) pays for each ``crit_D(Q)``
exactly once.  The backing session is exposed as :attr:`session` for
callers who want compiled queries, batch plan audits or cache
statistics.

Typical use::

    auditor = SecurityAuditor(schema)
    report = auditor.audit(secret, views={"supplier": v1, "retailer": v2})
    print(report.render())
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.collusion import CollusionReport, largest_safe_view_set
from ..core.leakage import LeakageResult
from ..core.practical import practical_security_check
from ..core.prior import KnowledgeDecision, PriorKnowledge
from ..core.security import SecurityDecision
from ..cq.query import ConjunctiveQuery
from ..cq.union import UnionQuery
from ..exceptions import SecurityAnalysisError
from ..obs import span, tracing_enabled
from ..probability.dictionary import Dictionary
from ..relational.domain import Domain
from ..relational.schema import Schema
from ..session.cache import schema_fingerprint
from ..session.compile import as_query
from ..session.plan import PublishingPlan
from ..session.results import PlanAuditResult
from ..session.session import AnalysisSession
from .classification import DisclosureAssessment, classify_disclosure
from .report import AuditFinding, AuditReport

__all__ = ["SecurityAuditor"]

QueryLike = Union[str, ConjunctiveQuery, UnionQuery]


def _as_query(query: QueryLike) -> Union[ConjunctiveQuery, UnionQuery]:
    return as_query(query)


class SecurityAuditor:
    """Audits the information disclosure of publishing views.

    Parameters
    ----------
    schema:
        The database schema the secrets and views range over.
    dictionary:
        Optional dictionary used for quantitative (leakage) measurements;
        qualitative security verdicts are dictionary-independent and do
        not need it.
    domain:
        Optional analysis domain override (defaults to the
        Proposition 4.9 domain synthesised per analysis).
    session:
        Optional pre-built :class:`AnalysisSession` to audit through
        (shares its critical-tuple cache); one is created otherwise.
    engine:
        Verification-engine name forwarded to the session.
    criticality_engine:
        Criticality-engine name forwarded to the session (see
        :mod:`repro.core.criticality`); ignored when a pre-built
        ``session`` is supplied.
    eval_engine:
        Query-evaluation engine forwarded to the session
        (``"compiled"``, ``"naive"`` or ``"sql"``; ``None`` defers to
        ``REPRO_EVAL_ENGINE``); ignored when a pre-built ``session`` is
        supplied, whose own pin applies instead.
    """

    def __init__(
        self,
        schema: Schema,
        dictionary: Optional[Dictionary] = None,
        domain: Optional[Domain] = None,
        session: Optional[AnalysisSession] = None,
        engine: str = "exact",
        criticality_engine: Optional[str] = None,
        eval_engine: Optional[str] = None,
    ):
        if session is None:
            session = AnalysisSession(
                schema,
                dictionary=dictionary,
                engine=engine,
                domain=domain,
                criticality_engine=criticality_engine,
                eval_engine=eval_engine,
            )
        elif schema_fingerprint(session.schema) != schema_fingerprint(schema):
            raise SecurityAnalysisError(
                "the supplied session analyses a different schema than the "
                "auditor; build the auditor and the session over the same schema"
            )
        self._session = session
        self._schema = schema
        self._dictionary = dictionary if dictionary is not None else session.dictionary
        self._domain = domain

    @property
    def schema(self) -> Schema:
        """The schema being audited."""
        return self._schema

    @property
    def session(self) -> AnalysisSession:
        """The analysis session (cache, compiled queries, batch audits)."""
        return self._session

    # -- observability ------------------------------------------------------------
    @staticmethod
    def kernel_stats_for(dictionary: Optional[Dictionary]):
        """Counters of the shared probability kernels for a dictionary.

        ``None`` when there is no dictionary or no kernel has been built
        for it yet (qualitative audits never touch the kernel).
        """
        if dictionary is None:
            return None
        from ..probability.kernel import ProbabilityKernel

        return ProbabilityKernel.shared_stats(dictionary)

    def observability(self) -> dict:
        """Cache and kernel counters as one JSON-serialisable document.

        Surfaces the session's :class:`~repro.session.cache.CacheStats`
        and — when quantitative analyses ran — the shared
        :class:`~repro.probability.kernel.ProbabilityKernel` counters,
        so operators can check the hit rates they expect (the same
        document the audit service reports per session).
        """
        from ..cq.compiled import evaluation_stats

        with self._session.eval_scope():
            query_evaluation = evaluation_stats()
        document = {
            "critical_tuple_cache": self._session.cache_stats.to_dict(),
            "engines": {
                "verification": self._session.engine_name,
                "criticality": self._session.criticality_engine_name,
                "evaluation": query_evaluation["engine"],
            },
            "query_evaluation": query_evaluation,
            "tracing": {"enabled": tracing_enabled()},
        }
        kernels = self.kernel_stats_for(self._dictionary)
        if kernels is not None:
            document["probability_kernels"] = kernels
        return document

    # -- single-pair primitives -------------------------------------------------
    def decide(self, secret: QueryLike, views: Sequence[QueryLike] | QueryLike) -> SecurityDecision:
        """Dictionary-independent security decision (Theorem 4.5)."""
        return self._session.decide(
            secret, self._as_views(views), domain=self._domain
        ).decision

    def quick_check(self, secret: QueryLike, views: Sequence[QueryLike] | QueryLike):
        """The practical subgoal-unification check (Section 4.2)."""
        with self._session.eval_scope():
            return practical_security_check(_as_query(secret), self._as_views(views))

    def classify(
        self, secret: QueryLike, views: Sequence[QueryLike] | QueryLike
    ) -> DisclosureAssessment:
        """Grade the pair on the Total/Partial/Minute/None spectrum."""
        with self._session.eval_scope():
            return classify_disclosure(
                _as_query(secret),
                self._as_views(views),
                self._schema,
                dictionary=self._dictionary,
                domain=self._domain,
                critical_fn=self._session.critical_fn,
            )

    def measure_leakage(
        self,
        secret: QueryLike,
        views: Sequence[QueryLike] | QueryLike,
        dictionary: Optional[Dictionary] = None,
        **kwargs,
    ) -> LeakageResult:
        """Quantify the positive disclosure (Section 6.1)."""
        dictionary = dictionary or self._dictionary
        if dictionary is None:
            raise SecurityAnalysisError(
                "measuring leakage requires a dictionary; pass one to the auditor "
                "or to measure_leakage"
            )
        return self._session.leakage(
            secret, self._as_views(views), dictionary=dictionary, **kwargs
        ).measurement

    def decide_with_knowledge(
        self,
        secret: QueryLike,
        views: Sequence[QueryLike] | QueryLike,
        knowledge: PriorKnowledge,
    ) -> KnowledgeDecision:
        """Security under prior knowledge (Section 5)."""
        return self._session.with_knowledge(
            secret, self._as_views(views), knowledge, domain=self._domain
        ).decision

    # -- multi-view audits --------------------------------------------------------
    def audit(
        self,
        secret: QueryLike,
        views: Union[Sequence[QueryLike], Mapping[str, QueryLike]],
        include_collusion: bool = True,
    ) -> AuditReport:
        """Full audit of one secret against a set of views.

        ``views`` may be a mapping ``recipient → view`` (enabling the
        collusion section of the report) or a plain sequence.
        """
        secret_query = _as_query(secret)
        if isinstance(views, Mapping):
            named_views: Dict[str, ConjunctiveQuery] = {
                name: _as_query(view) for name, view in views.items()
            }
            view_list = list(named_views.values())
        else:
            view_list = [_as_query(v) for v in views]
            named_views = {f"user{i + 1}": v for i, v in enumerate(view_list)}
        if not view_list:
            raise SecurityAnalysisError("at least one view is required")

        timings: Dict[str, float] = {}
        with self._session.eval_scope():
            started = time.perf_counter()
            with span("audit.classify"):
                assessment = classify_disclosure(
                    secret_query,
                    view_list,
                    self._schema,
                    dictionary=self._dictionary,
                    domain=self._domain,
                    critical_fn=self._session.critical_fn,
                )
            timings["classify"] = time.perf_counter() - started
            started = time.perf_counter()
            with span("audit.practical"):
                practical = practical_security_check(secret_query, view_list)
            timings["practical"] = time.perf_counter() - started
        finding = AuditFinding(
            secret_name=secret_query.name,
            view_names=tuple(v.name for v in view_list),
            assessment=assessment,
            practical=practical,
            leakage=assessment.leakage,
        )
        collusion: Optional[CollusionReport] = None
        if include_collusion and len(view_list) > 1:
            started = time.perf_counter()
            with span("audit.collusion"):
                collusion = self._session.collusion(
                    secret_query, named_views, domain=self._domain
                ).report
            timings["collusion"] = time.perf_counter() - started
        notes: List[str] = []
        if practical.possibly_insecure and assessment.secure:
            notes.append(
                "the practical algorithm flagged this pair although it is secure — "
                "one of the rare false positives the paper mentions"
            )
        return AuditReport(
            findings=(finding,),
            collusion=collusion,
            notes=tuple(notes),
            timings=timings,
        )

    def audit_many(
        self,
        secrets: Sequence[QueryLike],
        views: Union[Sequence[QueryLike], Mapping[str, QueryLike]],
    ) -> AuditReport:
        """Audit several secrets against the same set of views."""
        if isinstance(views, Mapping):
            view_list = [_as_query(v) for v in views.values()]
        else:
            view_list = [_as_query(v) for v in views]
        findings: List[AuditFinding] = []
        for secret in secrets:
            secret_query = _as_query(secret)
            with self._session.eval_scope():
                assessment = classify_disclosure(
                    secret_query,
                    view_list,
                    self._schema,
                    dictionary=self._dictionary,
                    domain=self._domain,
                    critical_fn=self._session.critical_fn,
                )
                practical = practical_security_check(secret_query, view_list)
            findings.append(
                AuditFinding(
                    secret_name=secret_query.name,
                    view_names=tuple(v.name for v in view_list),
                    assessment=assessment,
                    practical=practical,
                    leakage=assessment.leakage,
                )
            )
        return AuditReport(findings=tuple(findings))

    def audit_plan(self, plan: PublishingPlan) -> PlanAuditResult:
        """Batch audit of a multi-secret / multi-view publishing plan.

        Delegates to :meth:`AnalysisSession.audit_plan`; every
        critical-tuple computation is shared across the batch.
        """
        return self._session.audit_plan(plan, domain=self._domain)

    def safe_publishing_plan(
        self,
        secret: QueryLike,
        candidate_views: Sequence[QueryLike],
    ) -> Tuple[ConjunctiveQuery, ...]:
        """The largest subset of candidate views publishable without any
        disclosure about the secret (Theorem 4.5 makes this per-view)."""
        with self._session.eval_scope():
            return largest_safe_view_set(
                _as_query(secret),
                [_as_query(v) for v in candidate_views],
                self._schema,
                domain=self._domain,
                critical_fn=self._session.critical_fn,
            )

    # -- helpers --------------------------------------------------------------------
    def _as_views(self, views: Sequence[QueryLike] | QueryLike) -> List[ConjunctiveQuery]:
        if isinstance(views, (str, ConjunctiveQuery, UnionQuery)):
            return [_as_query(views)]
        return [_as_query(v) for v in views]
