"""Qualitative disclosure classification (the right-hand columns of Table 1).

Table 1 of the paper grades query-view pairs on a spectrum:

========  ==========================================================
Total     the secret is answerable from the views
Partial   not answerable, but the views substantially shift the
          adversary's beliefs about secret answers
Minute    a disclosure exists but is negligible (e.g. only the
          database size is correlated)
None      the pair is secure (Theorem 4.5)
========  ==========================================================

:func:`classify_disclosure` reproduces this grading: perfect security ⇒
``NONE``; answerability over the analysis domain ⇒ ``TOTAL``; otherwise
the positive-leakage measure of Section 6.1 separates ``PARTIAL`` from
``MINUTE`` via a threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple

from ..cq.containment import is_answerable_from
from ..cq.query import ConjunctiveQuery
from ..cq.union import UnionQuery
from ..exceptions import IntractableAnalysisError, SecurityAnalysisError
from ..probability.dictionary import Dictionary
from ..relational.domain import Domain
from ..relational.schema import Schema
from ..core.domain_bounds import analysis_schema, untyped_schema
from ..core.leakage import LeakageResult, positive_leakage
from ..core.security import SecurityDecision, decide_security

__all__ = ["DisclosureLevel", "DisclosureAssessment", "classify_disclosure"]

#: Default relative-gain threshold separating "minute" from "partial".
DEFAULT_MINUTE_THRESHOLD = 0.5

#: Default per-tuple probability of the auditing dictionary when none is given.
#: Calibrated so that the Table 1 pairs separate cleanly around the default
#: minute/partial threshold (see benchmarks/bench_table1.py).
DEFAULT_AUDIT_PROBABILITY = Fraction(1, 4)


class DisclosureLevel(enum.Enum):
    """The qualitative spectrum of Table 1."""

    TOTAL = "total"
    PARTIAL = "partial"
    MINUTE = "minute"
    NONE = "none"


@dataclass(frozen=True)
class DisclosureAssessment:
    """The graded verdict for one (secret, views) pair.

    Attributes
    ----------
    level:
        The qualitative grade.
    secure:
        The dictionary-independent security verdict (Theorem 4.5).
    decision:
        The underlying :class:`SecurityDecision` (critical-tuple evidence).
    answerable:
        Whether the secret is answerable from the views over the analysis
        domain (``None`` when the check was skipped or intractable).
    leakage:
        The leakage measurement used to separate partial from minute
        (``None`` for secure or total disclosures).
    """

    level: DisclosureLevel
    secure: bool
    decision: SecurityDecision
    answerable: Optional[bool]
    leakage: Optional[LeakageResult]

    def summary(self) -> str:
        """One-line human-readable summary."""
        base = f"{self.decision.secret.name}: {self.level.value} disclosure"
        if self.level is DisclosureLevel.NONE:
            return base + " (query-view secure for every distribution)"
        if self.level is DisclosureLevel.TOTAL:
            return base + " (the secret is answerable from the views)"
        if self.leakage is not None:
            return base + f" (leakage {float(self.leakage.leakage):.3g})"
        return base


def _small_answerability_schema(
    schema: Schema,
    queries: Sequence[ConjunctiveQuery],
    max_tuples: int,
) -> Optional[Schema]:
    """A schema over the smallest domain usable for the answerability probe.

    The domain contains every constant the queries mention, padded with
    fresh symbols to at least two values; ``None`` is returned when even
    that domain yields a tuple space larger than ``max_tuples``.
    """
    from ..relational.schema import RelationSchema
    from ..relational.tuples import tuple_space_size

    constants: list[object] = []
    for query in queries:
        for value in sorted(query.constants, key=repr):
            if value not in constants:
                constants.append(value)
    values = list(constants)
    pad = 0
    while len(values) < 2:
        values.append(f"probe{pad}")
        pad += 1
    domain = Domain(values, name="D_answerability")
    stripped = [
        RelationSchema(relation.name, relation.attributes, {}, relation.key)
        for relation in schema
    ]
    candidate = Schema(stripped, domain=domain)
    if tuple_space_size(candidate) > max_tuples:
        return None
    return candidate


def classify_disclosure(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery] | ConjunctiveQuery,
    schema: Schema,
    dictionary: Optional[Dictionary] = None,
    domain: Optional[Domain] = None,
    minute_threshold: float = DEFAULT_MINUTE_THRESHOLD,
    answerability_max_tuples: int = 16,
    critical_fn=None,
) -> DisclosureAssessment:
    """Grade a (secret, views) pair on the Total/Partial/Minute/None spectrum.

    Parameters
    ----------
    dictionary:
        Dictionary used for the leakage measurement.  When omitted, a
        uniform dictionary with per-tuple probability 1/8 over the
        analysis domain is used (small enough to behave like the sparse
        instances of the paper's examples while keeping exact arithmetic
        cheap).
    minute_threshold:
        Relative-gain threshold below which a disclosure counts as
        minute.
    critical_fn:
        Optional cached critical-tuple provider (supplied by the
        session-backed auditor); omitted, the underlying decision
        delegates to the default session.
    """
    if isinstance(views, (ConjunctiveQuery, UnionQuery)):
        views = [views]
    views = list(views)
    if not views:
        raise SecurityAnalysisError("at least one view is required")

    decision = decide_security(
        secret, views, schema, domain=domain, critical_fn=critical_fn
    )
    if decision.secure:
        return DisclosureAssessment(
            level=DisclosureLevel.NONE,
            secure=True,
            decision=decision,
            answerable=False,
            leakage=None,
        )

    working_schema = analysis_schema(schema, [secret, *views])
    if domain is not None:
        working_schema = untyped_schema(schema, domain)

    # Answerability is checked over a deliberately small domain: if the
    # secret is a function of the views over every domain then it is one
    # over the small domain too, so a negative answer here is conclusive;
    # a positive answer is the strong evidence of total disclosure that
    # Table 1's first row illustrates.
    answerable: Optional[bool]
    answerability_schema = _small_answerability_schema(
        schema, [secret, *views], answerability_max_tuples
    )
    if answerability_schema is None:
        answerable = None
    else:
        try:
            answerable = is_answerable_from(
                secret, views, answerability_schema, max_tuples=answerability_max_tuples
            )
        except IntractableAnalysisError:
            answerable = None
    if answerable:
        return DisclosureAssessment(
            level=DisclosureLevel.TOTAL,
            secure=False,
            decision=decision,
            answerable=True,
            leakage=None,
        )

    if dictionary is None:
        # The default auditing dictionary lives on a small domain (the same
        # one used for the answerability probe) so that the exact leakage
        # computation stays cheap; callers with a concrete dictionary pass
        # it explicitly.
        leakage_schema = answerability_schema or working_schema
        dictionary = Dictionary.uniform(leakage_schema, DEFAULT_AUDIT_PROBABILITY)
    leakage: Optional[LeakageResult]
    try:
        leakage = positive_leakage(secret, views, dictionary)
    except IntractableAnalysisError:
        leakage = None

    if leakage is None:
        level = DisclosureLevel.PARTIAL
    elif float(leakage.leakage) <= minute_threshold:
        level = DisclosureLevel.MINUTE
    else:
        level = DisclosureLevel.PARTIAL
    return DisclosureAssessment(
        level=level,
        secure=False,
        decision=decision,
        answerable=answerable,
        leakage=leakage,
    )
