"""Seeded request-workload generation and replay.

The three moving parts:

* :func:`table1_templates` — one request document per (operation,
  Table 1 row) combination over the employee schema;
* :func:`generate_workload` — a seeded mix of template draws, random
  query-view pairs and exact duplicates, sized and weighted by a
  :class:`WorkloadSpec`;
* :func:`replay_workload` — drive a live daemon with the generated
  requests over several concurrent connections and summarise the
  outcome (throughput, latency percentiles, duplicate hits).

Workload files are JSON: ``{"version": 1, "requests": [...]}``; every
request validates against :func:`repro.service.protocol.parse_request`.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..bench.schemas import employee_schema, table1_pairs
from ..bench.workloads import WorkloadConfig, random_query_view_pair
from ..exceptions import ReproError
from ..io import schema_to_dict
from ..service.protocol import parse_request

__all__ = [
    "WorkloadSpec",
    "InstanceSpec",
    "table1_templates",
    "generate_workload",
    "generate_facts",
    "generate_instance",
    "save_workload",
    "load_workload",
    "replay_workload",
]

#: Workload file format version.
WORKLOAD_VERSION = 1

#: Default operation weights of the mixed workload.
DEFAULT_MIX: Dict[str, float] = {
    "decide": 4.0,
    "quick": 2.0,
    "audit": 1.0,
    "collusion": 1.0,
    "plan": 0.5,
    "leakage": 0.5,
    "verify": 0.5,
    "with_knowledge": 0.5,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one generated workload.

    Attributes
    ----------
    seed:
        Everything is drawn from ``random.Random(seed)``.
    requests:
        Number of request documents to emit.
    mix:
        Operation → weight; operations absent from the mix are never
        drawn.  Only consulted for Table 1 draws (random-schema draws
        use the dictionary-free ``decide`` / ``quick`` / ``collusion``).
    duplicate_fraction:
        Probability that a request repeats an earlier one verbatim
        (coalescing / result-cache pressure under replay).
    random_fraction:
        Probability that a non-duplicate request uses a random schema
        and query pair instead of a Table 1 template.
    probability:
        Uniform tuple probability attached to Table 1 requests (needed
        by ``leakage`` / ``verify``; harmless elsewhere).
    random_config:
        Shape of the random schemas/queries (see
        :class:`repro.bench.workloads.WorkloadConfig`).
    """

    seed: int = 0
    requests: int = 100
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    duplicate_fraction: float = 0.3
    random_fraction: float = 0.2
    probability: str = "1/4"
    random_config: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(relations=2, max_arity=2, domain_size=2)
    )


def table1_templates(probability: str = "1/4") -> List[Dict[str, Any]]:
    """One request document per (operation, Table 1 row).

    Every document targets the 3-variable ``Emp(n, d, p)`` schema and is
    a complete, valid protocol request.
    """
    schema_doc = schema_to_dict(employee_schema())
    schema_doc["tuple_probability"] = probability
    rows = table1_pairs()
    templates: List[Dict[str, Any]] = []
    for row in rows:
        secret = str(row.secret)
        views = {f"user{i + 1}": str(view) for i, view in enumerate(row.views)}
        base = {"schema": schema_doc, "secret": secret, "views": views}
        templates.append({"op": "decide", **base})
        templates.append({"op": "quick", **base})
        templates.append({"op": "audit", **base})
        templates.append({"op": "collusion", **base})
        templates.append({"op": "leakage", **base})
        templates.append({"op": "verify", **base})
        templates.append(
            {
                "op": "with_knowledge",
                **base,
                "knowledge": {"kind": "keys", "keys": {"Emp": [0]}},
            }
        )
    templates.append(
        {
            "op": "plan",
            "schema": schema_doc,
            "secrets": {f"s{row.row}": str(row.secret) for row in rows},
            "views": {
                f"r{row.row}v{i}": str(view)
                for row in rows
                for i, view in enumerate(row.views)
            },
        }
    )
    return templates


def _random_request(spec: WorkloadSpec, rng: random.Random) -> Dict[str, Any]:
    """A dictionary-free request over a random schema and query pair."""
    schema, secret, view = random_query_view_pair(
        spec.random_config, seed=rng.randrange(1 << 30)
    )
    document = {
        "op": rng.choice(("decide", "quick", "collusion")),
        "schema": schema_to_dict(schema),
        "secret": str(secret),
        "views": [str(view)],
    }
    return document


def _weighted_choice(rng: random.Random, weights: Mapping[str, float]) -> str:
    operations = sorted(weights)
    total = sum(max(0.0, weights[op]) for op in operations)
    if total <= 0:
        raise ReproError("the workload mix must have at least one positive weight")
    mark = rng.random() * total
    for op in operations:
        mark -= max(0.0, weights[op])
        if mark <= 0:
            return op
    return operations[-1]


def generate_workload(spec: WorkloadSpec) -> List[Dict[str, Any]]:
    """The request documents of one seeded workload.

    Deterministic: equal specs generate equal lists.  Every emitted
    document passes :func:`~repro.service.protocol.parse_request`.
    """
    if spec.requests < 1:
        raise ReproError("a workload needs at least one request")
    rng = random.Random(spec.seed)
    templates = table1_templates(spec.probability)
    by_operation: Dict[str, List[Dict[str, Any]]] = {}
    for template in templates:
        by_operation.setdefault(template["op"], []).append(template)
    mix = {op: weight for op, weight in spec.mix.items() if op in by_operation}
    if not mix:
        raise ReproError(
            f"no mix operation is generatable; choose from {sorted(by_operation)}"
        )
    requests: List[Dict[str, Any]] = []
    for _ in range(spec.requests):
        if requests and rng.random() < spec.duplicate_fraction:
            requests.append(dict(rng.choice(requests)))
            continue
        if rng.random() < spec.random_fraction:
            document = _random_request(spec, rng)
        else:
            document = dict(rng.choice(by_operation[_weighted_choice(rng, mix)]))
        parse_request(document)  # what we emit must be servable
        requests.append(document)
    return requests


# ---------------------------------------------------------------------------
# Large-instance generation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class InstanceSpec:
    """Parameters of one seeded large instance.

    Sized for the 10^5–10^6-fact stores the sql evaluation engine
    targets; generation is streaming (:func:`generate_facts` yields),
    so a million facts never need to exist in one Python list.

    Attributes
    ----------
    seed:
        Everything is drawn from ``random.Random(seed)``.
    facts:
        Number of facts to draw (duplicates possible — stores and
        instances keep set semantics, so the final count may be
        slightly lower; with ``domain_size**2`` well above ``facts``
        the shortfall is negligible).
    relations:
        ``name → arity`` mapping of the schema to populate.
    domain_size:
        Values are ``v0 .. v{domain_size-1}`` column indices drawn as
        integers.
    skew:
        ``0.0`` draws values uniformly; larger values concentrate the
        mass on small indices (each draw is
        ``int(domain_size * u**(1 + skew))`` for uniform ``u``), which
        makes some join keys hot — the regime where index choice
        matters.
    relation_weights:
        Optional ``name → weight`` skew across relations; unlisted
        relations get weight 1.
    """

    seed: int = 0
    facts: int = 100_000
    relations: Mapping[str, int] = field(
        default_factory=lambda: {"R": 2, "S": 2, "T": 1}
    )
    domain_size: int = 1000
    skew: float = 0.0
    relation_weights: Mapping[str, float] = field(default_factory=dict)


def generate_facts(spec: InstanceSpec):
    """Yield the facts of one seeded large instance (deterministic).

    A generator, so 10^6-fact instances stream straight into
    :meth:`~repro.storage.sqlite.SQLiteFactStore.load_facts` without a
    list in between.
    """
    from ..relational.tuples import Fact

    if spec.facts < 0:
        raise ReproError("an instance cannot have a negative fact count")
    if spec.domain_size < 1:
        raise ReproError("the instance domain needs at least one value")
    if not spec.relations:
        raise ReproError("the instance spec names no relations")
    rng = random.Random(spec.seed)
    names = sorted(spec.relations)
    weights = [max(0.0, float(spec.relation_weights.get(name, 1.0))) for name in names]
    if sum(weights) <= 0:
        raise ReproError("the relation weights must have at least one positive entry")
    exponent = 1.0 + max(0.0, spec.skew)

    def draw_value() -> int:
        return int(spec.domain_size * rng.random() ** exponent) % spec.domain_size

    for _ in range(spec.facts):
        name = rng.choices(names, weights=weights)[0]
        arity = spec.relations[name]
        yield Fact(name, tuple(draw_value() for _ in range(arity)))


def generate_instance(spec: InstanceSpec):
    """The seeded instance as an in-memory
    :class:`~repro.relational.instance.Instance` (set semantics)."""
    from ..relational.instance import Instance

    return Instance(generate_facts(spec))


# ---------------------------------------------------------------------------
# Workload files
# ---------------------------------------------------------------------------
def save_workload(requests: Sequence[Mapping[str, Any]], path: Union[str, Path]) -> None:
    """Write a replayable workload file."""
    document = {"version": WORKLOAD_VERSION, "requests": list(requests)}
    with open(path, "w", encoding="utf8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def load_workload(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a workload file back; every request is re-validated."""
    with open(path, "r", encoding="utf8") as handle:
        document = json.load(handle)
    if not isinstance(document, Mapping) or "requests" not in document:
        raise ReproError(f"{path} is not a workload file (no 'requests' list)")
    if document.get("version") != WORKLOAD_VERSION:
        raise ReproError(
            f"unsupported workload version {document.get('version')!r}; "
            f"this build reads version {WORKLOAD_VERSION}"
        )
    requests = [dict(request) for request in document["requests"]]
    for request in requests:
        parse_request(request)
    return requests


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
def replay_workload(
    requests: Sequence[Mapping[str, Any]],
    host: str,
    port: int,
    concurrency: int = 8,
    timeout: float = 120.0,
    *,
    retry_policy: Optional[Any] = None,
) -> Dict[str, Any]:
    """Drive a live daemon with a workload over concurrent connections.

    Each worker thread owns one connection and pulls requests from a
    shared queue, so duplicates genuinely race each other through the
    server's coalescing path.  Returns a summary document::

        {"requests": N, "ok": N, "errors": N, "overloaded": N,
         "deadline_exceeded": N, "seconds": s, "requests_per_second": r,
         "latency_ms": {"p50": ..., "p95": ..., "max": ...},
         "coalesced": N, "cached": N,
         "fleet_coalesced": N, "fleet_cached": N}

    ``overloaded`` (structured load-shedding answers) and
    ``deadline_exceeded`` (expired ``deadline_ms`` budgets) count
    separately from hard ``errors``: both are the server behaving as
    designed.  Against a multi-worker fleet,
    ``fleet_coalesced``/``fleet_cached`` count the answers the router
    satisfied without reaching any worker (they are subsets of
    ``coalesced``/``cached``).

    ``retry_policy`` (a :class:`repro.service.client.RetryPolicy`) is
    handed to every replay connection, so chaos runs can ride over
    injected worker crashes and shed requests.
    """
    from ..service.client import AuditServiceClient
    from ..service.metrics import percentile

    if concurrency < 1:
        raise ReproError("replay needs at least one connection")
    pending: "queue.Queue[Tuple[int, Mapping[str, Any]]]" = queue.Queue()
    for index, request in enumerate(requests):
        pending.put((index, request))
    lock = threading.Lock()
    outcomes = {
        "ok": 0,
        "errors": 0,
        "overloaded": 0,
        "deadline_exceeded": 0,
        "coalesced": 0,
        "cached": 0,
        "fleet_coalesced": 0,
        "fleet_cached": 0,
    }
    latencies: List[float] = []
    failures: List[str] = []

    def _connect() -> "AuditServiceClient":
        return AuditServiceClient(
            host, port, timeout=timeout, retry_policy=retry_policy
        )

    def _drain() -> None:
        client = _connect()
        try:
            while True:
                try:
                    index, request = pending.get_nowait()
                except queue.Empty:
                    return
                fields = {key: value for key, value in request.items() if key != "op"}
                started = time.perf_counter()
                try:
                    response = client.request(request["op"], **fields)
                except Exception as error:
                    # A transport failure must cost exactly one request:
                    # account it, reconnect, keep draining the queue.
                    with lock:
                        outcomes["errors"] += 1
                        if len(failures) < 5:
                            failures.append(
                                f"request {index} ({request.get('op')}): "
                                f"transport: {error}"
                            )
                    client.close()
                    client = _connect()
                    continue
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                with lock:
                    latencies.append(elapsed_ms)
                    if response.get("ok"):
                        outcomes["ok"] += 1
                        server = response.get("server") or {}
                        if server.get("coalesced"):
                            outcomes["coalesced"] += 1
                        if server.get("cached"):
                            outcomes["cached"] += 1
                        if server.get("fleet_coalesced"):
                            outcomes["fleet_coalesced"] += 1
                        if server.get("fleet_cached"):
                            outcomes["fleet_cached"] += 1
                    else:
                        error = response.get("error") or {}
                        if error.get("code") == "overloaded":
                            outcomes["overloaded"] += 1
                        elif error.get("code") == "deadline-exceeded":
                            outcomes["deadline_exceeded"] += 1
                        else:
                            outcomes["errors"] += 1
                            if len(failures) < 5:
                                failures.append(
                                    f"request {index} ({request.get('op')}): "
                                    f"{error.get('code')}: {error.get('message')}"
                                )
        finally:
            client.close()

    threads = [
        threading.Thread(target=_drain, name=f"replay-{i}", daemon=True)
        for i in range(min(concurrency, len(requests) or 1))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    seconds = time.perf_counter() - started
    ordered = sorted(latencies)
    summary: Dict[str, Any] = {
        "requests": len(requests),
        **outcomes,
        "seconds": round(seconds, 4),
        "requests_per_second": round(len(latencies) / seconds, 2) if seconds else 0.0,
    }
    if ordered:
        summary["latency_ms"] = {
            "p50": round(percentile(ordered, 50), 3),
            "p95": round(percentile(ordered, 95), 3),
            "max": round(ordered[-1], 3),
        }
    if failures:
        summary["failures"] = failures
    return summary
