"""Seeded request-workload generation and replay.

The three moving parts:

* :func:`table1_templates` — one request document per (operation,
  Table 1 row) combination over the employee schema;
* :func:`generate_workload` — a seeded mix of template draws, random
  query-view pairs and exact duplicates, sized and weighted by a
  :class:`WorkloadSpec`;
* :func:`replay_workload` — drive a live daemon with the generated
  requests over several concurrent connections and summarise the
  outcome (throughput, latency percentiles, duplicate hits).

For the incremental engine, :func:`generate_delta_stream` emits a
seeded ``live-create`` + ``apply-delta`` request sequence (configurable
insert/delete/publish/retract mix and per-delta churn) and
:func:`delta_stream_state` mirrors it to the expected final state;
:func:`replay_workload` serialises live-session requests on one
dedicated connection and can hold a ``subscribe`` stream open while the
deltas land.

Workload files are JSON: ``{"version": 1, "requests": [...]}``; every
request validates against :func:`repro.service.protocol.parse_request`.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..bench.schemas import employee_schema, table1_pairs
from ..bench.workloads import WorkloadConfig, random_query_view_pair
from ..exceptions import ReproError
from ..io import schema_to_dict
from ..service.protocol import parse_request

__all__ = [
    "WorkloadSpec",
    "InstanceSpec",
    "DeltaStreamSpec",
    "table1_templates",
    "generate_workload",
    "generate_facts",
    "generate_instance",
    "generate_delta_stream",
    "delta_stream_state",
    "save_workload",
    "load_workload",
    "replay_workload",
]

#: Workload file format version.
WORKLOAD_VERSION = 1

#: Default operation weights of the mixed workload.
DEFAULT_MIX: Dict[str, float] = {
    "decide": 4.0,
    "quick": 2.0,
    "audit": 1.0,
    "collusion": 1.0,
    "plan": 0.5,
    "leakage": 0.5,
    "verify": 0.5,
    "with_knowledge": 0.5,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one generated workload.

    Attributes
    ----------
    seed:
        Everything is drawn from ``random.Random(seed)``.
    requests:
        Number of request documents to emit.
    mix:
        Operation → weight; operations absent from the mix are never
        drawn.  Only consulted for Table 1 draws (random-schema draws
        use the dictionary-free ``decide`` / ``quick`` / ``collusion``).
    duplicate_fraction:
        Probability that a request repeats an earlier one verbatim
        (coalescing / result-cache pressure under replay).
    random_fraction:
        Probability that a non-duplicate request uses a random schema
        and query pair instead of a Table 1 template.
    probability:
        Uniform tuple probability attached to Table 1 requests (needed
        by ``leakage`` / ``verify``; harmless elsewhere).
    random_config:
        Shape of the random schemas/queries (see
        :class:`repro.bench.workloads.WorkloadConfig`).
    """

    seed: int = 0
    requests: int = 100
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    duplicate_fraction: float = 0.3
    random_fraction: float = 0.2
    probability: str = "1/4"
    random_config: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(relations=2, max_arity=2, domain_size=2)
    )


def table1_templates(probability: str = "1/4") -> List[Dict[str, Any]]:
    """One request document per (operation, Table 1 row).

    Every document targets the 3-variable ``Emp(n, d, p)`` schema and is
    a complete, valid protocol request.
    """
    schema_doc = schema_to_dict(employee_schema())
    schema_doc["tuple_probability"] = probability
    rows = table1_pairs()
    templates: List[Dict[str, Any]] = []
    for row in rows:
        secret = str(row.secret)
        views = {f"user{i + 1}": str(view) for i, view in enumerate(row.views)}
        base = {"schema": schema_doc, "secret": secret, "views": views}
        templates.append({"op": "decide", **base})
        templates.append({"op": "quick", **base})
        templates.append({"op": "audit", **base})
        templates.append({"op": "collusion", **base})
        templates.append({"op": "leakage", **base})
        templates.append({"op": "verify", **base})
        templates.append(
            {
                "op": "with_knowledge",
                **base,
                "knowledge": {"kind": "keys", "keys": {"Emp": [0]}},
            }
        )
    templates.append(
        {
            "op": "plan",
            "schema": schema_doc,
            "secrets": {f"s{row.row}": str(row.secret) for row in rows},
            "views": {
                f"r{row.row}v{i}": str(view)
                for row in rows
                for i, view in enumerate(row.views)
            },
        }
    )
    return templates


def _random_request(spec: WorkloadSpec, rng: random.Random) -> Dict[str, Any]:
    """A dictionary-free request over a random schema and query pair."""
    schema, secret, view = random_query_view_pair(
        spec.random_config, seed=rng.randrange(1 << 30)
    )
    document = {
        "op": rng.choice(("decide", "quick", "collusion")),
        "schema": schema_to_dict(schema),
        "secret": str(secret),
        "views": [str(view)],
    }
    return document


def _weighted_choice(rng: random.Random, weights: Mapping[str, float]) -> str:
    operations = sorted(weights)
    total = sum(max(0.0, weights[op]) for op in operations)
    if total <= 0:
        raise ReproError("the workload mix must have at least one positive weight")
    mark = rng.random() * total
    for op in operations:
        mark -= max(0.0, weights[op])
        if mark <= 0:
            return op
    return operations[-1]


def generate_workload(spec: WorkloadSpec) -> List[Dict[str, Any]]:
    """The request documents of one seeded workload.

    Deterministic: equal specs generate equal lists.  Every emitted
    document passes :func:`~repro.service.protocol.parse_request`.
    """
    if spec.requests < 1:
        raise ReproError("a workload needs at least one request")
    rng = random.Random(spec.seed)
    templates = table1_templates(spec.probability)
    by_operation: Dict[str, List[Dict[str, Any]]] = {}
    for template in templates:
        by_operation.setdefault(template["op"], []).append(template)
    mix = {op: weight for op, weight in spec.mix.items() if op in by_operation}
    if not mix:
        raise ReproError(
            f"no mix operation is generatable; choose from {sorted(by_operation)}"
        )
    requests: List[Dict[str, Any]] = []
    for _ in range(spec.requests):
        if requests and rng.random() < spec.duplicate_fraction:
            requests.append(dict(rng.choice(requests)))
            continue
        if rng.random() < spec.random_fraction:
            document = _random_request(spec, rng)
        else:
            document = dict(rng.choice(by_operation[_weighted_choice(rng, mix)]))
        parse_request(document)  # what we emit must be servable
        requests.append(document)
    return requests


# ---------------------------------------------------------------------------
# Large-instance generation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class InstanceSpec:
    """Parameters of one seeded large instance.

    Sized for the 10^5–10^6-fact stores the sql evaluation engine
    targets; generation is streaming (:func:`generate_facts` yields),
    so a million facts never need to exist in one Python list.

    Attributes
    ----------
    seed:
        Everything is drawn from ``random.Random(seed)``.
    facts:
        Number of facts to draw (duplicates possible — stores and
        instances keep set semantics, so the final count may be
        slightly lower; with ``domain_size**2`` well above ``facts``
        the shortfall is negligible).
    relations:
        ``name → arity`` mapping of the schema to populate.
    domain_size:
        Values are ``v0 .. v{domain_size-1}`` column indices drawn as
        integers.
    skew:
        ``0.0`` draws values uniformly; larger values concentrate the
        mass on small indices (each draw is
        ``int(domain_size * u**(1 + skew))`` for uniform ``u``), which
        makes some join keys hot — the regime where index choice
        matters.
    relation_weights:
        Optional ``name → weight`` skew across relations; unlisted
        relations get weight 1.
    """

    seed: int = 0
    facts: int = 100_000
    relations: Mapping[str, int] = field(
        default_factory=lambda: {"R": 2, "S": 2, "T": 1}
    )
    domain_size: int = 1000
    skew: float = 0.0
    relation_weights: Mapping[str, float] = field(default_factory=dict)


def generate_facts(spec: InstanceSpec):
    """Yield the facts of one seeded large instance (deterministic).

    A generator, so 10^6-fact instances stream straight into
    :meth:`~repro.storage.sqlite.SQLiteFactStore.load_facts` without a
    list in between.
    """
    from ..relational.tuples import Fact

    if spec.facts < 0:
        raise ReproError("an instance cannot have a negative fact count")
    if spec.domain_size < 1:
        raise ReproError("the instance domain needs at least one value")
    if not spec.relations:
        raise ReproError("the instance spec names no relations")
    rng = random.Random(spec.seed)
    names = sorted(spec.relations)
    weights = [max(0.0, float(spec.relation_weights.get(name, 1.0))) for name in names]
    if sum(weights) <= 0:
        raise ReproError("the relation weights must have at least one positive entry")
    exponent = 1.0 + max(0.0, spec.skew)

    def draw_value() -> int:
        return int(spec.domain_size * rng.random() ** exponent) % spec.domain_size

    for _ in range(spec.facts):
        name = rng.choices(names, weights=weights)[0]
        arity = spec.relations[name]
        yield Fact(name, tuple(draw_value() for _ in range(arity)))


def generate_instance(spec: InstanceSpec):
    """The seeded instance as an in-memory
    :class:`~repro.relational.instance.Instance` (set semantics)."""
    from ..relational.instance import Instance

    return Instance(generate_facts(spec))


# ---------------------------------------------------------------------------
# Delta streams (incremental live sessions)
# ---------------------------------------------------------------------------
#: Default event weights of one delta stream: fact churn dominates, view
#: churn (the expensive re-audit trigger) stays rare — the regime the
#: incremental engine is built for.
DEFAULT_DELTA_MIX: Dict[str, float] = {
    "insert": 6.0,
    "delete": 3.0,
    "publish": 0.5,
    "retract": 0.5,
}

#: Queries over the default ``{"R": 2, "S": 2, "T": 1}`` relations.
DEFAULT_DELTA_SECRETS: Dict[str, str] = {
    "join": "Secret(x, z) :- R(x, y), S(y, z)",
}
DEFAULT_DELTA_VIEWS: Dict[str, str] = {
    "left": "V(x) :- R(x, y)",
    "unary": "W(x) :- T(x)",
}
#: Templates for stream-published views; ``{name}`` receives a fresh
#: head name per publish event.
DEFAULT_PUBLISH_POOL: Tuple[str, ...] = (
    "{name}(x, y) :- R(x, y)",
    "{name}(y) :- S(y, z)",
    "{name}(x, z) :- R(x, y), S(y, z)",
    "{name}(x) :- T(x)",
)


@dataclass(frozen=True)
class DeltaStreamSpec:
    """Parameters of one seeded live-session delta stream.

    The generated sequence starts with one ``live-create`` request
    (schema, secrets, views and the initial facts of ``instance``)
    followed by ``deltas`` ``apply-delta`` requests.  Each delta holds
    up to ``churn`` events drawn from ``mix``: inserts draw fresh
    facts, deletes pick live ones (the generator mirrors the session
    state, so deletes always hit), publishes add a fresh view from
    ``publish_pool`` and retracts drop a previously stream-published
    view.  Custom ``instance.relations`` need matching ``secrets`` /
    ``views`` / ``publish_pool`` queries.
    """

    seed: int = 0
    deltas: int = 64
    live: str = "live-0"
    instance: InstanceSpec = field(
        default_factory=lambda: InstanceSpec(facts=200, domain_size=50)
    )
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_DELTA_MIX))
    churn: int = 4
    secrets: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_DELTA_SECRETS)
    )
    views: Mapping[str, str] = field(default_factory=lambda: dict(DEFAULT_DELTA_VIEWS))
    publish_pool: Sequence[str] = DEFAULT_PUBLISH_POOL
    eval_engine: Optional[str] = None


def _fact_key(document: Sequence[Any]) -> Tuple[str, Tuple[Any, ...]]:
    return (document[0], tuple(document[1]))


def generate_delta_stream(spec: DeltaStreamSpec) -> List[Dict[str, Any]]:
    """The request documents of one seeded delta stream (deterministic).

    ``requests[0]`` is the ``live-create``; every later document is an
    ``apply-delta`` against the same session.  Every emitted document
    passes :func:`~repro.service.protocol.parse_request`.  Replay them
    *in order* on one connection (``replay_workload`` does) — fact
    deltas only commute when no delta removes a fact an unapplied one
    adds.
    """
    from ..io import schema_to_dict as _schema_to_dict
    from ..relational.domain import Domain
    from ..relational.schema import RelationSchema, Schema

    if spec.deltas < 1:
        raise ReproError("a delta stream needs at least one delta")
    if spec.churn < 1:
        raise ReproError("a delta stream needs churn >= 1")
    if not spec.secrets:
        raise ReproError("a delta stream needs at least one secret")
    mix = {kind: weight for kind, weight in spec.mix.items() if weight > 0}
    unknown = set(mix) - {"insert", "delete", "publish", "retract"}
    if unknown:
        raise ReproError(f"unknown delta-stream events: {sorted(unknown)}")
    rng = random.Random(spec.seed)
    schema = Schema(
        tuple(
            RelationSchema(name, tuple(f"a{i}" for i in range(arity)))
            for name, arity in sorted(spec.instance.relations.items())
        ),
        domain=Domain(range(spec.instance.domain_size)),
    )

    state: set = set()
    initial: List[List[Any]] = []
    for fact in generate_facts(spec.instance):
        key = (fact.relation, tuple(fact.values))
        if key not in state:
            state.add(key)
            initial.append([fact.relation, list(fact.values)])
    create: Dict[str, Any] = {
        "op": "live-create",
        "live": spec.live,
        "schema": _schema_to_dict(schema),
        "secrets": dict(spec.secrets),
        "views": dict(spec.views),
        "facts": initial,
    }
    if spec.eval_engine is not None:
        create["eval_engine"] = spec.eval_engine
    requests: List[Dict[str, Any]] = [create]

    names = sorted(spec.instance.relations)
    published: List[str] = []
    publish_counter = 0
    for _ in range(spec.deltas):
        adds: List[Tuple[str, Tuple[Any, ...]]] = []
        removes: List[Tuple[str, Tuple[Any, ...]]] = []
        publish: Dict[str, str] = {}
        retract: List[str] = []
        for _ in range(rng.randint(1, spec.churn)):
            kind = _weighted_choice(rng, mix)
            if kind == "retract" and not published:
                kind = "publish" if "publish" in mix else "insert"
            if kind == "delete" and not (state - set(adds)):
                kind = "insert"
            if kind == "insert":
                relation = rng.choice(names)
                arity = spec.instance.relations[relation]
                for _ in range(20):  # prefer genuinely fresh facts
                    key = (
                        relation,
                        tuple(
                            rng.randrange(spec.instance.domain_size)
                            for _ in range(arity)
                        ),
                    )
                    if key not in state:
                        break
                state.add(key)
                adds.append(key)
            elif kind == "delete":
                # Never remove a fact this same delta adds: add/remove
                # of one request must stay disjoint.
                key = rng.choice(sorted(state - set(adds)))
                state.discard(key)
                removes.append(key)
            elif kind == "publish":
                publish_counter += 1
                name = f"pub{publish_counter}"
                template = spec.publish_pool[
                    (publish_counter - 1) % len(spec.publish_pool)
                ]
                publish[name] = template.format(name=f"P{publish_counter}")
                published.append(name)
            else:  # retract
                name = rng.choice(sorted(published))
                published.remove(name)
                if name in publish:
                    # The server retracts before it publishes, so a view
                    # born and killed in one delta is simply cancelled.
                    del publish[name]
                else:
                    retract.append(name)
        if not (adds or removes or publish or retract):
            # Every event cancelled out (publish killed by a same-delta
            # retract); an empty delta is unservable, so insert instead.
            relation = rng.choice(names)
            key = (
                relation,
                tuple(
                    rng.randrange(spec.instance.domain_size)
                    for _ in range(spec.instance.relations[relation])
                ),
            )
            state.add(key)
            adds.append(key)
        document: Dict[str, Any] = {"op": "apply-delta", "live": spec.live}
        if adds:
            document["add"] = [[rel, list(values)] for rel, values in adds]
        if removes:
            document["remove"] = [[rel, list(values)] for rel, values in removes]
        if publish:
            document["publish"] = publish
        if retract:
            document["retract"] = retract
        parse_request(document)  # what we emit must be servable
        requests.append(document)
    parse_request(create)
    return requests


def delta_stream_state(
    requests: Sequence[Mapping[str, Any]],
) -> Tuple[List[List[Any]], Dict[str, str]]:
    """Mirror a delta stream: the ``(facts, views)`` a session holds
    after serving every request in order.

    Applies the same intra-delta order as the server (retractions, then
    publications, then the fact delta, whose contract is
    ``(facts - removed) | added`` — removals first, so a fact in both
    sides of one delta ends up present), so the result is exactly what
    a from-scratch audit of the final state should see.
    """
    facts: Dict[Tuple[str, Tuple[Any, ...]], List[Any]] = {}
    views: Dict[str, str] = {}
    for request in requests:
        op = request.get("op")
        if op == "live-create":
            facts = {}
            views = dict(request.get("views") or {})
            for document in request.get("facts") or ():
                facts[_fact_key(document)] = [document[0], list(document[1])]
        elif op == "apply-delta":
            for name in request.get("retract") or ():
                views.pop(name, None)
            for name, query in (request.get("publish") or {}).items():
                views[name] = query
            for document in request.get("remove") or ():
                facts.pop(_fact_key(document), None)
            for document in request.get("add") or ():
                facts[_fact_key(document)] = [document[0], list(document[1])]
    return sorted(facts.values()), views


# ---------------------------------------------------------------------------
# Workload files
# ---------------------------------------------------------------------------
def save_workload(requests: Sequence[Mapping[str, Any]], path: Union[str, Path]) -> None:
    """Write a replayable workload file."""
    document = {"version": WORKLOAD_VERSION, "requests": list(requests)}
    with open(path, "w", encoding="utf8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def load_workload(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a workload file back; every request is re-validated."""
    with open(path, "r", encoding="utf8") as handle:
        document = json.load(handle)
    if not isinstance(document, Mapping) or "requests" not in document:
        raise ReproError(f"{path} is not a workload file (no 'requests' list)")
    if document.get("version") != WORKLOAD_VERSION:
        raise ReproError(
            f"unsupported workload version {document.get('version')!r}; "
            f"this build reads version {WORKLOAD_VERSION}"
        )
    requests = [dict(request) for request in document["requests"]]
    for request in requests:
        parse_request(request)
    return requests


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
def replay_workload(
    requests: Sequence[Mapping[str, Any]],
    host: str,
    port: int,
    concurrency: int = 8,
    timeout: float = 120.0,
    *,
    retry_policy: Optional[Any] = None,
    subscribe: Optional[str] = None,
) -> Dict[str, Any]:
    """Drive a live daemon with a workload over concurrent connections.

    Each worker thread owns one connection and pulls requests from a
    shared queue, so duplicates genuinely race each other through the
    server's coalescing path.  Returns a summary document::

        {"requests": N, "ok": N, "errors": N, "overloaded": N,
         "deadline_exceeded": N, "seconds": s, "requests_per_second": r,
         "latency_ms": {"p50": ..., "p95": ..., "max": ...},
         "coalesced": N, "cached": N,
         "fleet_coalesced": N, "fleet_cached": N}

    ``overloaded`` (structured load-shedding answers) and
    ``deadline_exceeded`` (expired ``deadline_ms`` budgets) count
    separately from hard ``errors``: both are the server behaving as
    designed.  Against a multi-worker fleet,
    ``fleet_coalesced``/``fleet_cached`` count the answers the router
    satisfied without reaching any worker (they are subsets of
    ``coalesced``/``cached``).

    ``retry_policy`` (a :class:`repro.service.client.RetryPolicy`) is
    handed to every replay connection, so chaos runs can ride over
    injected worker crashes and shed requests.

    Live-session requests (any document with a ``live`` field — the
    streams of :func:`generate_delta_stream`) are *not* raced: they
    replay strictly in order on one dedicated connection with no retry
    policy (deltas are not idempotent), concurrently with the rest of
    the workload.  ``subscribe`` names a live session to watch: right
    after its ``live-create`` succeeds a subscriber connection opens,
    collects every pushed notification while the deltas land, and the
    summary gains ``live_requests``, ``notifications`` (the collected
    documents) and ``notifications_expected`` (successful deltas the
    subscription should have seen).
    """
    from ..service.client import AuditServiceClient
    from ..service.metrics import percentile

    if concurrency < 1:
        raise ReproError("replay needs at least one connection")
    live_requests: List[Tuple[int, Mapping[str, Any]]] = []
    pending: "queue.Queue[Tuple[int, Mapping[str, Any]]]" = queue.Queue()
    plain = 0
    for index, request in enumerate(requests):
        if request.get("live"):
            live_requests.append((index, request))
        else:
            pending.put((index, request))
            plain += 1
    lock = threading.Lock()
    outcomes = {
        "ok": 0,
        "errors": 0,
        "overloaded": 0,
        "deadline_exceeded": 0,
        "coalesced": 0,
        "cached": 0,
        "fleet_coalesced": 0,
        "fleet_cached": 0,
    }
    latencies: List[float] = []
    failures: List[str] = []

    def _connect(policy: Optional[Any]) -> "AuditServiceClient":
        return AuditServiceClient(host, port, timeout=timeout, retry_policy=policy)

    def _issue(client, index, request, policy):
        """Send one request and account it; returns ``(client, response)``
        with the client reconnected and the response ``None`` after a
        transport failure."""
        fields = {key: value for key, value in request.items() if key != "op"}
        started = time.perf_counter()
        try:
            response = client.request(request["op"], **fields)
        except Exception as error:
            # A transport failure must cost exactly one request:
            # account it, reconnect, keep draining the queue.
            with lock:
                outcomes["errors"] += 1
                if len(failures) < 5:
                    failures.append(
                        f"request {index} ({request.get('op')}): "
                        f"transport: {error}"
                    )
            client.close()
            return _connect(policy), None
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with lock:
            latencies.append(elapsed_ms)
            if response.get("ok"):
                outcomes["ok"] += 1
                server = response.get("server") or {}
                if server.get("coalesced"):
                    outcomes["coalesced"] += 1
                if server.get("cached"):
                    outcomes["cached"] += 1
                if server.get("fleet_coalesced"):
                    outcomes["fleet_coalesced"] += 1
                if server.get("fleet_cached"):
                    outcomes["fleet_cached"] += 1
            else:
                error = response.get("error") or {}
                if error.get("code") == "overloaded":
                    outcomes["overloaded"] += 1
                elif error.get("code") == "deadline-exceeded":
                    outcomes["deadline_exceeded"] += 1
                else:
                    outcomes["errors"] += 1
                    if len(failures) < 5:
                        failures.append(
                            f"request {index} ({request.get('op')}): "
                            f"{error.get('code')}: {error.get('message')}"
                        )
        return client, response

    def _drain() -> None:
        client = _connect(retry_policy)
        try:
            while True:
                try:
                    index, request = pending.get_nowait()
                except queue.Empty:
                    return
                client, _ = _issue(client, index, request, retry_policy)
        finally:
            client.close()

    notifications: List[Dict[str, Any]] = []
    expected_notes = [0]
    subscriber: Dict[str, Any] = {}

    def _start_subscriber() -> None:
        client = AuditServiceClient(host, port, timeout=timeout)
        stream = client.subscribe(subscribe)

        def _pump() -> None:
            try:
                for notification in stream:
                    with lock:
                        notifications.append(notification)
            except Exception:  # the replay closing the socket ends us
                pass

        thread = threading.Thread(target=_pump, name="replay-subscribe", daemon=True)
        thread.start()
        subscriber["client"] = client
        subscriber["thread"] = thread

    def _drain_live() -> None:
        # Strictly in order, one connection, no retries: a replayed
        # delta is not idempotent, and reordering deltas that touch the
        # same fact changes the final state.
        client = _connect(None)
        try:
            for index, request in live_requests:
                client, response = _issue(client, index, request, None)
                if response is None or not response.get("ok"):
                    continue
                if (
                    subscribe
                    and request.get("op") == "live-create"
                    and request.get("live") == subscribe
                    and "client" not in subscriber
                ):
                    try:
                        _start_subscriber()
                    except Exception as error:
                        with lock:
                            if len(failures) < 5:
                                failures.append(f"subscribe {subscribe!r}: {error}")
                if (
                    "client" in subscriber
                    and request.get("op") == "apply-delta"
                    and request.get("live") == subscribe
                ):
                    # One notification per *event*: a delta that also
                    # retracts/publishes views pushes several lines.
                    result = response.get("result") or {}
                    expected_notes[0] += int(result.get("events") or 1)
        finally:
            client.close()

    threads = [
        threading.Thread(target=_drain, name=f"replay-{i}", daemon=True)
        for i in range(min(concurrency, plain or 1))
    ]
    if live_requests:
        threads.append(
            threading.Thread(target=_drain_live, name="replay-live", daemon=True)
        )
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    if "client" in subscriber:
        # Notifications are pushed after each delta's response; give the
        # tail a moment to arrive before tearing the stream down.
        deadline = time.monotonic() + min(5.0, timeout)
        while time.monotonic() < deadline:
            with lock:
                if len(notifications) >= expected_notes[0]:
                    break
            time.sleep(0.05)
        subscriber["client"].interrupt()  # EOF the pump thread first;
        subscriber["thread"].join(timeout=5.0)  # close() would deadlock
        subscriber["client"].close()
    seconds = time.perf_counter() - started
    ordered = sorted(latencies)
    summary: Dict[str, Any] = {
        "requests": len(requests),
        **outcomes,
        "seconds": round(seconds, 4),
        "requests_per_second": round(len(latencies) / seconds, 2) if seconds else 0.0,
    }
    if ordered:
        summary["latency_ms"] = {
            "p50": round(percentile(ordered, 50), 3),
            "p95": round(percentile(ordered, 95), 3),
            "max": round(ordered[-1], 3),
        }
    if live_requests:
        summary["live_requests"] = len(live_requests)
    if subscribe is not None:
        summary["notifications"] = list(notifications)
        summary["notifications_expected"] = expected_notes[0]
    if failures:
        summary["failures"] = failures
    return summary
