"""Workload generation for load-testing the disclosure-audit service.

A *workload* is a list of protocol request documents (see
:mod:`repro.service.protocol`) — plain JSON, so it can be saved to a
file, versioned, and replayed against any daemon.  The generator is
fully deterministic given a seed and draws from two sources:

* the paper's Table 1 query-view pairs over the 3-variable
  ``Emp(name, department, phone)`` schema (the canonical benchmark
  surface of this reproduction), and
* the random conjunctive-query generator of :mod:`repro.bench.workloads`
  (random schemas, random secret/view pairs).

A configurable fraction of requests are exact duplicates of earlier
ones, which is what exercises the server's request coalescing and
result cache under replay.
"""

from .generator import (
    InstanceSpec,
    WorkloadSpec,
    generate_facts,
    generate_instance,
    generate_workload,
    load_workload,
    replay_workload,
    save_workload,
    table1_templates,
)

__all__ = [
    "InstanceSpec",
    "WorkloadSpec",
    "generate_facts",
    "generate_instance",
    "generate_workload",
    "load_workload",
    "replay_workload",
    "save_workload",
    "table1_templates",
]
