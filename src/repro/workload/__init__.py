"""Workload generation for load-testing the disclosure-audit service.

A *workload* is a list of protocol request documents (see
:mod:`repro.service.protocol`) — plain JSON, so it can be saved to a
file, versioned, and replayed against any daemon.  The generator is
fully deterministic given a seed and draws from two sources:

* the paper's Table 1 query-view pairs over the 3-variable
  ``Emp(name, department, phone)`` schema (the canonical benchmark
  surface of this reproduction), and
* the random conjunctive-query generator of :mod:`repro.bench.workloads`
  (random schemas, random secret/view pairs).

A configurable fraction of requests are exact duplicates of earlier
ones, which is what exercises the server's request coalescing and
result cache under replay.

:func:`generate_delta_stream` additionally emits live-session request
sequences (``live-create`` + seeded ``apply-delta`` churn) for the
incremental audit engine; ``replay_workload(..., subscribe=...)``
replays them in order while collecting the pushed re-verdict
notifications.
"""

from .generator import (
    DeltaStreamSpec,
    InstanceSpec,
    WorkloadSpec,
    delta_stream_state,
    generate_delta_stream,
    generate_facts,
    generate_instance,
    generate_workload,
    load_workload,
    replay_workload,
    save_workload,
    table1_templates,
)

__all__ = [
    "DeltaStreamSpec",
    "InstanceSpec",
    "WorkloadSpec",
    "delta_stream_state",
    "generate_delta_stream",
    "generate_facts",
    "generate_instance",
    "generate_workload",
    "load_workload",
    "replay_workload",
    "save_workload",
    "table1_templates",
]
