"""The fact-store protocol behind query evaluation.

Every evaluation engine ultimately consumes a *set of facts*.  The
in-memory :class:`~repro.relational.instance.Instance` — the paper's
notion of a database instance — is one implementation; the
sqlite3-backed :class:`~repro.storage.sqlite.SQLiteFactStore` is
another, sized for the million-fact instances the hospital/census
scenarios describe.  :class:`FactStore` names the minimal surface the
engines rely on, so code can be written against "a store" and run
against either.

``Instance`` is registered as a virtual subclass rather than inheriting:
the relational layer predates this module and must not depend on it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from ..relational.instance import Instance
from ..relational.tuples import Fact

__all__ = ["FactStore"]


class FactStore(ABC):
    """The minimal fact-set surface query evaluation consumes.

    A store is a (logical) set of :class:`~repro.relational.tuples.Fact`
    objects — set semantics, no duplicates, no order guarantees beyond
    what each implementation documents.  Implementations may hold the
    facts in memory (:class:`~repro.relational.instance.Instance`) or on
    disk (:class:`~repro.storage.sqlite.SQLiteFactStore`).
    """

    @abstractmethod
    def __iter__(self) -> Iterator[Fact]:
        """Iterate over every fact of the store."""

    @abstractmethod
    def __contains__(self, fact: Fact) -> bool:
        """Fact membership."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of facts in the store."""

    @abstractmethod
    def relation(self, name: str) -> Iterable[Fact]:
        """All facts of one relation (any arity)."""

    def to_instance(self) -> Instance:
        """Materialise the store as an in-memory instance.

        Convenient for small stores and cross-validation; for stores in
        the 10^5–10^6-fact range this defeats the point of the store —
        evaluate against the store itself (``REPRO_EVAL_ENGINE=sql``).
        """
        return Instance(self)


# ``Instance`` provides the whole surface already (``relation`` returns a
# frozenset, which is a fine Iterable[Fact]); registering it makes
# ``isinstance(instance, FactStore)`` true without coupling the
# relational layer to the storage package.
FactStore.register(Instance)
