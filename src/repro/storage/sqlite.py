"""A sqlite3-backed fact store for million-fact instances.

:class:`SQLiteFactStore` keeps one SQL table per ``(relation, arity)``
pair (instances are plain fact sets, so one relation may hold facts of
several arities — mirroring
:meth:`~repro.relational.instance.Instance`'s behaviour), with columns
``c0 … c{k-1}`` and a UNIQUE constraint over all of them (set
semantics: re-loading a fact is a no-op).  A ``repro_meta`` table maps
relation/arity pairs to their physical tables, so a store file reopens
with its full layout.

**Untyped columns.**  Every column is declared with *no* type — NONE
affinity, under which SQLite stores each value exactly as bound and,
crucially, never converts comparison operands.  Any declared affinity
would be a correctness bug, not an optimisation choice: an ``INTEGER``
column makes SQLite coerce the query constant ``"1"`` to the integer
``1`` before comparing, so a typed store would report ``Fact("R",
("1",))`` present in a store holding only ``Fact("R", (1,))`` — a wrong
non-empty answer, where Python equality (and the naive/compiled
engines) keep ``int`` and ``str`` forever distinct.  Under NONE
affinity values of different storage classes never compare equal, while
``int``/``float`` equality stays numeric (``1 == 1.0`` in SQL exactly
as in Python).

**Values.**  Fact values must be ``int``, ``float`` or ``str`` (``bool``
is stored as its integer value, which matches ``Fact`` equality —
``Fact("R", (True,)) == Fact("R", (1,))`` already holds in memory).
``None`` and structured values are rejected: SQL ``NULL`` does not obey
equality and would corrupt joins.

**Covering indexes.**  :meth:`ensure_index` creates an index whose
leading columns are a join plan's probe-key positions and whose
remaining columns complete the cover, so indexed lookups never touch
the base table.  :mod:`repro.cq.sql` derives the requested positions
from the join planner's probe keys.

The store is safe to share across threads (one connection guarded by an
RLock; the audit service's worker pool is the intended consumer).
"""

from __future__ import annotations

import csv
import json
import re
import sqlite3
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from .. import faults
from ..exceptions import ReproError
from ..obs import span
from ..obs.counters import StatCounters
from ..relational.instance import Instance
from ..relational.tuples import Fact
from .base import FactStore

__all__ = ["SQLiteFactStore", "STORAGE_STATS", "reset_storage_stats"]

#: Process-wide storage counters (monotone; surfaced through
#: :func:`repro.cq.evaluation_stats` with a ``storage_`` prefix).
#: A :class:`~repro.obs.counters.StatCounters`: increments go through
#: ``.bump()`` so counts survive concurrent loads on worker threads.
STORAGE_STATS = StatCounters(
    (
        "facts_loaded",
        "facts_removed",
        "tables_created",
        "indexes_created",
        "stores_opened",
    )
)

#: Name of the layout metadata table inside every store.
_META_TABLE = "repro_meta"

#: Every physical table this module generates is named ``f<N>``.  Names
#: read back from a store file's catalog are interpolated into SQL text,
#: so anything else is rejected at open time (a crafted catalog must not
#: become arbitrary SQL).
_TABLE_NAME = re.compile(r"f\d+")

#: Facts are inserted in batches of this many rows.
_BATCH_SIZE = 5000


def reset_storage_stats() -> None:
    """Zero the storage counters (tests/benchmarks)."""
    STORAGE_STATS.reset()


def _check_value(value: object) -> object:
    """Validate one fact value for SQL storage."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float, str)):
        return value
    raise ReproError(
        f"fact value {value!r} of type {type(value).__name__} cannot be stored; "
        "a SQL-backed store holds int, float and str values only"
    )


def _coerce_cell(text: str) -> object:
    """CSV cells are text; recover ints and floats when they parse."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


class SQLiteFactStore(FactStore):
    """A fact store persisted in a sqlite3 database.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` (the default) for a transient
        in-process store.  Opening an existing store file restores its
        layout and facts.
    """

    def __init__(self, path: Union[str, Path] = ":memory:"):
        self._path = str(path)
        self._connection = sqlite3.connect(
            self._path, check_same_thread=False, isolation_level=None
        )
        self._lock = threading.RLock()
        self._closed = False
        #: (relation, arity) -> physical table name
        self._tables: Dict[Tuple[str, int], str] = {}
        #: (table, leading positions) pairs whose index exists
        self._indexes: set = set()
        self._table_counter = 0
        with self._lock:
            cursor = self._connection.cursor()
            if self._path != ":memory:":
                cursor.execute("PRAGMA journal_mode = WAL")
                cursor.execute("PRAGMA synchronous = NORMAL")
            cursor.execute(
                f"CREATE TABLE IF NOT EXISTS {_META_TABLE} ("
                "relation TEXT NOT NULL, arity INTEGER NOT NULL, "
                "table_name TEXT NOT NULL UNIQUE, "
                "PRIMARY KEY (relation, arity))"
            )
            for relation, arity, table in cursor.execute(
                f"SELECT relation, arity, table_name FROM {_META_TABLE}"
            ).fetchall():
                if not _TABLE_NAME.fullmatch(table):
                    # The catalog names are interpolated into SQL text
                    # verbatim; a crafted store file must not get to run
                    # arbitrary statements through them.
                    self._connection.close()
                    self._closed = True
                    raise ReproError(
                        f"refusing to open {self._path!r}: catalog table "
                        f"name {table!r} does not match the generated "
                        "'f<N>' pattern"
                    )
                self._tables[(relation, arity)] = table
                self._table_counter = max(self._table_counter, int(table[1:]) + 1)
            for (name,) in cursor.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index' "
                "AND name LIKE 'ix_%'"
            ).fetchall():
                self._indexes.add(name)
        STORAGE_STATS.bump("stores_opened")

    # -- lifecycle -------------------------------------------------------------
    @property
    def path(self) -> str:
        """The database path (``":memory:"`` for transient stores)."""
        return self._path

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            if not self._closed:
                self._connection.close()
                self._closed = True

    def __enter__(self) -> "SQLiteFactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def mirror(cls, facts: Iterable[Fact]) -> "SQLiteFactStore":
        """An in-memory store holding the given facts."""
        store = cls(":memory:")
        store.load_facts(facts)
        return store

    # -- loading ---------------------------------------------------------------
    def load_facts(self, facts: Iterable[Fact], batch_size: int = _BATCH_SIZE) -> int:
        """Bulk-load facts (set semantics: duplicates are ignored).

        Facts are grouped per ``(relation, arity)`` and inserted in
        batches of ``batch_size`` inside one transaction.  Returns the
        number of facts offered (the store may already hold some).
        """
        offered = 0
        pending: Dict[Tuple[str, int], List[Tuple[object, ...]]] = {}
        with span("storage.load") as sp, self._lock:
            cursor = self._connection.cursor()
            cursor.execute("BEGIN")
            try:
                for fact in facts:
                    values = tuple(_check_value(v) for v in fact.values)
                    key = (fact.relation, len(values))
                    rows = pending.setdefault(key, [])
                    rows.append(values if values else (0,))
                    offered += 1
                    if len(rows) >= batch_size:
                        self._insert_batch(cursor, key, rows)
                        pending[key] = []
                for key, rows in pending.items():
                    if rows:
                        self._insert_batch(cursor, key, rows)
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                raise
            if sp:
                sp.set("facts", offered)
        STORAGE_STATS.bump("facts_loaded", offered)
        return offered

    def add(self, *facts: Fact) -> int:
        """Load positional facts (convenience over :meth:`load_facts`)."""
        return self.load_facts(facts)

    def remove(self, *facts: Fact) -> int:
        """Delete facts from the store (missing facts are ignored).

        Returns the number of rows actually deleted.  This is the
        mutation half the incremental audit layer relies on: the sql
        delta engine temporarily inserts/deletes single facts to
        evaluate post-states in place.
        """
        removed = 0
        with span("storage.remove") as sp, self._lock:
            cursor = self._connection.cursor()
            cursor.execute("BEGIN")
            try:
                for fact in facts:
                    try:
                        values = tuple(_check_value(v) for v in fact.values)
                    except ReproError:
                        continue  # unstorable values are never in the store
                    arity = len(values)
                    table = self._tables.get((fact.relation, arity))
                    if table is None:
                        continue
                    where, params = self._row_predicate(table, arity, values)
                    cursor.execute(f"DELETE FROM {table} WHERE {where}", params)
                    removed += cursor.rowcount
                cursor.execute("COMMIT")
            except BaseException:
                cursor.execute("ROLLBACK")
                raise
            if sp:
                sp.set("facts", removed)
        STORAGE_STATS.bump("facts_removed", removed)
        return removed

    def load_json(self, path: Union[str, Path]) -> int:
        """Load facts from a JSON document.

        Two shapes are accepted (``{"facts": ...}`` wrapping either)::

            [["Emp", "alice", "HR", 100], ["Emp", "bob", "Eng", 101]]
            {"Emp": [["alice", "HR", 100], ["bob", "Eng", 101]]}

        The first is a list of ``[relation, value, ...]`` arrays; the
        second maps relation names to value rows.
        """
        with open(path, "r", encoding="utf8") as handle:
            document = json.load(handle)
        if isinstance(document, Mapping) and "facts" in document:
            document = document["facts"]
        facts: List[Fact] = []
        if isinstance(document, Mapping):
            for relation, rows in document.items():
                if not isinstance(relation, str) or not isinstance(rows, Sequence):
                    raise ReproError(
                        f"{path}: a fact mapping must map relation names to "
                        "lists of value rows"
                    )
                for row in rows:
                    if not isinstance(row, Sequence) or isinstance(row, str):
                        raise ReproError(f"{path}: fact row {row!r} is not a list")
                    facts.append(Fact(relation, tuple(row)))
        elif isinstance(document, Sequence):
            for entry in document:
                if (
                    not isinstance(entry, Sequence)
                    or isinstance(entry, str)
                    or not entry
                    or not isinstance(entry[0], str)
                ):
                    raise ReproError(
                        f"{path}: each fact must be a [relation, value, ...] array, "
                        f"got {entry!r}"
                    )
                facts.append(Fact(entry[0], tuple(entry[1:])))
        else:
            raise ReproError(
                f"{path} is not a fact file: expected a list of facts or a "
                "relation→rows mapping (optionally under a 'facts' key)"
            )
        return self.load_facts(facts)

    def load_csv(
        self, path: Union[str, Path], relation: str, coerce: bool = True
    ) -> int:
        """Load one relation from a headerless CSV file (one fact per row).

        With ``coerce`` (the default) numeric-looking cells become ints
        or floats; otherwise every value stays a string.
        """
        if not relation:
            raise ReproError("loading CSV facts requires a relation name")
        facts: List[Fact] = []
        with open(path, "r", encoding="utf8", newline="") as handle:
            for row in csv.reader(handle):
                if not row:
                    continue
                values = tuple(_coerce_cell(cell) if coerce else cell for cell in row)
                facts.append(Fact(relation, values))
        return self.load_facts(facts)

    # -- the FactStore surface -------------------------------------------------
    def __iter__(self) -> Iterator[Fact]:
        for (relation, arity), table in sorted(self._tables.items()):
            for row in self.execute(f"SELECT * FROM {table}"):
                yield Fact(relation, tuple(row[:arity]))

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        arity = len(fact.values)
        table = self._tables.get((fact.relation, arity))
        if table is None:
            return False
        try:
            values = tuple(_check_value(v) for v in fact.values)
        except ReproError:
            return False  # unstorable values are never in the store
        where, params = self._row_predicate(table, arity, values)
        rows = self.execute(f"SELECT 1 FROM {table} WHERE {where} LIMIT 1", params)
        return bool(rows)

    def __len__(self) -> int:
        total = 0
        for table in self._tables.values():
            total += self.execute(f"SELECT COUNT(*) FROM {table}")[0][0]
        return total

    def relation(self, name: str) -> Iterator[Fact]:
        """All facts of one relation, across every stored arity."""
        for (relation, arity), table in sorted(self._tables.items()):
            if relation != name:
                continue
            for row in self.execute(f"SELECT * FROM {table}"):
                yield Fact(relation, tuple(row[:arity]))

    def relations(self) -> List[Tuple[str, int, int]]:
        """``(relation, arity, fact count)`` triples, sorted."""
        summary = []
        for (relation, arity), table in sorted(self._tables.items()):
            count = self.execute(f"SELECT COUNT(*) FROM {table}")[0][0]
            summary.append((relation, arity, count))
        return summary

    # -- the SQL surface the sql engine compiles against ------------------------
    def table(self, relation: str, arity: int) -> Optional[str]:
        """The physical table of a ``(relation, arity)`` pair, if any.

        ``None`` means the store holds no such facts — a query atom over
        the pair has an empty answer.
        """
        return self._tables.get((relation, arity))

    def execute(
        self, sql: str, params: Sequence[object] = ()
    ) -> List[Tuple[object, ...]]:
        """Run one statement and fetch every row (thread-safe)."""
        for rule in faults.fire("storage.execute"):
            faults.perform(rule)
        with self._lock:
            if self._closed:
                raise ReproError(f"the fact store {self._path!r} is closed")
            return self._connection.execute(sql, tuple(params)).fetchall()

    def ensure_index(
        self, relation: str, arity: int, positions: Sequence[int]
    ) -> bool:
        """Create the covering index probing ``positions``, if missing.

        The index leads with the probe-key positions (the columns a join
        plan constrains) and appends the remaining columns so lookups
        are index-only.  Returns True when an index was created.
        """
        table = self._tables.get((relation, arity))
        positions = tuple(dict.fromkeys(int(p) for p in positions))
        if table is None or not positions or any(
            p < 0 or p >= max(arity, 1) for p in positions
        ):
            return False
        name = f"ix_{table}_" + "_".join(str(p) for p in positions)
        if name in self._indexes:
            return False
        ordered = list(positions) + [
            p for p in range(max(arity, 1)) if p not in positions
        ]
        columns = ", ".join(f"c{p}" for p in ordered)
        with self._lock:
            self._connection.execute(
                f"CREATE INDEX IF NOT EXISTS {name} ON {table} ({columns})"
            )
            self._indexes.add(name)
        STORAGE_STATS.bump("indexes_created")
        return True

    # -- internals ---------------------------------------------------------------
    def _row_predicate(
        self, table: str, arity: int, values: Tuple[object, ...]
    ) -> Tuple[str, Tuple[object, ...]]:
        """An exact-row WHERE clause (arity-0 tables match their dummy row)."""
        if arity == 0:
            return "c0 = 0", ()
        where = " AND ".join(f"c{p} = ?" for p in range(arity))
        return where, values

    def _insert_batch(
        self,
        cursor: sqlite3.Cursor,
        key: Tuple[str, int],
        rows: List[Tuple[object, ...]],
    ) -> None:
        relation, arity = key
        width = max(arity, 1)
        table = self._tables.get(key)
        if table is None:
            table = self._create_table(cursor, relation, arity)
        placeholders = ", ".join("?" for _ in range(width))
        cursor.executemany(
            f"INSERT OR IGNORE INTO {table} VALUES ({placeholders})", rows
        )

    def _create_table(
        self, cursor: sqlite3.Cursor, relation: str, arity: int
    ) -> str:
        width = max(arity, 1)
        table = f"f{self._table_counter}"
        self._table_counter += 1
        # Columns carry no declared type on purpose (NONE affinity);
        # see the module docstring.
        columns = ", ".join(f"c{p}" for p in range(width))
        cursor.execute(f"CREATE TABLE {table} ({columns}, UNIQUE ({columns}))")
        cursor.execute(
            f"INSERT INTO {_META_TABLE} VALUES (?, ?, ?)",
            (relation, arity, table),
        )
        self._tables[(relation, arity)] = table
        STORAGE_STATS.bump("tables_created")
        return table

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SQLiteFactStore(path={self._path!r}, tables={len(self._tables)})"


# An Instance already satisfies the FactStore protocol; the SQL store is
# the second registered implementation (by inheritance).
