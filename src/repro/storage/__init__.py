"""Fact stores: the in-memory instance and the sqlite3-backed store."""

from .base import FactStore
from .sqlite import STORAGE_STATS, SQLiteFactStore, reset_storage_stats

__all__ = [
    "FactStore",
    "SQLiteFactStore",
    "STORAGE_STATS",
    "reset_storage_stats",
]
