"""Loading schemas and dictionaries from plain JSON documents.

The command-line interface (and downstream users who keep their audit
configuration under version control) describe the database schema in a
small JSON document rather than Python code::

    {
      "relations": [
        {
          "name": "Emp",
          "attributes": ["name", "department", "phone"],
          "key": ["name"],
          "attribute_domains": {
            "name": ["n0", "n1"],
            "department": ["d0", "d1"],
            "phone": ["p0", "p1"]
          }
        }
      ],
      "domain": ["n0", "n1", "d0", "d1", "p0", "p1"],
      "tuple_probability": "1/4"
    }

``domain`` is optional when every attribute has its own domain;
``tuple_probability`` (a number or a fraction string) is optional and
only needed for quantitative analyses.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .exceptions import SchemaError
from .probability.dictionary import Dictionary
from .relational.domain import Domain
from .relational.schema import RelationSchema, Schema

__all__ = [
    "schema_from_dict",
    "schema_to_dict",
    "schema_to_json",
    "load_schema",
    "save_schema",
    "dictionary_from_dict",
    "dictionary_to_dict",
    "load_audit_configuration",
    "audit_configuration_to_dict",
    "save_audit_configuration",
    "publishing_plan_from_dict",
    "publishing_plan_to_dict",
    "load_publishing_plan",
    "save_publishing_plan",
]


def _parse_probability(value: Union[str, int, float]) -> Fraction:
    if isinstance(value, str):
        return Fraction(value)
    return Fraction(value).limit_denominator(10**9)


def schema_from_dict(document: Mapping[str, Any]) -> Schema:
    """Build a :class:`Schema` from a parsed JSON document."""
    relations_spec = document.get("relations")
    if not relations_spec:
        raise SchemaError("the schema document must list at least one relation")
    relations = []
    for spec in relations_spec:
        try:
            name = spec["name"]
            attributes = spec["attributes"]
        except KeyError as exc:
            raise SchemaError(f"relation specification is missing {exc}") from exc
        attribute_domains = {
            attribute: Domain(values, name=f"{name}.{attribute}")
            for attribute, values in (spec.get("attribute_domains") or {}).items()
        }
        relations.append(
            RelationSchema(
                name,
                tuple(attributes),
                attribute_domains,
                tuple(spec["key"]) if spec.get("key") else None,
            )
        )
    domain_values = document.get("domain")
    domain = Domain(domain_values, name="D") if domain_values else None
    return Schema(relations, domain=domain)


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialise a :class:`Schema` back to the JSON document shape."""
    relations = []
    for relation in schema:
        spec: Dict[str, Any] = {
            "name": relation.name,
            "attributes": list(relation.attributes),
        }
        if relation.key:
            spec["key"] = list(relation.key)
        if relation.attribute_domains:
            spec["attribute_domains"] = {
                attribute: list(domain.values)
                for attribute, domain in relation.attribute_domains.items()
            }
        relations.append(spec)
    return {"relations": relations, "domain": list(schema.domain.values)}


def schema_to_json(schema: Schema, indent: Optional[int] = 2) -> str:
    """Serialise a :class:`Schema` to its JSON document text."""
    return json.dumps(schema_to_dict(schema), indent=indent)


def load_schema(path: Union[str, Path]) -> Schema:
    """Load a schema from a JSON file."""
    with open(path, "r", encoding="utf8") as handle:
        document = json.load(handle)
    return schema_from_dict(document)


def save_schema(schema: Schema, path: Union[str, Path]) -> None:
    """Write a schema as the JSON document :func:`load_schema` reads.

    ``load_schema(save_schema(s, p) and p)`` rebuilds a schema with the
    same fingerprint (relations, keys, attribute domains, global domain).
    """
    with open(path, "w", encoding="utf8") as handle:
        handle.write(schema_to_json(schema))
        handle.write("\n")


def dictionary_from_dict(
    document: Mapping[str, Any], schema: Optional[Schema] = None
) -> Optional[Dictionary]:
    """Build the document's dictionary, if it declares one.

    Recognised keys: ``tuple_probability`` (uniform probability) or
    ``expected_size`` (uniform probability scaled to the tuple space).
    """
    schema = schema or schema_from_dict(document)
    if "tuple_probability" in document:
        return Dictionary.uniform(schema, _parse_probability(document["tuple_probability"]))
    if "expected_size" in document:
        return Dictionary.with_expected_size(
            schema, _parse_probability(document["expected_size"])
        )
    return None


def dictionary_to_dict(dictionary: Dictionary) -> Dict[str, Any]:
    """The document fields describing a dictionary (the loader's inverse).

    Only *uniform* dictionaries are expressible in the document format;
    per-fact probability overrides raise :class:`SchemaError` (the wire
    and file formats deliberately stay at the granularity operators
    configure: one ``tuple_probability``).
    """
    if not dictionary.is_uniform:
        raise SchemaError(
            "only uniform dictionaries are JSON-serialisable; this one "
            f"overrides {len(dictionary.explicit_probabilities)} tuple "
            "probabilities"
        )
    return {"tuple_probability": str(dictionary.default)}


def load_audit_configuration(
    path: Union[str, Path]
) -> Tuple[Schema, Optional[Dictionary]]:
    """Load a schema plus (optionally) its dictionary from one JSON file."""
    with open(path, "r", encoding="utf8") as handle:
        document = json.load(handle)
    schema = schema_from_dict(document)
    return schema, dictionary_from_dict(document, schema)


def audit_configuration_to_dict(
    schema: Schema, dictionary: Optional[Dictionary] = None
) -> Dict[str, Any]:
    """One document holding a schema and (optionally) its dictionary."""
    document = schema_to_dict(schema)
    if dictionary is not None:
        document.update(dictionary_to_dict(dictionary))
    return document


def save_audit_configuration(
    schema: Schema,
    path: Union[str, Path],
    dictionary: Optional[Dictionary] = None,
) -> None:
    """Write the JSON file :func:`load_audit_configuration` reads."""
    with open(path, "w", encoding="utf8") as handle:
        json.dump(audit_configuration_to_dict(schema, dictionary), handle, indent=2)
        handle.write("\n")


def publishing_plan_from_dict(document: Mapping[str, Any]):
    """Build a :class:`~repro.session.PublishingPlan` from a JSON document.

    The document extends the schema format with two mappings of datalog
    query strings::

        {
          "relations": [...],
          "secrets": {"phones": "S(n, p) :- Emp(n, d, p)"},
          "views":   {"bob": "V(n, d) :- Emp(n, d, p)",
                      "carol": "W(d) :- Emp(n, d, p)"}
        }

    ``secrets`` and ``views`` may also be plain lists (names are then
    auto-generated).  ``tuple_probability`` / ``expected_size`` keep
    their schema-document meaning.
    """
    from .session.plan import PublishingPlan

    secrets = document.get("secrets")
    views = document.get("views")
    if not secrets:
        raise SchemaError("the publishing plan must declare at least one secret")
    if not views:
        raise SchemaError("the publishing plan must declare at least one view")
    return PublishingPlan(secrets=secrets, views=views)


def _query_text(query: Any) -> str:
    """A query as its datalog text (strings pass through unchanged).

    ``str(query)`` of a :class:`~repro.cq.query.ConjunctiveQuery` (or a
    union) parses back to an equal query, which is what makes the plan
    and workload documents round-trippable.
    """
    return query if isinstance(query, str) else str(query)


def publishing_plan_to_dict(
    plan: Any,
    schema: Schema,
    dictionary: Optional[Dictionary] = None,
) -> Dict[str, Any]:
    """Serialise a plan (with its schema) to the publishing-plan document.

    The inverse of :func:`load_publishing_plan`: secrets and views are
    written as datalog strings, so plans built programmatically — e.g.
    by the workload generator — can be saved, versioned and replayed
    through the CLI or the audit service.
    """
    document = audit_configuration_to_dict(schema, dictionary)
    document["secrets"] = {
        name: _query_text(query) for name, query in plan.secrets.items()
    }
    document["views"] = {
        recipient: _query_text(query) for recipient, query in plan.views.items()
    }
    return document


def load_publishing_plan(path: Union[str, Path]):
    """Load ``(schema, dictionary, plan)`` from one publishing-plan JSON file."""
    with open(path, "r", encoding="utf8") as handle:
        document = json.load(handle)
    schema = schema_from_dict(document)
    return (
        schema,
        dictionary_from_dict(document, schema),
        publishing_plan_from_dict(document),
    )


def save_publishing_plan(
    plan: Any,
    schema: Schema,
    path: Union[str, Path],
    dictionary: Optional[Dictionary] = None,
) -> None:
    """Write the JSON file :func:`load_publishing_plan` reads."""
    with open(path, "w", encoding="utf8") as handle:
        json.dump(publishing_plan_to_dict(plan, schema, dictionary), handle, indent=2)
        handle.write("\n")
