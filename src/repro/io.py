"""Loading schemas and dictionaries from plain JSON documents.

The command-line interface (and downstream users who keep their audit
configuration under version control) describe the database schema in a
small JSON document rather than Python code::

    {
      "relations": [
        {
          "name": "Emp",
          "attributes": ["name", "department", "phone"],
          "key": ["name"],
          "attribute_domains": {
            "name": ["n0", "n1"],
            "department": ["d0", "d1"],
            "phone": ["p0", "p1"]
          }
        }
      ],
      "domain": ["n0", "n1", "d0", "d1", "p0", "p1"],
      "tuple_probability": "1/4"
    }

``domain`` is optional when every attribute has its own domain;
``tuple_probability`` (a number or a fraction string) is optional and
only needed for quantitative analyses.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .exceptions import SchemaError
from .probability.dictionary import Dictionary
from .relational.domain import Domain
from .relational.schema import RelationSchema, Schema

__all__ = [
    "schema_from_dict",
    "schema_to_dict",
    "load_schema",
    "dictionary_from_dict",
    "load_audit_configuration",
    "publishing_plan_from_dict",
    "load_publishing_plan",
]


def _parse_probability(value: Union[str, int, float]) -> Fraction:
    if isinstance(value, str):
        return Fraction(value)
    return Fraction(value).limit_denominator(10**9)


def schema_from_dict(document: Mapping[str, Any]) -> Schema:
    """Build a :class:`Schema` from a parsed JSON document."""
    relations_spec = document.get("relations")
    if not relations_spec:
        raise SchemaError("the schema document must list at least one relation")
    relations = []
    for spec in relations_spec:
        try:
            name = spec["name"]
            attributes = spec["attributes"]
        except KeyError as exc:
            raise SchemaError(f"relation specification is missing {exc}") from exc
        attribute_domains = {
            attribute: Domain(values, name=f"{name}.{attribute}")
            for attribute, values in (spec.get("attribute_domains") or {}).items()
        }
        relations.append(
            RelationSchema(
                name,
                tuple(attributes),
                attribute_domains,
                tuple(spec["key"]) if spec.get("key") else None,
            )
        )
    domain_values = document.get("domain")
    domain = Domain(domain_values, name="D") if domain_values else None
    return Schema(relations, domain=domain)


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialise a :class:`Schema` back to the JSON document shape."""
    relations = []
    for relation in schema:
        spec: Dict[str, Any] = {
            "name": relation.name,
            "attributes": list(relation.attributes),
        }
        if relation.key:
            spec["key"] = list(relation.key)
        if relation.attribute_domains:
            spec["attribute_domains"] = {
                attribute: list(domain.values)
                for attribute, domain in relation.attribute_domains.items()
            }
        relations.append(spec)
    return {"relations": relations, "domain": list(schema.domain.values)}


def load_schema(path: Union[str, Path]) -> Schema:
    """Load a schema from a JSON file."""
    with open(path, "r", encoding="utf8") as handle:
        document = json.load(handle)
    return schema_from_dict(document)


def dictionary_from_dict(
    document: Mapping[str, Any], schema: Optional[Schema] = None
) -> Optional[Dictionary]:
    """Build the document's dictionary, if it declares one.

    Recognised keys: ``tuple_probability`` (uniform probability) or
    ``expected_size`` (uniform probability scaled to the tuple space).
    """
    schema = schema or schema_from_dict(document)
    if "tuple_probability" in document:
        return Dictionary.uniform(schema, _parse_probability(document["tuple_probability"]))
    if "expected_size" in document:
        return Dictionary.with_expected_size(
            schema, _parse_probability(document["expected_size"])
        )
    return None


def load_audit_configuration(
    path: Union[str, Path]
) -> Tuple[Schema, Optional[Dictionary]]:
    """Load a schema plus (optionally) its dictionary from one JSON file."""
    with open(path, "r", encoding="utf8") as handle:
        document = json.load(handle)
    schema = schema_from_dict(document)
    return schema, dictionary_from_dict(document, schema)


def publishing_plan_from_dict(document: Mapping[str, Any]):
    """Build a :class:`~repro.session.PublishingPlan` from a JSON document.

    The document extends the schema format with two mappings of datalog
    query strings::

        {
          "relations": [...],
          "secrets": {"phones": "S(n, p) :- Emp(n, d, p)"},
          "views":   {"bob": "V(n, d) :- Emp(n, d, p)",
                      "carol": "W(d) :- Emp(n, d, p)"}
        }

    ``secrets`` and ``views`` may also be plain lists (names are then
    auto-generated).  ``tuple_probability`` / ``expected_size`` keep
    their schema-document meaning.
    """
    from .session.plan import PublishingPlan

    secrets = document.get("secrets")
    views = document.get("views")
    if not secrets:
        raise SchemaError("the publishing plan must declare at least one secret")
    if not views:
        raise SchemaError("the publishing plan must declare at least one view")
    return PublishingPlan(secrets=secrets, views=views)


def load_publishing_plan(path: Union[str, Path]):
    """Load ``(schema, dictionary, plan)`` from one publishing-plan JSON file."""
    with open(path, "r", encoding="utf8") as handle:
        document = json.load(handle)
    schema = schema_from_dict(document)
    return (
        schema,
        dictionary_from_dict(document, schema),
        publishing_plan_from_dict(document),
    )
