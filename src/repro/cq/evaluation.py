"""Evaluation of conjunctive queries over database instances.

Two engines share this module's public entry points:

* ``compiled`` (the default) — :mod:`repro.cq.compiled` plans each query
  once (greedy join ordering, per-instance hash-index probes, slot-array
  bindings, earliest-point comparison checks) and also answers the
  restricted *delta* questions the criticality engines ask
  (:func:`answer_contains`, :func:`delta_changes`).
* ``naive`` — the seed backtracking evaluator, preserved verbatim in
  spirit as ``naive_*`` for cross-validation and ablation benchmarks.
  It scans every fact of the matching relation per subgoal, in body
  order, extending one shared assignment dict in place.

The engine is selected per call by the ``REPRO_EVAL_ENGINE`` environment
variable (``compiled``/unset → compiled, ``naive`` → seed evaluator; any
other value raises :class:`~repro.exceptions.EvaluationError`).  The
``naive_*`` functions bypass the dispatch entirely.

The answer of a query of arity ``k`` is a frozenset of ``k``-tuples; a
boolean query answers ``frozenset({()})`` when true and ``frozenset()``
when false (the two possible answers of an arity-0 query).
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import EvaluationError
from ..relational.instance import Instance
from ..relational.tuples import Fact
from .atoms import Atom, Comparison
from .compiled import STATS as _EVAL_STATS, plan_for
from .query import ConjunctiveQuery
from .terms import Variable, is_constant

__all__ = [
    "EVAL_ENGINE_ENV",
    "evaluation_engine",
    "evaluate",
    "evaluate_boolean",
    "satisfying_assignments",
    "answer_tuple",
    "answer_contains",
    "delta_changes",
    "possible_answers",
    "naive_evaluate",
    "naive_evaluate_boolean",
    "naive_satisfying_assignments",
]

Assignment = Dict[Variable, object]

#: Environment variable selecting the evaluation engine.
EVAL_ENGINE_ENV = "REPRO_EVAL_ENGINE"

_ENGINE_NAMES = ("compiled", "naive")


def evaluation_engine() -> str:
    """The active engine name (``"compiled"`` or ``"naive"``).

    Resolution order: ``REPRO_EVAL_ENGINE`` when set and non-empty
    (case-insensitive), otherwise the compiled default.  An unrecognised
    value raises :class:`EvaluationError` rather than silently running
    the wrong engine.
    """
    raw = os.environ.get(EVAL_ENGINE_ENV)
    if raw is None:
        return "compiled"
    name = raw.strip().lower()
    if not name:
        return "compiled"
    if name not in _ENGINE_NAMES:
        raise EvaluationError(
            f"{EVAL_ENGINE_ENV} must be one of {list(_ENGINE_NAMES)}, got {raw!r}"
        )
    return name


class _Unbound:
    """Sentinel distinguishing 'unbound' from a bound ``None`` value."""

    __repr__ = lambda self: "<unbound>"  # noqa: E731  # pragma: no cover


_UNBOUND = _Unbound()


def _match_atom(
    atom: Atom, fact: Fact, assignment: Assignment
) -> Optional[List[Variable]]:
    """Extend the shared ``assignment`` in place so ``atom`` maps onto ``fact``.

    Returns the list of variables newly bound by this match — the caller
    deletes them once the branch is exhausted — or ``None`` when the
    match fails (partial bindings are undone before returning).  The
    seed copied the whole dict per candidate fact; extend/undo keeps the
    ablation baseline honest about *algorithmic* cost, not dict churn.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    bound_here: List[Variable] = []
    for term, value in zip(atom.terms, fact.values):
        if is_constant(term):
            if term.value == value:
                continue
        else:
            bound = assignment.get(term, _UNBOUND)
            if bound is _UNBOUND:
                assignment[term] = value
                bound_here.append(term)
                continue
            if bound == value:
                continue
        for variable in bound_here:
            del assignment[variable]
        return None
    return bound_here


def _comparisons_consistent(
    comparisons: Sequence[Comparison], assignment: Assignment
) -> bool:
    """Check every comparison whose variables are all bound."""
    for comparison in comparisons:
        if all(v in assignment for v in comparison.variables):
            if not comparison.evaluate(assignment):
                return False
    return True


def naive_satisfying_assignments(
    query: ConjunctiveQuery, instance: Instance
) -> Iterator[Assignment]:
    """The seed backtracking enumeration (body order, full relation scans).

    Yields every assignment of the query's variables that satisfies it,
    total over the body variables.  Comparisons are verified
    incrementally (as soon as both sides are bound) and re-verified once
    the assignment is total, which also covers comparisons between two
    constants.  For a :class:`~repro.cq.union.UnionQuery` the
    assignments of every disjunct are yielded in turn.
    """
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        for disjunct in disjuncts:
            yield from naive_satisfying_assignments(disjunct, instance)
        return
    _EVAL_STATS["naive_evaluations"] += 1
    body = list(query.body)
    comparisons = list(query.comparisons)
    assignment: Assignment = {}

    def extend(index: int) -> Iterator[Assignment]:
        if index == len(body):
            if _comparisons_consistent(comparisons, assignment) and all(
                comparison.evaluate(assignment)
                for comparison in comparisons
                if not comparison.variables
            ):
                yield dict(assignment)
            return
        atom = body[index]
        for fact in instance.relation(atom.relation):
            bound_here = _match_atom(atom, fact, assignment)
            if bound_here is None:
                continue
            if _comparisons_consistent(comparisons, assignment):
                yield from extend(index + 1)
            for variable in bound_here:
                del assignment[variable]

    yield from extend(0)


def naive_evaluate(
    query: ConjunctiveQuery, instance: Instance
) -> FrozenSet[Tuple[object, ...]]:
    """Evaluate with the seed backtracking engine (set semantics)."""
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        answers: set = set()
        for disjunct in disjuncts:
            answers |= naive_evaluate(disjunct, instance)
        return frozenset(answers)
    answers = set()
    for assignment in naive_satisfying_assignments(query, instance):
        answers.add(answer_tuple(query, assignment))
    return frozenset(answers)


def naive_evaluate_boolean(query: ConjunctiveQuery, instance: Instance) -> bool:
    """Boolean evaluation with the seed backtracking engine."""
    for _ in naive_satisfying_assignments(query, instance):
        return True
    return False


# ---------------------------------------------------------------------------
# Engine-dispatching public API
# ---------------------------------------------------------------------------
def satisfying_assignments(
    query: ConjunctiveQuery, instance: Instance
) -> Iterator[Assignment]:
    """Yield every assignment of the query's variables that satisfies it.

    The assignments are total over the query's body variables; the
    *set* of assignments is engine-independent (their order is not).
    For a :class:`~repro.cq.union.UnionQuery` the assignments of every
    disjunct are yielded in turn.
    """
    if evaluation_engine() == "naive":
        yield from naive_satisfying_assignments(query, instance)
        return
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        for disjunct in disjuncts:
            yield from satisfying_assignments(disjunct, instance)
        return
    yield from plan_for(query).assignments(instance)


def answer_tuple(query: ConjunctiveQuery, assignment: Mapping[Variable, object]) -> Tuple[object, ...]:
    """The head tuple produced by one satisfying assignment."""
    values: List[object] = []
    for term in query.head:
        if is_constant(term):
            values.append(term.value)
        else:
            values.append(assignment[term])
    return tuple(values)


def evaluate(query: ConjunctiveQuery, instance: Instance) -> FrozenSet[Tuple[object, ...]]:
    """Evaluate a conjunctive query or a union of them (set semantics)."""
    if evaluation_engine() == "naive":
        return naive_evaluate(query, instance)
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        answers: set = set()
        for disjunct in disjuncts:
            answers |= evaluate(disjunct, instance)
        return frozenset(answers)
    return plan_for(query).evaluate(instance)


def evaluate_boolean(query: ConjunctiveQuery, instance: Instance) -> bool:
    """Evaluate a boolean query; also works for non-boolean queries
    (true iff the answer is non-empty)."""
    if evaluation_engine() == "naive":
        return naive_evaluate_boolean(query, instance)
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        return any(evaluate_boolean(disjunct, instance) for disjunct in disjuncts)
    return plan_for(query).evaluate_boolean(instance)


def answer_contains(
    query: ConjunctiveQuery, instance: Instance, row: Sequence[object]
) -> bool:
    """Decide ``row ∈ Q(instance)`` without materialising the full answer.

    On the compiled engine the head slots are seeded with the row's
    values (:meth:`~repro.cq.compiled.CompiledPlan.derives_row`), so the
    search is keyed to that single answer; the naive engine evaluates
    the whole query — the honest ablation baseline.  Rows of the wrong
    arity simply return ``False``.
    """
    row = tuple(row)
    if evaluation_engine() == "naive":
        return row in naive_evaluate(query, instance)
    disjuncts = getattr(query, "disjuncts", None) or (query,)
    return any(plan_for(disjunct).derives_row(instance, row) for disjunct in disjuncts)


def delta_changes(query: ConjunctiveQuery, instance: Instance, fact: Fact) -> bool:
    """Decide ``Q(instance) ≠ Q(instance − fact)`` (the criticality test).

    Conjunctive queries and their unions are monotone, so the answer can
    only lose rows when a fact is removed; the compiled engine therefore
    re-derives only the answer rows whose derivations *use* the fact
    (:meth:`~repro.cq.compiled.CompiledPlan.delta_without`) and checks
    those against the shrunken instance.  A fact outside the instance,
    or unifying with no subgoal, costs nothing.  The naive engine
    evaluates the query twice in full — the ablation baseline.
    """
    if evaluation_engine() == "naive":
        return naive_evaluate(query, instance) != naive_evaluate(
            query, instance.remove(fact)
        )
    if fact not in instance:
        return False
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is None:
        return plan_for(query).delta_without(instance, fact)
    # Union: a candidate row must vanish from the *whole* union's answer.
    without = instance.remove(fact)
    checked: set = set()
    for disjunct in disjuncts:
        for row in plan_for(disjunct).delta_candidates(instance, fact):
            if row in checked:
                continue
            checked.add(row)
            if not any(plan_for(d).derives_row(without, row) for d in disjuncts):
                return True
    return False


def possible_answers(
    query: ConjunctiveQuery, instances: Sequence[Instance]
) -> FrozenSet[FrozenSet[Tuple[object, ...]]]:
    """The set of distinct answers the query attains over the given instances.

    Used by the engine to enumerate the events ``Q(I) = q`` for every
    possible answer ``q`` (Definition 4.1 quantifies over all of them).
    """
    return frozenset(evaluate(query, instance) for instance in instances)
