"""Evaluation of conjunctive queries over database instances.

Three engines share this module's public entry points:

* ``compiled`` (the default) — :mod:`repro.cq.compiled` plans each query
  once (greedy join ordering, per-instance hash-index probes, slot-array
  bindings, earliest-point comparison checks) and also answers the
  restricted *delta* questions the criticality engines ask
  (:func:`answer_contains`, :func:`delta_changes`).
* ``naive`` — the seed backtracking evaluator, preserved verbatim in
  spirit as ``naive_*`` for cross-validation and ablation benchmarks.
  It scans every fact of the matching relation per subgoal, in body
  order, extending one shared assignment dict in place.
* ``sql`` — :mod:`repro.cq.sql` compiles the same join plans into
  parameterized sqlite3 statements against a
  :class:`~repro.storage.sqlite.SQLiteFactStore` (plain instances are
  mirrored transparently).  This is the engine for 10^5–10^6-fact
  stores the in-memory engines cannot hold comfortably.

The engine is selected by the ``REPRO_EVAL_ENGINE`` environment variable
(``compiled``/unset → compiled; ``naive``/``sql`` as named; any other
value raises :class:`~repro.exceptions.EvaluationError`).  Each distinct
raw value is validated once and memoized, and the variable present at
import time is validated immediately, so a bad deployment fails fast
rather than on the first query.  :func:`eval_engine_scope` overrides the
selection for the current thread of control (a
:class:`contextvars.ContextVar`, so concurrent service sessions can pin
different engines).  The ``naive_*`` functions bypass the dispatch
entirely.

The in-memory engines accept any fact iterable (a
:class:`~repro.storage.base.FactStore` included) by materialising it
into an :class:`Instance` first — correct, but re-materialised per call;
evaluate large stores with the ``sql`` engine.

The answer of a query of arity ``k`` is a frozenset of ``k``-tuples; a
boolean query answers ``frozenset({()})`` when true and ``frozenset()``
when false (the two possible answers of an arity-0 query).
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import EvaluationError
from ..obs import span
from ..relational.instance import Instance
from ..relational.tuples import Fact
from .atoms import Atom, Comparison
from .compiled import STATS as _EVAL_STATS, plan_for
from .query import ConjunctiveQuery
from .terms import Variable, is_constant

__all__ = [
    "EVAL_ENGINE_ENV",
    "evaluation_engine",
    "eval_engine_scope",
    "evaluate",
    "evaluate_boolean",
    "satisfying_assignments",
    "answer_tuple",
    "answer_contains",
    "delta_changes",
    "delta_with",
    "delta_apply",
    "delta_apply_many",
    "possible_answers",
    "naive_evaluate",
    "naive_evaluate_boolean",
    "naive_satisfying_assignments",
]

Assignment = Dict[Variable, object]

#: Environment variable selecting the evaluation engine.
EVAL_ENGINE_ENV = "REPRO_EVAL_ENGINE"

_ENGINE_NAMES = ("compiled", "naive", "sql")

#: Per-context engine override (None → fall back to the environment).
_ENGINE_OVERRIDE: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_eval_engine_override", default=None
)

#: Raw value → validated engine name.  Only successes are memoized, so a
#: value is validated exactly once while a bad value keeps raising.
_VALIDATED: Dict[str, str] = {}


def _validate_engine(raw: str) -> str:
    name = _VALIDATED.get(raw)
    if name is None:
        name = raw.strip().lower() or "compiled"
        if name not in _ENGINE_NAMES:
            raise EvaluationError(
                "evaluation engine must be one of "
                f"{list(_ENGINE_NAMES)}, got {raw!r} "
                f"(selected via {EVAL_ENGINE_ENV} or eval_engine_scope)"
            )
        _VALIDATED[raw] = name
    return name


def evaluation_engine() -> str:
    """The active engine name (``"compiled"``, ``"naive"`` or ``"sql"``).

    Resolution order: an :func:`eval_engine_scope` override for the
    current context, then ``REPRO_EVAL_ENGINE`` when set and non-empty
    (case-insensitive), otherwise the compiled default.  An unrecognised
    value raises :class:`EvaluationError` rather than silently running
    the wrong engine.
    """
    override = _ENGINE_OVERRIDE.get()
    if override is not None:
        return override
    raw = os.environ.get(EVAL_ENGINE_ENV)
    if raw is None:
        return "compiled"
    return _validate_engine(raw)


@contextmanager
def eval_engine_scope(engine: Optional[str]) -> Iterator[str]:
    """Pin the evaluation engine for the current thread of control.

    ``None`` pins nothing (the ambient selection applies) — convenient
    for callers threading through an optional engine parameter.  The
    override lives in a :class:`contextvars.ContextVar`, so concurrent
    sessions in one process can run different engines; it does **not**
    propagate into process-pool workers (the parallel criticality
    engine), which inherit the environment variable instead — safe,
    because criticality verdicts are engine-independent.
    """
    if engine is None:
        yield evaluation_engine()
        return
    name = _validate_engine(engine)
    token = _ENGINE_OVERRIDE.set(name)
    try:
        yield name
    finally:
        _ENGINE_OVERRIDE.reset(token)


def _memory(instance) -> Instance:
    """An in-memory instance over the target's facts.

    The compiled and naive engines work on :class:`Instance`; any other
    fact store is materialised (never cached — stores are mutable).
    """
    if isinstance(instance, Instance):
        return instance
    return Instance(instance)


class _Unbound:
    """Sentinel distinguishing 'unbound' from a bound ``None`` value."""

    __repr__ = lambda self: "<unbound>"  # noqa: E731  # pragma: no cover


_UNBOUND = _Unbound()


def _match_atom(
    atom: Atom, fact: Fact, assignment: Assignment
) -> Optional[List[Variable]]:
    """Extend the shared ``assignment`` in place so ``atom`` maps onto ``fact``.

    Returns the list of variables newly bound by this match — the caller
    deletes them once the branch is exhausted — or ``None`` when the
    match fails (partial bindings are undone before returning).  The
    seed copied the whole dict per candidate fact; extend/undo keeps the
    ablation baseline honest about *algorithmic* cost, not dict churn.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    bound_here: List[Variable] = []
    for term, value in zip(atom.terms, fact.values):
        if is_constant(term):
            if term.value == value:
                continue
        else:
            bound = assignment.get(term, _UNBOUND)
            if bound is _UNBOUND:
                assignment[term] = value
                bound_here.append(term)
                continue
            if bound == value:
                continue
        for variable in bound_here:
            del assignment[variable]
        return None
    return bound_here


def _comparisons_consistent(
    comparisons: Sequence[Comparison], assignment: Assignment
) -> bool:
    """Check every comparison whose variables are all bound."""
    for comparison in comparisons:
        if all(v in assignment for v in comparison.variables):
            if not comparison.evaluate(assignment):
                return False
    return True


def naive_satisfying_assignments(
    query: ConjunctiveQuery, instance: Instance
) -> Iterator[Assignment]:
    """The seed backtracking enumeration (body order, full relation scans).

    Yields every assignment of the query's variables that satisfies it,
    total over the body variables.  Comparisons are verified
    incrementally (as soon as both sides are bound) and re-verified once
    the assignment is total, which also covers comparisons between two
    constants.  For a :class:`~repro.cq.union.UnionQuery` the
    assignments of every disjunct are yielded in turn.
    """
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        for disjunct in disjuncts:
            yield from naive_satisfying_assignments(disjunct, instance)
        return
    _EVAL_STATS.bump("naive_evaluations")
    body = list(query.body)
    comparisons = list(query.comparisons)
    assignment: Assignment = {}

    def extend(index: int) -> Iterator[Assignment]:
        if index == len(body):
            if _comparisons_consistent(comparisons, assignment) and all(
                comparison.evaluate(assignment)
                for comparison in comparisons
                if not comparison.variables
            ):
                yield dict(assignment)
            return
        atom = body[index]
        for fact in instance.relation(atom.relation):
            bound_here = _match_atom(atom, fact, assignment)
            if bound_here is None:
                continue
            if _comparisons_consistent(comparisons, assignment):
                yield from extend(index + 1)
            for variable in bound_here:
                del assignment[variable]

    yield from extend(0)


def naive_evaluate(
    query: ConjunctiveQuery, instance: Instance
) -> FrozenSet[Tuple[object, ...]]:
    """Evaluate with the seed backtracking engine (set semantics)."""
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        answers: set = set()
        for disjunct in disjuncts:
            answers |= naive_evaluate(disjunct, instance)
        return frozenset(answers)
    answers = set()
    for assignment in naive_satisfying_assignments(query, instance):
        answers.add(answer_tuple(query, assignment))
    return frozenset(answers)


def naive_evaluate_boolean(query: ConjunctiveQuery, instance: Instance) -> bool:
    """Boolean evaluation with the seed backtracking engine."""
    for _ in naive_satisfying_assignments(query, instance):
        return True
    return False


# ---------------------------------------------------------------------------
# Engine-dispatching public API
# ---------------------------------------------------------------------------
def satisfying_assignments(
    query: ConjunctiveQuery, instance: Instance
) -> Iterator[Assignment]:
    """Yield every assignment of the query's variables that satisfies it.

    The assignments are total over the query's body variables; the
    *set* of assignments is engine-independent (their order is not).
    For a :class:`~repro.cq.union.UnionQuery` the assignments of every
    disjunct are yielded in turn.
    """
    engine = evaluation_engine()
    if engine == "naive":
        yield from naive_satisfying_assignments(query, _memory(instance))
        return
    if engine == "sql":
        from . import sql as _sql

        yield from _sql.satisfying_assignments(query, instance)
        return
    instance = _memory(instance)
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        for disjunct in disjuncts:
            yield from satisfying_assignments(disjunct, instance)
        return
    yield from plan_for(query).assignments(instance)


def answer_tuple(query: ConjunctiveQuery, assignment: Mapping[Variable, object]) -> Tuple[object, ...]:
    """The head tuple produced by one satisfying assignment."""
    values: List[object] = []
    for term in query.head:
        if is_constant(term):
            values.append(term.value)
        else:
            values.append(assignment[term])
    return tuple(values)


def evaluate(query: ConjunctiveQuery, instance: Instance) -> FrozenSet[Tuple[object, ...]]:
    """Evaluate a conjunctive query or a union of them (set semantics)."""
    # One span per top-level call (a union is one evaluation); past the
    # trace's span cap repeated calls fold into an aggregate row.
    with span("cq.evaluate"):
        return _evaluate(query, instance)


def _evaluate(query: ConjunctiveQuery, instance: Instance) -> FrozenSet[Tuple[object, ...]]:
    engine = evaluation_engine()
    if engine == "naive":
        return naive_evaluate(query, _memory(instance))
    if engine == "sql":
        from . import sql as _sql

        return _sql.evaluate(query, instance)
    instance = _memory(instance)
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        answers: set = set()
        for disjunct in disjuncts:
            answers |= _evaluate(disjunct, instance)
        return frozenset(answers)
    return plan_for(query).evaluate(instance)


def evaluate_boolean(query: ConjunctiveQuery, instance: Instance) -> bool:
    """Evaluate a boolean query; also works for non-boolean queries
    (true iff the answer is non-empty)."""
    with span("cq.evaluate"):
        return _evaluate_boolean(query, instance)


def _evaluate_boolean(query: ConjunctiveQuery, instance: Instance) -> bool:
    engine = evaluation_engine()
    if engine == "naive":
        return naive_evaluate_boolean(query, _memory(instance))
    if engine == "sql":
        from . import sql as _sql

        return _sql.evaluate_boolean(query, instance)
    instance = _memory(instance)
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        return any(_evaluate_boolean(disjunct, instance) for disjunct in disjuncts)
    return plan_for(query).evaluate_boolean(instance)


def answer_contains(
    query: ConjunctiveQuery, instance: Instance, row: Sequence[object]
) -> bool:
    """Decide ``row ∈ Q(instance)`` without materialising the full answer.

    On the compiled engine the head slots are seeded with the row's
    values (:meth:`~repro.cq.compiled.CompiledPlan.derives_row`), so the
    search is keyed to that single answer; the naive engine evaluates
    the whole query — the honest ablation baseline.  Rows of the wrong
    arity simply return ``False``.
    """
    row = tuple(row)
    engine = evaluation_engine()
    if engine == "naive":
        return row in naive_evaluate(query, _memory(instance))
    if engine == "sql":
        from . import sql as _sql

        return _sql.answer_contains(query, instance, row)
    instance = _memory(instance)
    disjuncts = getattr(query, "disjuncts", None) or (query,)
    return any(plan_for(disjunct).derives_row(instance, row) for disjunct in disjuncts)


def delta_changes(query: ConjunctiveQuery, instance: Instance, fact: Fact) -> bool:
    """Decide ``Q(instance) ≠ Q(instance − fact)`` (the criticality test).

    Conjunctive queries and their unions are monotone, so the answer can
    only lose rows when a fact is removed; the compiled engine therefore
    re-derives only the answer rows whose derivations *use* the fact
    (:meth:`~repro.cq.compiled.CompiledPlan.delta_without`) and checks
    those against the shrunken instance.  A fact outside the instance,
    or unifying with no subgoal, costs nothing.  The naive engine
    evaluates the query twice in full — the ablation baseline.
    """
    with span("cq.delta"):
        return _delta_changes(query, instance, fact)


def _delta_changes(query: ConjunctiveQuery, instance: Instance, fact: Fact) -> bool:
    engine = evaluation_engine()
    if engine == "naive":
        instance = _memory(instance)
        return naive_evaluate(query, instance) != naive_evaluate(
            query, instance.remove(fact)
        )
    if engine == "sql":
        from . import sql as _sql

        return _sql.delta_changes(query, instance, fact)
    instance = _memory(instance)
    if fact not in instance:
        return False
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is None:
        return plan_for(query).delta_without(instance, fact)
    # Union: a candidate row must vanish from the *whole* union's answer.
    without = instance.remove(fact)
    checked: set = set()
    for disjunct in disjuncts:
        for row in plan_for(disjunct).delta_candidates(instance, fact):
            if row in checked:
                continue
            checked.add(row)
            if not any(plan_for(d).derives_row(without, row) for d in disjuncts):
                return True
    return False


def delta_with(query: ConjunctiveQuery, instance: Instance, fact: Fact) -> bool:
    """Decide ``Q(instance ∪ {fact}) ≠ Q(instance)`` (insertion delta).

    The symmetric counterpart of :func:`delta_changes`: conjunctive
    queries and their unions are monotone, so inserting a fact can only
    *gain* answer rows, and every gained row has a derivation using the
    new fact.  The compiled engine re-derives only the pinned-atom
    candidates over the grown instance and checks each against the
    original; a fact already present, or unifying with no subgoal,
    costs nothing.  The naive engine evaluates both states in full.
    """
    with span("cq.delta"):
        return _delta_with(query, instance, fact)


def _delta_with(query: ConjunctiveQuery, instance: Instance, fact: Fact) -> bool:
    engine = evaluation_engine()
    if engine == "naive":
        instance = _memory(instance)
        return naive_evaluate(query, instance.add(fact)) != naive_evaluate(
            query, instance
        )
    if engine == "sql":
        from . import sql as _sql

        return _sql.delta_with(query, instance, fact)
    instance = _memory(instance)
    if fact in instance:
        return False
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is None:
        return plan_for(query).delta_with(instance, fact)
    # Union: a candidate row must be new to the *whole* union's answer.
    with_fact = instance.add(fact)
    checked: set = set()
    for disjunct in disjuncts:
        for row in plan_for(disjunct).delta_candidates(with_fact, fact):
            if row in checked:
                continue
            checked.add(row)
            if not any(plan_for(d).derives_row(instance, row) for d in disjuncts):
                return True
    return False


def delta_apply(
    query: ConjunctiveQuery,
    instance: Instance,
    added: Sequence[Fact] = (),
    removed: Sequence[Fact] = (),
) -> Tuple[object, FrozenSet[Tuple[object, ...]], FrozenSet[Tuple[object, ...]]]:
    """Apply a batched fact delta and report the answer change.

    The post-state is ``after = (instance − removed) ∪ added`` (a fact
    listed in both sets ends up present).  Returns ``(after, gained,
    lost)`` where ``gained = Q(after) − Q(instance)`` and ``lost =
    Q(instance) − Q(after)``.  On the in-memory engines ``after`` is a
    new :class:`~repro.relational.instance.Instance` (derived through
    the cache-patching single-fact ``add``/``remove``); on the sql
    engine a :class:`~repro.storage.sqlite.SQLiteFactStore` target is
    mutated *in place* and returned.

    The compiled engine is semi-naive throughout: only answer rows with
    a derivation using a changed fact are ever re-checked — removal
    candidates over the pre-state, insertion candidates over the
    post-state — so an untouched query costs nothing beyond the
    unification checks.
    """
    with span("cq.delta"):
        return _delta_apply(query, instance, tuple(added), tuple(removed))


def _delta_apply(
    query: ConjunctiveQuery,
    instance: Instance,
    added: Tuple[Fact, ...],
    removed: Tuple[Fact, ...],
):
    engine = evaluation_engine()
    if engine == "sql":
        from . import sql as _sql

        return _sql.delta_apply(query, instance, added, removed)
    before = _memory(instance)
    after, truly_added, truly_removed = _memory_delta(before, added, removed)
    if engine == "naive":
        before_answer = naive_evaluate(query, before)
        after_answer = naive_evaluate(query, after)
        return after, after_answer - before_answer, before_answer - after_answer
    gained, lost = _compiled_change(query, before, after, truly_added, truly_removed)
    return after, gained, lost


def _memory_delta(
    before: Instance, added: Tuple[Fact, ...], removed: Tuple[Fact, ...]
) -> Tuple[Instance, List[Fact], List[Fact]]:
    """Advance an in-memory instance through one batched delta.

    Returns ``(after, truly_added, truly_removed)`` where the fact lists
    are deduplicated and reduced to actual state changes (a fact listed
    in both sets ends up present, so it is neither).
    """
    added_set = set(added)
    truly_removed = [
        f for f in dict.fromkeys(removed) if f in before and f not in added_set
    ]
    truly_added = [f for f in dict.fromkeys(added) if f not in before]
    after = before
    for fact in truly_removed:
        after = after.remove(fact)
    for fact in truly_added:
        after = after.add(fact)
    return after, truly_added, truly_removed


def _compiled_change(
    query: ConjunctiveQuery,
    before: Instance,
    after: Instance,
    truly_added: Sequence[Fact],
    truly_removed: Sequence[Fact],
) -> Tuple[FrozenSet[Tuple[object, ...]], FrozenSet[Tuple[object, ...]]]:
    """``(gained, lost)`` of one query across a pre-computed delta."""
    disjuncts = getattr(query, "disjuncts", None) or (query,)
    # Removal candidates are in Q(before) by construction; they are lost
    # iff nothing re-derives them over the post-state.
    lost_candidates: set = set()
    for fact in truly_removed:
        for disjunct in disjuncts:
            lost_candidates.update(plan_for(disjunct).delta_candidates(before, fact))
    lost = frozenset(
        row
        for row in lost_candidates
        if not any(plan_for(d).derives_row(after, row) for d in disjuncts)
    )
    # Insertion candidates are in Q(after) by construction; they are
    # gained iff they were not derivable over the pre-state.  A row seen
    # among the removal candidates is in Q(before), hence never gained.
    gained: set = set()
    gained_checked: set = set()
    for fact in truly_added:
        for disjunct in disjuncts:
            for row in plan_for(disjunct).delta_candidates(after, fact):
                if row in lost_candidates or row in gained_checked:
                    continue
                gained_checked.add(row)
                if not any(plan_for(d).derives_row(before, row) for d in disjuncts):
                    gained.add(row)
    return frozenset(gained), lost


def delta_apply_many(
    queries: Sequence[ConjunctiveQuery],
    instance: Instance,
    added: Sequence[Fact] = (),
    removed: Sequence[Fact] = (),
) -> Tuple[
    object,
    List[Tuple[FrozenSet[Tuple[object, ...]], FrozenSet[Tuple[object, ...]]]],
]:
    """Apply one batched fact delta shared by many queries.

    The state advances exactly once — one patched instance chain, or one
    in-place store mutation — and every query's ``(gained, lost)`` change
    is computed against that single delta.  Returns ``(after, changes)``
    with ``changes[i]`` the i-th query's answer change; the state
    semantics (patched instance vs. in-place store) match
    :func:`delta_apply`.  This is the primitive a live audit session
    uses: it classifies which of its tracked queries a delta can touch
    and passes only those here, so untouched queries cost nothing at all.
    """
    with span("cq.delta"):
        queries = tuple(queries)
        added = tuple(added)
        removed = tuple(removed)
        engine = evaluation_engine()
        if engine == "sql":
            from . import sql as _sql

            return _sql.delta_apply_many(queries, instance, added, removed)
        before = _memory(instance)
        after, truly_added, truly_removed = _memory_delta(before, added, removed)
        changes = []
        for query in queries:
            if engine == "naive":
                before_answer = naive_evaluate(query, before)
                after_answer = naive_evaluate(query, after)
                changes.append(
                    (after_answer - before_answer, before_answer - after_answer)
                )
            else:
                changes.append(
                    _compiled_change(query, before, after, truly_added, truly_removed)
                )
        return after, changes


def possible_answers(
    query: ConjunctiveQuery, instances: Sequence[Instance]
) -> FrozenSet[FrozenSet[Tuple[object, ...]]]:
    """The set of distinct answers the query attains over the given instances.

    Used by the engine to enumerate the events ``Q(I) = q`` for every
    possible answer ``q`` (Definition 4.1 quantifies over all of them).
    """
    return frozenset(evaluate(query, instance) for instance in instances)


# Validate the engine selection present at import time, so a
# misconfigured deployment fails when the dispatcher loads rather than
# on its first query.  Values set *after* import (tests, scopes) are
# still validated — once each — on first use.
evaluation_engine()
