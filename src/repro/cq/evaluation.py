"""Evaluation of conjunctive queries over database instances.

Evaluation enumerates the homomorphisms (satisfying assignments) from the
query body into the instance via backtracking, checking comparison
predicates as soon as both sides are bound.  The answer of a query of
arity ``k`` is a frozenset of ``k``-tuples; a boolean query answers
``frozenset({()})`` when true and ``frozenset()`` when false (the two
possible answers of an arity-0 query).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..relational.instance import Instance
from ..relational.tuples import Fact
from .atoms import Atom, Comparison
from .query import ConjunctiveQuery
from .terms import Term, Variable, is_constant, is_variable

__all__ = [
    "evaluate",
    "evaluate_boolean",
    "satisfying_assignments",
    "answer_tuple",
    "possible_answers",
]

Assignment = Dict[Variable, object]


def _match_atom(
    atom: Atom, fact: Fact, assignment: Assignment
) -> Optional[Assignment]:
    """Try to extend ``assignment`` so that ``atom`` maps onto ``fact``.

    Returns the extended assignment, or ``None`` when the match fails.
    The input assignment is never mutated.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    extended = dict(assignment)
    for term, value in zip(atom.terms, fact.values):
        if is_constant(term):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                extended[term] = value
            elif bound != value:
                return None
    return extended


class _Unbound:
    """Sentinel distinguishing 'unbound' from a bound ``None`` value."""

    __repr__ = lambda self: "<unbound>"  # noqa: E731  # pragma: no cover


_UNBOUND = _Unbound()


def _comparisons_consistent(
    comparisons: Sequence[Comparison], assignment: Assignment
) -> bool:
    """Check every comparison whose variables are all bound."""
    for comparison in comparisons:
        if all(v in assignment for v in comparison.variables):
            if not comparison.evaluate(assignment):
                return False
    return True


def satisfying_assignments(
    query: ConjunctiveQuery, instance: Instance
) -> Iterator[Assignment]:
    """Yield every assignment of the query's variables that satisfies it.

    The assignments returned are total over the query's body variables.
    Comparisons are verified incrementally (as soon as both sides are
    bound) and re-verified once the assignment is total, which also
    covers comparisons between two constants.

    For a :class:`~repro.cq.union.UnionQuery` the assignments of every
    disjunct are yielded in turn.
    """
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        for disjunct in disjuncts:
            yield from satisfying_assignments(disjunct, instance)
        return
    body = list(query.body)
    comparisons = list(query.comparisons)

    def extend(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(body):
            if _comparisons_consistent(comparisons, assignment) and all(
                comparison.evaluate(assignment)
                for comparison in comparisons
                if not comparison.variables
            ):
                yield dict(assignment)
            return
        atom = body[index]
        for fact in instance.relation(atom.relation):
            extended = _match_atom(atom, fact, assignment)
            if extended is None:
                continue
            if not _comparisons_consistent(comparisons, extended):
                continue
            yield from extend(index + 1, extended)

    yield from extend(0, {})


def answer_tuple(query: ConjunctiveQuery, assignment: Mapping[Variable, object]) -> Tuple[object, ...]:
    """The head tuple produced by one satisfying assignment."""
    values: List[object] = []
    for term in query.head:
        if is_constant(term):
            values.append(term.value)
        else:
            values.append(assignment[term])
    return tuple(values)


def evaluate(query: ConjunctiveQuery, instance: Instance) -> FrozenSet[Tuple[object, ...]]:
    """Evaluate a conjunctive query or a union of them (set semantics)."""
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        answers: set = set()
        for disjunct in disjuncts:
            answers |= evaluate(disjunct, instance)
        return frozenset(answers)
    answers = set()
    for assignment in satisfying_assignments(query, instance):
        answers.add(answer_tuple(query, assignment))
    return frozenset(answers)


def evaluate_boolean(query: ConjunctiveQuery, instance: Instance) -> bool:
    """Evaluate a boolean query; also works for non-boolean queries
    (true iff the answer is non-empty)."""
    for _ in satisfying_assignments(query, instance):
        return True
    return False


def possible_answers(
    query: ConjunctiveQuery, instances: Sequence[Instance]
) -> FrozenSet[FrozenSet[Tuple[object, ...]]]:
    """The set of distinct answers the query attains over the given instances.

    Used by the engine to enumerate the events ``Q(I) = q`` for every
    possible answer ``q`` (Definition 4.1 quantifies over all of them).
    """
    return frozenset(evaluate(query, instance) for instance in instances)
