"""Compilation of conjunctive-query join plans into parameterized SQL.

The third evaluation engine (``REPRO_EVAL_ENGINE=sql``) pushes query
evaluation into sqlite3 — the practical path for database-security
analyses at the scale the paper's hospital/census scenarios describe,
where the in-memory engines stop fitting.  One :class:`SQLPlan` is
compiled per query object (cached on the query, exactly like
:func:`repro.cq.compiled.plan_for`):

* every body atom becomes a table alias over its ``(relation, arity)``
  table in a :class:`~repro.storage.sqlite.SQLiteFactStore`;
* constants become parameterized equality predicates, repeated
  variables become join predicates against the variable's first
  occurrence column, and comparison predicates translate operator-for-
  operator (the spellings coincide);
* the join planner's probe keys (:func:`repro.cq.plan.build_steps`)
  become **covering-index requests** the store satisfies once per
  ``(table, positions)`` pair, so sqlite's planner has the same access
  paths the compiled engine builds as hash indexes.

The criticality hot path is answered with *delta-seeded SQL* rather
than a copied store: ``answer_contains`` seeds the head columns with
the row's values, and ``delta_changes`` re-derives only candidate rows
whose derivations use the removed fact (the pinned-atom variants of the
compiled engine, expressed as equality predicates) and re-checks each
against ``Q(I − t)`` by *excluding* the fact with per-alias
``NOT (tᵢ.c0 = ? AND …)`` predicates — no second store, no reload.

Evaluating against a plain in-memory
:class:`~repro.relational.instance.Instance` transparently builds a
per-instance in-memory sqlite mirror, cached on the instance for its
lifetime (instances are immutable, mirroring the hash-index cache).

Known divergence: SQLite totally orders values across storage classes,
so an order comparison (``<``/``<=``/``>``/``>=``) between, say, an int
and a str silently decides where the Python engines raise
``QueryError``.  Order predicates over type-uniform columns — the only
ones with well-defined answers — agree across all three engines.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .. import faults
from ..exceptions import EvaluationError, QueryError, ReproError
from ..obs import span
from ..obs.counters import StatCounters
from ..relational.instance import Instance
from ..relational.tuples import Fact
from ..storage.sqlite import SQLiteFactStore
from .atoms import COMPARISON_OPS
from .plan import build_steps, slot_assignment
from .query import ConjunctiveQuery
from .terms import Variable, is_constant

__all__ = [
    "SQLPlan",
    "sql_plan_for",
    "store_for",
    "SQL_STATS",
    "evaluate",
    "evaluate_boolean",
    "satisfying_assignments",
    "answer_contains",
    "delta_changes",
    "delta_with",
    "delta_apply",
    "delta_apply_many",
]

#: Process-wide SQL-backend counters (monotone; surfaced through
#: :func:`repro.cq.evaluation_stats`).  A
#: :class:`~repro.obs.counters.StatCounters`: bumped through ``.bump()``
#: so counts survive concurrent evaluation on worker threads.
SQL_STATS = StatCounters(
    (
        "sql_plans_compiled",
        "sql_plan_cache_hits",
        "sql_statements_executed",
        "sql_rows_fetched",
        "sql_mirrors_built",
        "sql_delta_calls",
        "sql_fallbacks",
        "sql_io_fallbacks",
    )
)


class UnstorableError(EvaluationError):
    """A value in the instance or query cannot live in a SQL store.

    sqlite holds int, float and str; the decision procedure's canonical
    instances also carry *symbolic* values (labeled nulls such as the
    asymptotic engine's fresh blocks) that only exist in memory.  Those
    instances are tiny by construction, so the public entry points catch
    this and fall back to the compiled engine — counted in
    ``SQL_STATS["sql_fallbacks"]``, never silent.
    """

#: Attribute under which a query's SQL plan is cached on the query object.
_SQL_PLAN_ATTRIBUTE = "_sql_plan"

#: Instance slot holding the lazily-built sqlite mirror.
_MIRROR_ATTRIBUTE = "_sqlite_mirror"


def sql_plan_for(query: ConjunctiveQuery) -> "SQLPlan":
    """The SQL plan of a conjunctive query (cached on the query object)."""
    plan = getattr(query, _SQL_PLAN_ATTRIBUTE, None)
    if plan is None:
        SQL_STATS.bump("sql_plans_compiled")
        plan = SQLPlan(query)
        try:
            object.__setattr__(query, _SQL_PLAN_ATTRIBUTE, plan)
        except (AttributeError, TypeError):  # pragma: no cover - exotic subclass
            pass
    else:
        SQL_STATS.bump("sql_plan_cache_hits")
    return plan


def store_for(instance) -> SQLiteFactStore:
    """The SQL store behind an evaluation target.

    A :class:`SQLiteFactStore` is used directly.  A plain
    :class:`Instance` gets an in-memory mirror, built once and cached on
    the instance (immutable, so never invalidated; a concurrent first
    use may benignly build twice).  Any other fact iterable gets an
    uncached transient mirror.
    """
    if isinstance(instance, SQLiteFactStore):
        return instance
    mirror = getattr(instance, _MIRROR_ATTRIBUTE, None)
    if mirror is not None:
        return mirror
    try:
        # Prefer the raw frozenset over Instance.__iter__, which sorts —
        # and sorting raises on mixed-type domains.
        mirror = SQLiteFactStore.mirror(getattr(instance, "facts", instance))
    except ReproError as error:
        raise UnstorableError(
            f"the sql engine cannot mirror this instance: {error}"
        ) from error
    SQL_STATS.bump("sql_mirrors_built")
    if isinstance(instance, Instance):
        try:
            setattr(instance, _MIRROR_ATTRIBUTE, mirror)
        except AttributeError:  # pragma: no cover - exotic subclass
            pass
    return mirror


def _execute(
    store: SQLiteFactStore, sql: str, params: Sequence[object]
) -> List[Tuple[object, ...]]:
    for rule in faults.fire("sql.execute"):
        faults.perform(rule)
    SQL_STATS.bump("sql_statements_executed")
    with span("sql.execute") as sp:
        rows = store.execute(sql, params)
        if sp:
            sp.set("rows", len(rows))
    SQL_STATS.bump("sql_rows_fetched", len(rows))
    return rows


class SQLPlan:
    """A conjunctive query compiled to parameterized SQL text.

    The plan is store-independent: table names are resolved per call
    (different stores map the same relation to different physical
    tables), everything else — the alias layout, join/constant
    predicates, parameter order, probe-key index requests — is fixed at
    compile time.
    """

    __slots__ = (
        "query",
        "slot_of",
        "slot_variables",
        "atom_tables",
        "conditions",
        "params",
        "column_of",
        "head_parts",
        "constant_comparisons",
        "index_requests",
    )

    def __init__(self, query: ConjunctiveQuery):
        if getattr(query, "disjuncts", None) is not None:
            raise EvaluationError(
                "SQLPlan compiles a single conjunctive query; evaluate a union "
                "through repro.cq.evaluation, which dispatches per disjunct"
            )
        self.query = query
        self.slot_of: Dict[Variable, int] = slot_assignment(query)
        self.slot_variables: Tuple[Variable, ...] = tuple(
            sorted(self.slot_of, key=self.slot_of.__getitem__)
        )
        #: (relation, arity) per body atom, aliased ``t{i}``.
        self.atom_tables: Tuple[Tuple[str, int], ...] = tuple(
            (atom.relation, atom.arity) for atom in query.body
        )

        conditions: List[str] = []
        params: List[object] = []
        column_of: Dict[int, str] = {}  # slot -> first-occurrence column
        for i, atom in enumerate(query.body):
            for position, term in enumerate(atom.terms):
                column = f"t{i}.c{position}"
                if is_constant(term):
                    conditions.append(f"{column} = ?")
                    params.append(term.value)
                else:
                    slot = self.slot_of[term]
                    first = column_of.get(slot)
                    if first is None:
                        column_of[slot] = column
                    else:
                        conditions.append(f"{column} = {first}")

        constant_comparisons = []
        for comparison in query.comparisons:
            if not comparison.variables:
                # Both sides constant: evaluated lazily in Python at
                # execution time, mirroring the other engines (an
                # unsatisfiable body must never surface a type error).
                constant_comparisons.append(comparison)
                continue
            left, params_left = self._side(comparison.left, column_of)
            right, params_right = self._side(comparison.right, column_of)
            conditions.append(f"{left} {comparison.op} {right}")
            params.extend(params_left + params_right)

        for value in params:
            if not isinstance(value, (int, float, str)):
                raise UnstorableError(
                    f"query constant {value!r} of type "
                    f"{type(value).__name__} cannot be bound to SQL"
                )
        self.conditions: Tuple[str, ...] = tuple(conditions)
        self.params: Tuple[object, ...] = tuple(params)
        self.column_of = column_of
        self.constant_comparisons = tuple(constant_comparisons)
        # Head layout as (slot, constant) pairs; slot is None for constants.
        self.head_parts: Tuple[Tuple[Optional[int], object], ...] = tuple(
            (None, term.value) if is_constant(term) else (self.slot_of[term], None)
            for term in query.head
        )
        self.index_requests = self._derive_index_requests()

    def _side(
        self, term, column_of: Dict[int, str]
    ) -> Tuple[str, List[object]]:
        if is_constant(term):
            return "?", [term.value]
        return column_of[self.slot_of[term]], []

    def _derive_index_requests(self) -> Tuple[Tuple[str, int, Tuple[int, ...]], ...]:
        """Covering-index requests from the join planner's probe keys.

        Two plan shapes drive the store's indexes: the base ordering
        (plain evaluation) and the head-seeded ordering (``derives_row``
        checks, the criticality hot path).
        """
        requests: Dict[Tuple[str, int, Tuple[int, ...]], None] = {}
        head_slots = frozenset(
            slot for slot, _ in self.head_parts if slot is not None
        )
        for seeded in ({frozenset(), head_slots} if head_slots else {frozenset()}):
            for step in build_steps(self.query, self.slot_of, seeded).steps:
                if step.key_positions:
                    requests[(step.relation, step.arity, step.key_positions)] = None
        return tuple(requests)

    # -- statement assembly ------------------------------------------------------
    def _prepare(self, store: SQLiteFactStore) -> Optional[str]:
        """Resolve the FROM clause against a store; None when some atom
        has no table there (its relation/arity holds no facts)."""
        aliases = []
        for i, (relation, arity) in enumerate(self.atom_tables):
            table = store.table(relation, arity)
            if table is None:
                return None
            aliases.append(f"{table} AS t{i}")
        for relation, arity, positions in self.index_requests:
            store.ensure_index(relation, arity, positions)
        return ", ".join(aliases)

    def _statement(
        self,
        from_clause: str,
        select: str,
        extra_conditions: Sequence[str] = (),
        distinct: bool = False,
        limit_one: bool = False,
    ) -> str:
        conditions = list(self.conditions) + list(extra_conditions)
        sql = f"SELECT {'DISTINCT ' if distinct else ''}{select} FROM {from_clause}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        if limit_one:
            sql += " LIMIT 1"
        return sql

    def _constant_gate(self, store: SQLiteFactStore, from_clause: str) -> bool:
        """Lazily check constant-only comparisons.

        Mirrors the other engines: the predicates are only consulted
        when the body is satisfiable, so an unsatisfiable match never
        turns into an eager type error; an incomparable pair over a
        satisfiable body raises :class:`QueryError`.
        """
        for comparison in self.constant_comparisons:
            left = comparison.left.value
            right = comparison.right.value
            try:
                verdict = COMPARISON_OPS[comparison.op](left, right)
            except TypeError as exc:
                sql = self._statement(from_clause, "1", limit_one=True)
                if _execute(store, sql, self.params):
                    raise QueryError(
                        f"cannot compare {left!r} {comparison.op} {right!r}: "
                        "incompatible types"
                    ) from exc
                return False
            if not verdict:
                return False
        return True

    # -- evaluation --------------------------------------------------------------
    def evaluate(self, store: SQLiteFactStore) -> FrozenSet[Tuple[object, ...]]:
        """The query's answer on the store (set semantics)."""
        from_clause = self._prepare(store)
        if from_clause is None or not self._constant_gate(store, from_clause):
            return frozenset()
        variable_columns = [
            self.column_of[slot] for slot, _ in self.head_parts if slot is not None
        ]
        if not variable_columns:
            # Constant-only (or boolean) head: the answer is the head
            # tuple itself iff the body is satisfiable.
            sql = self._statement(from_clause, "1", limit_one=True)
            if _execute(store, sql, self.params):
                return frozenset({tuple(value for _, value in self.head_parts)})
            return frozenset()
        sql = self._statement(
            from_clause, ", ".join(variable_columns), distinct=True
        )
        answers = set()
        for row in _execute(store, sql, self.params):
            values = iter(row)
            answers.add(
                tuple(
                    value if slot is None else next(values)
                    for slot, value in self.head_parts
                )
            )
        return frozenset(answers)

    def evaluate_boolean(self, store: SQLiteFactStore) -> bool:
        """True iff the query has at least one satisfying assignment."""
        from_clause = self._prepare(store)
        if from_clause is None or not self._constant_gate(store, from_clause):
            return False
        sql = self._statement(from_clause, "1", limit_one=True)
        return bool(_execute(store, sql, self.params))

    def assignments(
        self, store: SQLiteFactStore
    ) -> Iterator[Dict[Variable, object]]:
        """The distinct satisfying assignments, total over body variables."""
        from_clause = self._prepare(store)
        if from_clause is None or not self._constant_gate(store, from_clause):
            return
        columns = [
            self.column_of[self.slot_of[variable]]
            for variable in self.slot_variables
        ]
        if not columns:
            sql = self._statement(from_clause, "1", limit_one=True)
            if _execute(store, sql, self.params):
                yield {}
            return
        sql = self._statement(from_clause, ", ".join(columns), distinct=True)
        for row in _execute(store, sql, self.params):
            yield dict(zip(self.slot_variables, row))

    # -- restricted questions (the criticality hot path) --------------------------
    def _head_seed_conditions(
        self, row: Tuple[object, ...]
    ) -> Optional[Tuple[List[str], List[object]]]:
        """Equality predicates seeding the head columns with a row.

        None when the row can never be derived (wrong arity, conflict
        with a head constant, inconsistent repeated head variable).
        """
        if len(row) != len(self.head_parts):
            return None
        seeds: Dict[int, object] = {}
        for (slot, value), wanted in zip(self.head_parts, row):
            if slot is None:
                if value != wanted:
                    return None
            elif slot in seeds:
                if seeds[slot] != wanted:
                    return None
            else:
                seeds[slot] = wanted
        for value in seeds.values():
            if not isinstance(value, (int, float, str)):
                # No stored column can hold such a value, so the row
                # cannot be in the answer over a SQL store.
                return None
        conditions = [f"{self.column_of[slot]} = ?" for slot in seeds]
        return conditions, list(seeds.values())

    def _exclusion_conditions(
        self, fact: Fact
    ) -> Tuple[List[str], List[object]]:
        """Per-alias predicates removing one fact from the join.

        This is the delta-seeded form of ``Q(I − t)``: instead of
        materialising a second store, every alias that could bind the
        removed fact is forbidden from doing so.
        """
        conditions: List[str] = []
        params: List[object] = []
        arity = len(fact.values)
        for i, (relation, atom_arity) in enumerate(self.atom_tables):
            if relation != fact.relation or atom_arity != arity:
                continue
            if arity == 0:
                # Removing the only row of an arity-0 relation empties
                # it; no derivation through this alias survives.
                conditions.append("0")
            else:
                inner = " AND ".join(f"t{i}.c{p} = ?" for p in range(arity))
                conditions.append(f"NOT ({inner})")
                params.extend(fact.values)
        return conditions, params

    def derives_row(
        self,
        store: SQLiteFactStore,
        row: Sequence[object],
        excluding=None,
    ) -> bool:
        """Decide ``row ∈ Q(store)``, optionally on ``store − excluding``.

        ``excluding`` may be one :class:`Fact` or an iterable of them —
        every excluded fact gets its per-alias ``NOT (…)`` predicates,
        so the probe answers membership over the store minus the whole
        set (the batched-delta membership question).
        """
        seeded = self._head_seed_conditions(tuple(row))
        if seeded is None:
            return False
        from_clause = self._prepare(store)
        if from_clause is None or not self._constant_gate(store, from_clause):
            return False
        conditions, params = seeded
        if excluding is not None:
            excluded = (excluding,) if isinstance(excluding, Fact) else tuple(excluding)
            for fact in excluded:
                extra, extra_params = self._exclusion_conditions(fact)
                conditions = conditions + extra
                params = params + extra_params
        sql = self._statement(from_clause, "1", conditions, limit_one=True)
        return bool(_execute(store, sql, list(self.params) + params))

    def _pin_conditions(self, fact: Fact) -> Iterator[Tuple[List[str], List[object]]]:
        """One predicate set per body atom unifying with ``fact``.

        Each pins its atom's alias to exactly the fact's row — the SQL
        form of the compiled engine's pinned-atom delta variants.
        Python-side unification (constants, repeated variables) filters
        atoms the fact can never bind.
        """
        arity = len(fact.values)
        for i, atom in enumerate(self.query.body):
            if atom.relation != fact.relation or atom.arity != arity:
                continue
            bound: Dict[Variable, object] = {}
            unifies = True
            for term, value in zip(atom.terms, fact.values):
                if is_constant(term):
                    if term.value != value:
                        unifies = False
                        break
                elif term in bound:
                    if bound[term] != value:
                        unifies = False
                        break
                else:
                    bound[term] = value
            if not unifies:
                continue
            if arity == 0:
                yield [], []
            else:
                yield (
                    [f"t{i}.c{p} = ?" for p in range(arity)],
                    list(fact.values),
                )

    def delta_candidates(
        self, store: SQLiteFactStore, fact: Fact
    ) -> Iterator[Tuple[object, ...]]:
        """Answer rows with some derivation over the store using ``fact``."""
        if fact not in store:
            return
        from_clause: Optional[str] = None
        prepared = False
        for conditions, params in self._pin_conditions(fact):
            if not prepared:
                prepared = True
                from_clause = self._prepare(store)
                if from_clause is None or not self._constant_gate(
                    store, from_clause
                ):
                    return
            variable_columns = [
                self.column_of[slot]
                for slot, _ in self.head_parts
                if slot is not None
            ]
            if not variable_columns:
                sql = self._statement(from_clause, "1", conditions, limit_one=True)
                if _execute(store, sql, list(self.params) + params):
                    yield tuple(value for _, value in self.head_parts)
                continue
            sql = self._statement(
                from_clause, ", ".join(variable_columns), conditions, distinct=True
            )
            for row in _execute(store, sql, list(self.params) + params):
                values = iter(row)
                yield tuple(
                    value if slot is None else next(values)
                    for slot, value in self.head_parts
                )

    def delta_without(self, store: SQLiteFactStore, fact: Fact) -> bool:
        """Decide ``Q(store) ≠ Q(store − fact)`` with delta-seeded SQL."""
        SQL_STATS.bump("sql_delta_calls")
        checked: Set[Tuple[object, ...]] = set()
        for row in self.delta_candidates(store, fact):
            if row in checked:
                continue
            checked.add(row)
            if not self.derives_row(store, row, excluding=fact):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SQLPlan({self.query!r})"


# ---------------------------------------------------------------------------
# Engine entry points (called by the repro.cq.evaluation dispatcher)
# ---------------------------------------------------------------------------
def _fallback(entry: str, *args, counter: str = "sql_fallbacks"):
    """Re-dispatch one call through the compiled engine.

    Taken when the instance or query holds symbolic (unstorable)
    values (see :class:`UnstorableError`), and — under ``counter=
    "sql_io_fallbacks"`` — when sqlite itself fails with an I/O-class
    :class:`sqlite3.OperationalError` (disk error, corrupt page,
    injected fault).  The verdict is the same either way; only the
    engine that produced it differs, and the degradation is counted so
    operators can see it in ``evaluation_stats()`` / service stats.
    """
    SQL_STATS.bump(counter)
    from . import evaluation

    with evaluation.eval_engine_scope("compiled"):
        result = getattr(evaluation, entry)(*args)
        # Generators must be drained while the scope is pinned.
        return list(result) if entry == "satisfying_assignments" else result


def evaluate(query, instance) -> FrozenSet[Tuple[object, ...]]:
    """Evaluate a conjunctive query or a union of them (set semantics)."""
    try:
        disjuncts = getattr(query, "disjuncts", None)
        if disjuncts is not None:
            answers: set = set()
            for disjunct in disjuncts:
                answers |= sql_plan_for(disjunct).evaluate(store_for(instance))
            return frozenset(answers)
        return sql_plan_for(query).evaluate(store_for(instance))
    except UnstorableError:
        return _fallback("evaluate", query, instance)
    except sqlite3.OperationalError:
        return _fallback("evaluate", query, instance, counter="sql_io_fallbacks")


def evaluate_boolean(query, instance) -> bool:
    """True iff the query (or some disjunct) is satisfiable on the store."""
    try:
        disjuncts = getattr(query, "disjuncts", None)
        if disjuncts is not None:
            return any(
                sql_plan_for(d).evaluate_boolean(store_for(instance))
                for d in disjuncts
            )
        return sql_plan_for(query).evaluate_boolean(store_for(instance))
    except UnstorableError:
        return _fallback("evaluate_boolean", query, instance)
    except sqlite3.OperationalError:
        return _fallback(
            "evaluate_boolean", query, instance, counter="sql_io_fallbacks"
        )


def satisfying_assignments(query, instance) -> Iterator[Dict[Variable, object]]:
    """The distinct satisfying assignments (per disjunct for unions)."""
    # The whole answer is drained inside the try: a fallback trigger
    # (unstorable values up front, or a sqlite I/O error on any
    # statement) then re-dispatches the *entire* call to the compiled
    # engine, so the caller never sees duplicated or torn streams.
    try:
        disjuncts = getattr(query, "disjuncts", None) or (query,)
        plans = [sql_plan_for(disjunct) for disjunct in disjuncts]
        store = store_for(instance)
        produced = [
            assignment for plan in plans for assignment in plan.assignments(store)
        ]
    except UnstorableError:
        yield from _fallback("satisfying_assignments", query, instance)
        return
    except sqlite3.OperationalError:
        yield from _fallback(
            "satisfying_assignments", query, instance, counter="sql_io_fallbacks"
        )
        return
    yield from produced


def answer_contains(query, instance, row: Sequence[object]) -> bool:
    """Decide ``row ∈ Q(instance)`` with a head-seeded SQL probe."""
    try:
        store = store_for(instance)
        disjuncts = getattr(query, "disjuncts", None) or (query,)
        return any(
            sql_plan_for(disjunct).derives_row(store, row)
            for disjunct in disjuncts
        )
    except UnstorableError:
        return _fallback("answer_contains", query, instance, row)
    except sqlite3.OperationalError:
        return _fallback(
            "answer_contains", query, instance, row, counter="sql_io_fallbacks"
        )


def delta_changes(query, instance, fact: Fact) -> bool:
    """Decide ``Q(instance) ≠ Q(instance − fact)`` with delta-seeded SQL.

    For a union, a candidate row must vanish from the *whole* union's
    answer — it is re-checked (with the fact excluded) against every
    disjunct.
    """
    try:
        store = store_for(instance)
        if fact not in store:
            return False
        disjuncts = getattr(query, "disjuncts", None)
        if disjuncts is None:
            return sql_plan_for(query).delta_without(store, fact)
        SQL_STATS.bump("sql_delta_calls")
        plans = [sql_plan_for(disjunct) for disjunct in disjuncts]
        checked: Set[Tuple[object, ...]] = set()
        for plan in plans:
            for row in plan.delta_candidates(store, fact):
                if row in checked:
                    continue
                checked.add(row)
                if not any(
                    p.derives_row(store, row, excluding=fact) for p in plans
                ):
                    return True
        return False
    except UnstorableError:
        return _fallback("delta_changes", query, instance, fact)
    except sqlite3.OperationalError:
        return _fallback(
            "delta_changes", query, instance, fact, counter="sql_io_fallbacks"
        )


def _storable_fact(fact: Fact) -> bool:
    """Can this fact live in a SQL store at all?"""
    return all(isinstance(v, (bool, int, float, str)) for v in fact.values)


def _invalidate_mirror(instance) -> None:
    """Drop an instance's cached sqlite mirror (it may be torn after an
    I/O failure mid-mutation); the next use rebuilds it from the facts."""
    if isinstance(instance, Instance):
        try:
            setattr(instance, _MIRROR_ATTRIBUTE, None)
        except AttributeError:  # pragma: no cover - exotic subclass
            pass


def delta_with(query, instance, fact: Fact) -> bool:
    """Decide ``Q(instance ∪ {fact}) ≠ Q(instance)`` with delta-seeded SQL.

    The fact is inserted temporarily, the pinned-atom candidates are
    enumerated over the grown store, and each is checked against the
    original state by *excluding* the fact — then the insertion is
    rolled back, so the target (a store or an instance's cached mirror)
    is restored.  Unstorable facts fall back to the compiled engine:
    the question is pure, so the verdict is the same.
    """
    try:
        if not _storable_fact(fact):
            raise UnstorableError(
                f"fact {fact!r} holds values the sql engine cannot store"
            )
        store = store_for(instance)
        if fact in store:
            return False
        SQL_STATS.bump("sql_delta_calls")
        disjuncts = getattr(query, "disjuncts", None) or (query,)
        plans = [sql_plan_for(disjunct) for disjunct in disjuncts]
        store.add(fact)
        try:
            checked: Set[Tuple[object, ...]] = set()
            for plan in plans:
                for row in plan.delta_candidates(store, fact):
                    if row in checked:
                        continue
                    checked.add(row)
                    if not any(
                        p.derives_row(store, row, excluding=fact) for p in plans
                    ):
                        return True
            return False
        finally:
            store.remove(fact)
    except UnstorableError:
        return _fallback("delta_with", query, instance, fact)
    except sqlite3.OperationalError:
        _invalidate_mirror(instance)
        return _fallback(
            "delta_with", query, instance, fact, counter="sql_io_fallbacks"
        )


def delta_apply(query, instance, added: Sequence[Fact] = (), removed: Sequence[Fact] = ()):
    """Apply a batched fact delta in place and report the answer change.

    Returns ``(after, gained, lost)``.  A :class:`SQLiteFactStore`
    target is mutated in place and returned as ``after``; an
    :class:`Instance` target gets its cached mirror mutated and rolled
    back, with ``after`` a new patched instance.  The candidate
    enumeration is semi-naive: removal candidates over the pre-state,
    insertion candidates over the grown mid-state (with their pre-state
    membership answered by excluding every added fact), and one final
    membership probe per candidate over the post-state.
    """
    after, changes = delta_apply_many((query,), instance, added, removed)
    gained, lost = changes[0]
    return after, gained, lost


def delta_apply_many(
    queries: Sequence,
    instance,
    added: Sequence[Fact] = (),
    removed: Sequence[Fact] = (),
):
    """Apply one batched fact delta shared by many queries.

    The store advances through the mid- and post-states exactly once;
    each query's candidates are enumerated and settled against those
    shared states, so a delta over N tracked queries costs one mutation
    plus N candidate sweeps.  Returns ``(after, [(gained, lost), ...])``
    with the same state semantics as :func:`delta_apply`.
    """
    try:
        store = store_for(instance)
        is_store = isinstance(instance, SQLiteFactStore)
        added_set = set(added)
        truly_removed = [
            f
            for f in dict.fromkeys(removed)
            if _storable_fact(f) and f in store and f not in added_set
        ]
        truly_added = [f for f in dict.fromkeys(added) if f not in store]
        for fact in truly_added:
            if not _storable_fact(fact):
                if is_store:
                    raise ReproError(
                        f"cannot apply delta: fact {fact!r} holds values a "
                        "SQL-backed store cannot hold"
                    )
                raise UnstorableError(
                    f"fact {fact!r} holds values the sql engine cannot store"
                )
        SQL_STATS.bump("sql_delta_calls")
        per_query_plans = [
            [sql_plan_for(d) for d in (getattr(query, "disjuncts", None) or (query,))]
            for query in queries
        ]
        try:
            # Phase 1: removal candidates over the pre-state (all of
            # them are in Q(before) by construction).
            lost_candidates: List[Set[Tuple[object, ...]]] = [
                set() for _ in per_query_plans
            ]
            for fact in truly_removed:
                for candidates, plans in zip(lost_candidates, per_query_plans):
                    for plan in plans:
                        candidates.update(plan.delta_candidates(store, fact))
            # Phase 2: grow to the mid-state; insertion candidates are
            # in Q(mid), and their membership in Q(before) is answered
            # by excluding every added fact (mid − added = before).
            if truly_added:
                store.add(*truly_added)
            in_before: List[Dict[Tuple[object, ...], bool]] = [
                {} for _ in per_query_plans
            ]
            for fact in truly_added:
                for candidates, membership, plans in zip(
                    lost_candidates, in_before, per_query_plans
                ):
                    for plan in plans:
                        for row in plan.delta_candidates(store, fact):
                            if row in candidates or row in membership:
                                continue
                            membership[row] = any(
                                p.derives_row(store, row, excluding=truly_added)
                                for p in plans
                            )
            # Phase 3: shrink to the post-state; settle every candidate
            # with one membership probe against it.
            if truly_removed:
                store.remove(*truly_removed)
            changes = []
            for candidates, membership, plans in zip(
                lost_candidates, in_before, per_query_plans
            ):
                lost = frozenset(
                    row
                    for row in candidates
                    if not any(p.derives_row(store, row) for p in plans)
                )
                gained = frozenset(
                    row
                    for row, before in membership.items()
                    if not before and any(p.derives_row(store, row) for p in plans)
                )
                changes.append((gained, lost))
        except BaseException:
            _invalidate_mirror(instance)
            raise
        if is_store:
            return store, changes
        # Roll the instance's cached mirror back to the pre-state and
        # derive the post-state instance through the patching add/remove.
        try:
            if truly_added:
                store.remove(*truly_added)
            if truly_removed:
                store.add(*truly_removed)
        except BaseException:
            _invalidate_mirror(instance)
            raise
        after = _memory_after(instance, truly_added, truly_removed)
        return after, changes
    except UnstorableError:
        return _fallback("delta_apply_many", queries, instance, added, removed)
    except sqlite3.OperationalError:
        if isinstance(instance, SQLiteFactStore):
            raise
        _invalidate_mirror(instance)
        return _fallback(
            "delta_apply_many", queries, instance, added, removed,
            counter="sql_io_fallbacks",
        )


def _memory_after(instance, truly_added: Sequence[Fact], truly_removed: Sequence[Fact]):
    """The post-state of an in-memory target, via the patching deltas."""
    after = instance if isinstance(instance, Instance) else Instance(instance)
    for fact in truly_removed:
        after = after.remove(fact)
    for fact in truly_added:
        after = after.add(fact)
    return after
