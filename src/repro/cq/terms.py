"""Terms of conjunctive queries: variables and constants.

The paper writes queries in datalog notation, e.g.::

    Q(x) :- R1(x, a, y), R2(y, b, c), R3(x, -, -), x < y, y != c

where lowercase letters from the end of the alphabet are variables,
``-`` marks an anonymous variable (each occurrence distinct), and other
symbols are constants.  :class:`Variable` and :class:`Constant` are the
two term kinds; anonymous variables are ordinary variables with
generated names (``_1``, ``_2``, ...).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union

__all__ = ["Variable", "Constant", "Term", "fresh_variable", "is_variable", "is_constant"]


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A constant value appearing in a query."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]

_fresh_counter = itertools.count(1)


def fresh_variable(prefix: str = "_") -> Variable:
    """A new variable whose name cannot clash with user-written names.

    Used for anonymous variables (``-`` in datalog notation) and for
    renaming apart when comparing two queries.
    """
    return Variable(f"{prefix}{next(_fresh_counter)}")


def is_variable(term: Term) -> bool:
    """True when ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """True when ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)
