"""Compiled, index-driven evaluation of conjunctive queries.

:class:`CompiledPlan` executes the plans of :mod:`repro.cq.plan` against
:class:`~repro.relational.instance.Instance` objects:

* each subgoal becomes a **probe** of the instance's lazy hash index
  (:meth:`~repro.relational.instance.Instance.index`) on the positions
  bound at that point of the join order, instead of a scan of every fact
  of the relation;
* variables are bound through a flat **slot array** that is extended and
  undone in place — the naive evaluator's per-candidate dict copy is
  gone entirely;
* comparison predicates run at the earliest step where both operands are
  bound, pruning the subtree below a failing candidate.

On top of plain evaluation the plan answers the two restricted questions
the criticality engines ask thousands of times per search:

* :meth:`CompiledPlan.derives_row` — "is this one answer row still
  derivable?" — seeds the head slots before planning, so the probes are
  keyed by the answer's constants;
* :meth:`CompiledPlan.delta_without` — "does removing one fact change
  the answer?" — the semi-naive delta: only derivations that *use* the
  removed fact are re-derived (one plan variant per body atom unifying
  with the fact, that atom pinned and excluded), and each candidate row
  is then re-checked on the shrunken instance via ``derives_row``.  A
  fact unifying with no subgoal costs nothing at all.

Plans are cached on the query object itself (queries are immutable), so
re-evaluating a query held by a session, kernel or engine never replans.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import EvaluationError
from ..obs.counters import StatCounters
from ..relational.instance import INDEX_STATS, Instance
from ..relational.tuples import Fact
from .atoms import Atom
from .plan import PlanSteps, build_steps, slot_assignment
from .query import ConjunctiveQuery
from .terms import Variable, is_constant

__all__ = [
    "CompiledPlan",
    "plan_for",
    "evaluation_stats",
    "reset_evaluation_stats",
    "STATS",
]


class _Unbound:
    __repr__ = lambda self: "<unbound>"  # noqa: E731  # pragma: no cover


_UNBOUND = _Unbound()

#: Process-wide evaluator counters (monotone; see :func:`evaluation_stats`).
#: A :class:`~repro.obs.counters.StatCounters`: reads stay plain dict
#: access, but increments go through ``.bump()`` so counts survive
#: concurrent evaluation on server worker threads.
STATS = StatCounters(
    (
        "plans_compiled",
        "plan_cache_hits",
        "variant_plans",
        "compiled_evaluations",
        "row_checks",
        "delta_calls",
        "delta_unification_skips",
        "naive_evaluations",
        "index_probes",
        "relation_scans",
    )
)

#: Attribute under which a query's plan is cached on the query object.
_PLAN_ATTRIBUTE = "_compiled_plan"


def plan_for(query: ConjunctiveQuery) -> "CompiledPlan":
    """The compiled plan of a conjunctive query (cached on the query).

    Queries are immutable, so the plan is compiled once per query object
    and stored on it (outside the dataclass's equality/hash fields); it
    lives exactly as long as the query does.
    """
    plan = getattr(query, _PLAN_ATTRIBUTE, None)
    if plan is None:
        STATS.bump("plans_compiled")
        plan = CompiledPlan(query)
        try:
            object.__setattr__(query, _PLAN_ATTRIBUTE, plan)
        except (AttributeError, TypeError):  # pragma: no cover - exotic subclass
            pass
    else:
        STATS.bump("plan_cache_hits")
    return plan


class CompiledPlan:
    """A conjunctive query compiled for indexed, slot-based evaluation."""

    __slots__ = ("query", "slot_of", "slot_count", "slot_variables", "head_parts", "_variants")

    def __init__(self, query: ConjunctiveQuery):
        if getattr(query, "disjuncts", None) is not None:
            raise EvaluationError(
                "CompiledPlan compiles a single conjunctive query; evaluate a "
                "union through repro.cq.evaluation, which dispatches per disjunct"
            )
        self.query = query
        self.slot_of: Dict[Variable, int] = slot_assignment(query)
        self.slot_count = len(self.slot_of)
        self.slot_variables: Tuple[Variable, ...] = tuple(
            sorted(self.slot_of, key=self.slot_of.__getitem__)
        )
        # Head layout as (slot, constant) pairs; slot is None for constants.
        self.head_parts: Tuple[Tuple[Optional[int], object], ...] = tuple(
            (None, term.value) if is_constant(term) else (self.slot_of[term], None)
            for term in query.head
        )
        self._variants: Dict[Tuple[FrozenSet[int], Optional[int]], PlanSteps] = {}

    # -- plan variants ---------------------------------------------------------
    def _steps(
        self, seeded: FrozenSet[int] = frozenset(), excluded: Optional[int] = None
    ) -> PlanSteps:
        """The plan variant for one (seeded slots, excluded atom) pair.

        Variants are memoized: the seed *pattern* depends only on which
        head/atom slots are pre-bound, not on the bound values, so every
        ``derives_row``/``delta_without`` call of a given shape reuses
        one ordering.
        """
        key = (seeded, excluded)
        steps = self._variants.get(key)
        if steps is None:
            if seeded or excluded is not None:
                STATS.bump("variant_plans")
            steps = self._variants[key] = build_steps(
                self.query, self.slot_of, seeded, excluded
            )
        return steps

    # -- runtime ---------------------------------------------------------------
    def _run(
        self, steps: PlanSteps, instance: Instance, slots: List[object]
    ) -> Iterator[List[object]]:
        """Enumerate satisfying slot arrays (yielded object is shared!).

        The yielded list is the live assignment array — callers must
        extract what they need before advancing the iterator.
        """
        for comparison in steps.pre_comparisons:
            if not comparison.evaluate(slots):
                return
        plan_steps = steps.steps
        if not plan_steps:
            yield slots
            return
        last_depth = len(plan_steps) - 1

        def extend(depth: int) -> Iterator[List[object]]:
            step = plan_steps[depth]
            if step.key_positions:
                STATS.bump("index_probes")
                key = tuple(
                    value if slot is None else slots[slot]
                    for slot, value in step.key_parts
                )
                candidates = instance.index(step.relation, step.key_positions).get(
                    key, ()
                )
            else:
                STATS.bump("relation_scans")
                candidates = instance.relation(step.relation)
            arity = step.arity
            bind_ops = step.bind_ops
            comparisons = step.comparisons
            at_leaf = depth == last_depth
            for fact in candidates:
                values = fact.values
                if len(values) != arity:
                    continue
                bound_here: List[int] = []
                ok = True
                for position, slot, check in bind_ops:
                    value = values[position]
                    if check:
                        if slots[slot] != value:
                            ok = False
                            break
                    else:
                        slots[slot] = value
                        bound_here.append(slot)
                if ok:
                    for comparison in comparisons:
                        if not comparison.evaluate(slots):
                            ok = False
                            break
                if ok:
                    if at_leaf:
                        yield slots
                    else:
                        yield from extend(depth + 1)
                for slot in bound_here:
                    slots[slot] = _UNBOUND

        yield from extend(0)

    def _head_row(self, slots: List[object]) -> Tuple[object, ...]:
        return tuple(
            value if slot is None else slots[slot] for slot, value in self.head_parts
        )

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, instance: Instance) -> FrozenSet[Tuple[object, ...]]:
        """The query's answer on ``instance`` (set semantics)."""
        STATS.bump("compiled_evaluations")
        slots = [_UNBOUND] * self.slot_count
        return frozenset(
            self._head_row(s) for s in self._run(self._steps(), instance, slots)
        )

    def evaluate_boolean(self, instance: Instance) -> bool:
        """True iff the query has at least one satisfying assignment."""
        STATS.bump("compiled_evaluations")
        slots = [_UNBOUND] * self.slot_count
        for _ in self._run(self._steps(), instance, slots):
            return True
        return False

    def assignments(self, instance: Instance) -> Iterator[Dict[Variable, object]]:
        """Satisfying assignments as dicts, total over the body variables."""
        STATS.bump("compiled_evaluations")
        slots = [_UNBOUND] * self.slot_count
        variables = self.slot_variables
        for s in self._run(self._steps(), instance, slots):
            yield {variable: s[i] for i, variable in enumerate(variables)}

    # -- restricted questions (the criticality hot path) -------------------------
    def derives_row(self, instance: Instance, row: Sequence[object]) -> bool:
        """Decide ``row ∈ Q(instance)`` by head-seeded evaluation.

        The head slots are bound to the row's values before planning, so
        the probes are keyed by them — no other answer row is derived.
        Rows of the wrong arity, conflicting with a head constant or
        binding a repeated head variable inconsistently are never
        derivable and return ``False`` immediately.
        """
        row = tuple(row)
        if len(row) != len(self.head_parts):
            return False
        STATS.bump("row_checks")
        slots: List[object] = [_UNBOUND] * self.slot_count
        seeded: set = set()
        for (slot, value), wanted in zip(self.head_parts, row):
            if slot is None:
                if value != wanted:
                    return False
            elif slots[slot] is _UNBOUND:
                slots[slot] = wanted
                seeded.add(slot)
            elif slots[slot] != wanted:
                return False
        for _ in self._run(self._steps(frozenset(seeded)), instance, slots):
            return True
        return False

    def _fact_seed(self, atom: Atom, fact: Fact) -> Optional[Dict[int, object]]:
        """Slot bindings mapping ``atom`` onto ``fact`` (None on mismatch)."""
        if atom.relation != fact.relation or atom.arity != fact.arity:
            return None
        seed: Dict[int, object] = {}
        for term, value in zip(atom.terms, fact.values):
            if is_constant(term):
                if term.value != value:
                    return None
            else:
                slot = self.slot_of[term]
                bound = seed.get(slot, _UNBOUND)
                if bound is _UNBOUND:
                    seed[slot] = value
                elif bound != value:
                    return None
        return seed

    def delta_candidates(
        self, instance: Instance, fact: Fact
    ) -> Iterator[Tuple[object, ...]]:
        """Answer rows with some derivation over ``instance`` using ``fact``.

        The semi-naive restriction: for each body atom unifying with the
        fact, a plan variant pins that atom to the fact (its variables
        seeded, the atom itself excluded) and enumerates the remaining
        subgoals over the full instance.  Every row of
        ``Q(instance) − Q(instance − fact)`` appears among the yielded
        candidates; rows may repeat across pinned atoms.
        """
        if fact not in instance:
            return
        matched = False
        for j, atom in enumerate(self.query.body):
            seed = self._fact_seed(atom, fact)
            if seed is None:
                continue
            matched = True
            slots: List[object] = [_UNBOUND] * self.slot_count
            for slot, value in seed.items():
                slots[slot] = value
            steps = self._steps(frozenset(seed), excluded=j)
            for s in self._run(steps, instance, slots):
                yield self._head_row(s)
        if not matched:
            STATS.bump("delta_unification_skips")

    def delta_without(self, instance: Instance, fact: Fact) -> bool:
        """Decide ``Q(instance) ≠ Q(instance − fact)`` by delta evaluation.

        Conjunctive queries are monotone, so the answer can only lose
        rows: it changes iff some candidate row (a derivation using the
        fact) is no longer derivable once the fact is removed.  Removing
        a fact outside the instance, or one unifying with no subgoal,
        returns ``False`` without evaluating anything.
        """
        STATS.bump("delta_calls")
        without: Optional[Instance] = None
        verdicts: Dict[Tuple[object, ...], bool] = {}
        for row in self.delta_candidates(instance, fact):
            vanished = verdicts.get(row)
            if vanished is None:
                if without is None:
                    without = instance.remove(fact)
                vanished = not self.derives_row(without, row)
                verdicts[row] = vanished
            if vanished:
                return True
        return False

    def delta_with(self, instance: Instance, fact: Fact) -> bool:
        """Decide ``Q(instance ∪ {fact}) ≠ Q(instance)`` by delta evaluation.

        The insertion mirror of :meth:`delta_without`: monotone queries
        can only *gain* rows when a fact is inserted, and every gained
        row has a derivation using the new fact, so only the pinned-atom
        candidates over the grown instance are re-checked against the
        original.  Inserting a fact already present, or one unifying
        with no subgoal, returns ``False`` without evaluating anything.
        """
        STATS.bump("delta_calls")
        if fact in instance:
            return False
        with_fact = instance.add(fact)
        verdicts: Dict[Tuple[object, ...], bool] = {}
        for row in self.delta_candidates(with_fact, fact):
            appeared = verdicts.get(row)
            if appeared is None:
                appeared = not self.derives_row(instance, row)
                verdicts[row] = appeared
            if appeared:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledPlan({self.query!r})"


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------
def evaluation_stats() -> Dict[str, object]:
    """One JSON-serialisable snapshot of the evaluator counters.

    Includes the active engine name, the compiled-plan and delta
    counters above, and the instance-index build/reuse counts from the
    relational layer.  Counters are process-wide, monotone and bumped
    under a lock (:class:`~repro.obs.counters.StatCounters`), so counts
    are exact even under concurrent evaluation on server worker
    threads.  Reset with :func:`reset_evaluation_stats` (tests and
    benchmarks only).
    """
    from .evaluation import evaluation_engine  # lazy: avoids an import cycle
    from .sql import SQL_STATS  # lazy: sql imports plan/compiled machinery
    from ..storage.sqlite import STORAGE_STATS

    document: Dict[str, object] = {"engine": evaluation_engine()}
    document.update(STATS)
    document["index_builds"] = INDEX_STATS["builds"]
    document["index_reuses"] = INDEX_STATS["reuses"]
    document["index_patched"] = INDEX_STATS["patched"]
    document.update(SQL_STATS)
    for key, value in STORAGE_STATS.items():
        document[f"storage_{key}"] = value
    return document


def reset_evaluation_stats() -> None:
    """Zero every evaluator, SQL-backend, storage and index counter
    (tests/benchmarks)."""
    from .sql import SQL_STATS  # lazy: sql imports plan/compiled machinery
    from ..storage.sqlite import reset_storage_stats

    STATS.reset()
    INDEX_STATS.reset()
    SQL_STATS.reset()
    reset_storage_stats()
