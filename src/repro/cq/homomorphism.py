"""Homomorphisms between conjunctive queries and into instances.

A homomorphism from query ``Q1`` to query ``Q2`` maps the variables of
``Q1`` to terms of ``Q2`` such that every subgoal of ``Q1`` is mapped to
a subgoal of ``Q2`` and the head is preserved.  Homomorphisms are the
classical tool for conjunctive-query containment (``Q2 ⊆ Q1`` iff there
is a homomorphism ``Q1 → Q2``) and they underpin the critical-tuple
search (Appendix A restricts attention to *minimal* instances, which are
homomorphic images of the query body).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..relational.instance import Instance
from ..relational.tuples import Fact
from .atoms import Atom
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable, is_constant, is_variable

__all__ = [
    "find_query_homomorphism",
    "has_query_homomorphism",
    "homomorphisms_into_instance",
    "has_homomorphism_into_instance",
    "canonical_instance",
]

TermMapping = Dict[Variable, Term]


def _map_term(term: Term, mapping: TermMapping) -> Term:
    if is_variable(term) and term in mapping:
        return mapping[term]
    return term


def _extend_over_atom(
    source: Atom, target: Atom, mapping: TermMapping
) -> Optional[TermMapping]:
    """Extend ``mapping`` so that ``source`` maps exactly onto ``target``."""
    if source.relation != target.relation or source.arity != target.arity:
        return None
    extended = dict(mapping)
    for s_term, t_term in zip(source.terms, target.terms):
        if is_constant(s_term):
            if s_term != t_term:
                return None
            continue
        bound = extended.get(s_term)
        if bound is None:
            extended[s_term] = t_term
        elif bound != t_term:
            return None
    return extended


def find_query_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[TermMapping]:
    """A homomorphism ``source → target`` preserving the head, if one exists.

    Head preservation means the i-th head term of ``source`` is mapped to
    the i-th head term of ``target``; both queries must have equal arity.
    """
    if source.arity != target.arity:
        return None

    # Seed the mapping with the head correspondence.
    seed: TermMapping = {}
    for s_term, t_term in zip(source.head, target.head):
        if is_constant(s_term):
            if s_term != t_term:
                return None
            continue
        bound = seed.get(s_term)
        if bound is None:
            seed[s_term] = t_term
        elif bound != t_term:
            return None

    body = list(source.body)
    targets = list(target.body)

    def extend(index: int, mapping: TermMapping) -> Optional[TermMapping]:
        if index == len(body):
            return mapping
        for target_atom in targets:
            extended = _extend_over_atom(body[index], target_atom, mapping)
            if extended is None:
                continue
            result = extend(index + 1, extended)
            if result is not None:
                return result
        return None

    return extend(0, seed)


def has_query_homomorphism(source: ConjunctiveQuery, target: ConjunctiveQuery) -> bool:
    """True when a head-preserving homomorphism ``source → target`` exists."""
    return find_query_homomorphism(source, target) is not None


def homomorphisms_into_instance(
    query: ConjunctiveQuery, instance: Instance
) -> Iterator[Dict[Variable, object]]:
    """All homomorphisms from the query body into an instance.

    Unlike :func:`repro.cq.evaluation.satisfying_assignments` this helper
    is head-agnostic; it is re-exported here for symmetry and used by the
    critical-tuple machinery.  Comparisons are honoured.

    The subgoals are explored in the planner's greedy join order
    (:func:`repro.cq.plan.plan_atom_order`) on *both* engines — the
    compiled evaluator orders atoms natively, and on the naive engine
    the body is reordered explicitly — so the enumeration cost no longer
    depends on how the caller happened to spell the body.  The set of
    homomorphisms is order-invariant either way.
    """
    from .evaluation import evaluation_engine, naive_satisfying_assignments, satisfying_assignments

    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        for disjunct in disjuncts:
            yield from homomorphisms_into_instance(disjunct, instance)
        return
    if evaluation_engine() == "naive":
        from .plan import plan_atom_order

        order = plan_atom_order(query)
        reordered = ConjunctiveQuery(
            query.head,
            tuple(query.body[i] for i in order),
            query.comparisons,
            name=query.name,
        )
        yield from naive_satisfying_assignments(reordered, instance)
        return
    yield from satisfying_assignments(query, instance)


def has_homomorphism_into_instance(query: ConjunctiveQuery, instance: Instance) -> bool:
    """True when the query body maps into the instance (the query is 'true')."""
    for _ in homomorphisms_into_instance(query, instance):
        return True
    return False


def canonical_instance(
    query: ConjunctiveQuery, freeze_prefix: str = "frz_"
) -> Tuple[Instance, Dict[Variable, object]]:
    """The canonical (frozen) instance of a query.

    Every variable is replaced by a fresh constant; the resulting set of
    facts is the classical canonical database used for containment tests.
    Returns the instance together with the freezing assignment.
    """
    assignment: Dict[Variable, object] = {}
    for variable in sorted(query.variables):
        assignment[variable] = f"{freeze_prefix}{variable.name}"
    facts = [atom.ground(assignment) for atom in query.body]
    return Instance(facts), assignment
