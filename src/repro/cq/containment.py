"""Containment, equivalence and answerability of conjunctive queries.

Containment (``Q1 ⊆ Q2``) is decided by the classical homomorphism
criterion (Chandra–Merlin): freeze ``Q1`` into its canonical instance
and check whether ``Q2`` produces the frozen head.  For queries *with*
comparison predicates the homomorphism criterion is only sound in one
direction, so the functions below refuse to certify containment when
comparisons are present unless an explicit domain is supplied for an
exhaustive check.

*Answerability* (Section 2.1 and the "Query answering" discussion in
Section 4.1.1) asks whether the secret ``S`` is a function of the views
``V̄``: ``∀I, I'.  V̄(I) = V̄(I') ⇒ S(I) = S(I')``.  Over a fixed finite
domain this is decided exactly by enumerating instances; answerability
implies *total* disclosure and is used by the audit layer to recognise
Table 1's first row.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..exceptions import IntractableAnalysisError, QueryError
from ..relational.domain import Domain
from ..relational.instance import Instance, enumerate_instances
from ..relational.schema import Schema
from .evaluation import answer_contains, evaluate
from .homomorphism import canonical_instance
from .query import ConjunctiveQuery
from .terms import is_constant

__all__ = [
    "is_contained_in",
    "are_equivalent",
    "is_answerable_from",
    "determines",
]


def is_contained_in(
    inner: ConjunctiveQuery, outer: ConjunctiveQuery
) -> bool:
    """Decide ``inner ⊆ outer`` for comparison-free conjunctive queries.

    Uses the canonical-database criterion: ``inner ⊆ outer`` iff ``outer``
    returns the frozen head of ``inner`` on ``inner``'s canonical
    instance, equivalently iff there is a head-preserving homomorphism
    ``outer → inner``.  The canonical-instance check runs through the
    compiled evaluation path (:func:`repro.cq.evaluation.answer_contains`
    with the frozen head seeded), so containment tests over wide bodies
    are index-driven rather than a backtracking atom-to-atom search.
    """
    if inner.comparisons or outer.comparisons:
        raise QueryError(
            "containment via the homomorphism criterion requires comparison-free queries; "
            "use determines()/is_answerable_from() with an explicit domain instead"
        )
    if inner.arity != outer.arity:
        return False
    canonical, frozen = canonical_instance(inner)
    frozen_head = tuple(
        term.value if is_constant(term) else frozen[term] for term in inner.head
    )
    return answer_contains(outer, canonical, frozen_head)


def are_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Decide equivalence of two comparison-free conjunctive queries."""
    return is_contained_in(left, right) and is_contained_in(right, left)


def determines(
    views: Sequence[ConjunctiveQuery],
    secret: ConjunctiveQuery,
    schema: Schema,
    domain: Optional[Domain] = None,
    max_tuples: int = 20,
) -> bool:
    """Exact answerability test over a finite domain.

    ``True`` iff for every pair of instances over the domain,
    ``V̄(I) = V̄(I')`` implies ``S(I) = S(I')`` — i.e. the views functionally
    determine the secret, which is a *total* disclosure.

    Raises :class:`IntractableAnalysisError` when the tuple space is too
    large to enumerate (bound by ``max_tuples``).
    """
    groups: Dict[Tuple[FrozenSet, ...], FrozenSet] = {}
    for instance in enumerate_instances(schema, domain, max_tuples=max_tuples):
        view_answers = tuple(evaluate(view, instance) for view in views)
        secret_answer = evaluate(secret, instance)
        previous = groups.get(view_answers)
        if previous is None:
            groups[view_answers] = secret_answer
        elif previous != secret_answer:
            return False
    return True


def is_answerable_from(
    secret: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery],
    schema: Schema,
    domain: Optional[Domain] = None,
    max_tuples: int = 20,
) -> bool:
    """Alias of :func:`determines` with the (secret, views) argument order
    used throughout the audit layer."""
    return determines(views, secret, schema, domain=domain, max_tuples=max_tuples)
