"""Atoms (subgoals) and comparison predicates of conjunctive queries."""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Mapping, Sequence, Tuple

from ..exceptions import QueryError
from ..relational.tuples import Fact
from .terms import Constant, Term, Variable, is_constant, is_variable

__all__ = ["Atom", "Comparison", "COMPARISON_OPS"]

#: Supported comparison operators, keyed by their datalog spelling.
COMPARISON_OPS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Atom:
    """A relational subgoal ``R(t1, ..., tk)`` with terms ``ti``."""

    relation: str
    terms: Tuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence[Term]):
        if not relation:
            raise QueryError("atom relation name must be non-empty")
        terms = tuple(terms)
        for term in terms:
            if not isinstance(term, (Variable, Constant)):
                raise QueryError(
                    f"atom term {term!r} must be a Variable or Constant "
                    f"(got {type(term).__name__})"
                )
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", terms)

    @property
    def arity(self) -> int:
        """Number of terms of the atom."""
        return len(self.terms)

    @property
    def variables(self) -> FrozenSet[Variable]:
        """The set of variables occurring in the atom."""
        return frozenset(t for t in self.terms if is_variable(t))

    @property
    def constants(self) -> FrozenSet[object]:
        """The set of constant *values* occurring in the atom."""
        return frozenset(t.value for t in self.terms if is_constant(t))

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution (variables not in the mapping are kept)."""
        return Atom(
            self.relation,
            tuple(mapping.get(t, t) if is_variable(t) else t for t in self.terms),
        )

    def ground(self, assignment: Mapping[Variable, object]) -> Fact:
        """Ground the atom into a :class:`Fact` using a total variable assignment."""
        values = []
        for term in self.terms:
            if is_constant(term):
                values.append(term.value)
            else:
                if term not in assignment:
                    raise QueryError(f"assignment does not bind variable {term!r}")
                values.append(assignment[term])
        return Fact(self.relation, values)

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return not self.variables

    def as_fact(self) -> Fact:
        """Convert a ground atom to a :class:`Fact` (raises if not ground)."""
        if not self.is_ground():
            raise QueryError(f"atom {self!r} is not ground")
        return Fact(self.relation, tuple(t.value for t in self.terms))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class Comparison:
    """A comparison predicate ``left op right`` between two terms."""

    left: Term
    op: str
    right: Term

    def __init__(self, left: Term, op: str, right: Term):
        if op not in COMPARISON_OPS:
            raise QueryError(
                f"unsupported comparison operator {op!r}; "
                f"expected one of {sorted(COMPARISON_OPS)}"
            )
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "right", right)

    @property
    def variables(self) -> FrozenSet[Variable]:
        """The variables mentioned by the comparison."""
        return frozenset(t for t in (self.left, self.right) if is_variable(t))

    @property
    def is_order_predicate(self) -> bool:
        """True for ``<``, ``<=``, ``>``, ``>=`` (relevant for domain bounds)."""
        return self.op in ("<", "<=", ">", ">=")

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Comparison":
        """Apply a substitution to both sides."""
        left = mapping.get(self.left, self.left) if is_variable(self.left) else self.left
        right = mapping.get(self.right, self.right) if is_variable(self.right) else self.right
        return Comparison(left, self.op, right)

    def evaluate(self, assignment: Mapping[Variable, object]) -> bool:
        """Evaluate the comparison under a total assignment of its variables."""

        def value_of(term: Term) -> object:
            if is_constant(term):
                return term.value
            if term not in assignment:
                raise QueryError(f"assignment does not bind variable {term!r}")
            return assignment[term]

        left, right = value_of(self.left), value_of(self.right)
        try:
            return COMPARISON_OPS[self.op](left, right)
        except TypeError as exc:
            raise QueryError(
                f"cannot compare {left!r} {self.op} {right!r}: incompatible types"
            ) from exc

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"
