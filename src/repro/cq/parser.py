"""A parser for datalog-style conjunctive query strings.

The concrete syntax mirrors the paper's notation::

    V2(n, d)   :- Emp(n, d, p)
    S()        :- Employee('Jane', 'Shipping', 1234567)
    Q(x)       :- R1(x, 'a', y), R2(y, 'b', 'c'), R3(x, -, -), x < y, y != 'c'
    V4(n)      :- Emp(n, Mgmt, p)

Term conventions
----------------
* identifiers starting with a lowercase letter are **variables** (``x``, ``name``),
* ``-`` and ``_`` denote **anonymous variables** (each occurrence distinct),
* quoted strings (``'a'``, ``"Jane"``) are **constants**,
* numeric literals (``42``, ``3.5``) are **constants**,
* identifiers starting with an uppercase letter are **constants** whose value
  is the identifier itself (``Mgmt``, ``HR``), matching the paper's examples.

``:-`` separates the head from the body; body items are relational atoms
or comparisons (``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``) separated by
commas.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ParseError
from .atoms import COMPARISON_OPS, Atom, Comparison
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable, fresh_variable

__all__ = ["parse_query", "parse_atom", "parse_term", "q"]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        :-                          |   # head/body separator
        <=|>=|!=|=|<|>              |   # comparison operators
        [(),]                       |   # punctuation
        '(?:[^'\\]|\\.)*'           |   # single-quoted constant
        "(?:[^"\\]|\\.)*"           |   # double-quoted constant
        -?\d+\.\d+                  |   # float literal
        -?\d+                       |   # int literal
        [A-Za-z_][A-Za-z0-9_]*      |   # identifier
        -                               # anonymous variable
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character at position {pos}: {text[pos:pos + 10]!r}")
        token = match.group(1)
        tokens.append(token)
        pos = match.end()
    return tokens


class _TokenStream:
    """A tiny cursor over the token list with error reporting."""

    def __init__(self, tokens: Sequence[str], source: str):
        self._tokens = list(tokens)
        self._source = source
        self._index = 0

    def peek(self) -> Optional[str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of query in {self._source!r}")
        self._index += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise ParseError(
                f"expected {expected!r} but found {token!r} in {self._source!r}"
            )
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)


def _term_from_token(token: str) -> Term:
    if token in ("-", "_"):
        return fresh_variable()
    if token.startswith(("'", '"')):
        return Constant(token[1:-1])
    if re.fullmatch(r"-?\d+", token):
        return Constant(int(token))
    if re.fullmatch(r"-?\d+\.\d+", token):
        return Constant(float(token))
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        if token[0].isupper():
            return Constant(token)
        return Variable(token)
    raise ParseError(f"cannot interpret term token {token!r}")


def parse_term(text: str) -> Term:
    """Parse a single term (variable or constant)."""
    tokens = _tokenize(text.strip())
    if len(tokens) != 1:
        raise ParseError(f"expected a single term, got {text!r}")
    return _term_from_token(tokens[0])


def _parse_term_list(stream: _TokenStream) -> Tuple[Term, ...]:
    terms: List[Term] = []
    if stream.peek() == ")":
        return ()
    while True:
        terms.append(_term_from_token(stream.next()))
        token = stream.peek()
        if token == ",":
            stream.next()
            continue
        return tuple(terms)


def parse_atom(text: str) -> Atom:
    """Parse a single relational atom like ``R(x, 'a', -)``."""
    stream = _TokenStream(_tokenize(text.strip()), text)
    atom = _parse_atom(stream)
    if not stream.at_end():
        raise ParseError(f"trailing input after atom in {text!r}")
    return atom


def _parse_atom(stream: _TokenStream) -> Atom:
    relation = stream.next()
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", relation):
        raise ParseError(f"invalid relation name {relation!r}")
    stream.expect("(")
    terms = _parse_term_list(stream)
    stream.expect(")")
    return Atom(relation, terms)


def _parse_body_item(stream: _TokenStream) -> Atom | Comparison:
    # Look ahead: an atom is `name (`; a comparison is `term op term`.
    first = stream.next()
    following = stream.peek()
    if following == "(" and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", first):
        stream.expect("(")
        terms = _parse_term_list(stream)
        stream.expect(")")
        return Atom(first, terms)
    op = stream.next()
    if op not in COMPARISON_OPS:
        raise ParseError(f"expected a comparison operator, found {op!r}")
    right = stream.next()
    return Comparison(_term_from_token(first), op, _term_from_token(right))


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a full conjunctive query in datalog notation.

    Examples
    --------
    >>> parse_query("V(n, d) :- Emp(n, d, p)")
    V(n, d) :- Emp(n, d, p)
    >>> parse_query("S() :- R('a', x), R(x, x)").is_boolean
    True
    """
    stream = _TokenStream(_tokenize(text.strip()), text)
    name = stream.next()
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        raise ParseError(f"invalid query name {name!r}")
    stream.expect("(")
    head = _parse_term_list(stream)
    stream.expect(")")
    stream.expect(":-")
    body: List[Atom] = []
    comparisons: List[Comparison] = []
    while True:
        item = _parse_body_item(stream)
        if isinstance(item, Atom):
            body.append(item)
        else:
            comparisons.append(item)
        if stream.peek() == ",":
            stream.next()
            continue
        break
    if not stream.at_end():
        raise ParseError(f"trailing input after query body in {text!r}")
    return ConjunctiveQuery(head, body, comparisons, name=name)


def q(text: str) -> ConjunctiveQuery:
    """Shorthand alias for :func:`parse_query` used throughout examples."""
    return parse_query(text)
