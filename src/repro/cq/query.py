"""Conjunctive queries with inequalities (datalog notation).

A :class:`ConjunctiveQuery` has a head (an ordered tuple of terms), a
body of relational atoms and a set of comparison predicates.  Boolean
queries are queries of arity 0.  Conjunctive queries are monotone, which
is the property required by Theorem 4.8 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from ..exceptions import QueryError
from ..relational.tuples import Fact
from .atoms import Atom, Comparison
from .terms import Constant, Term, Variable, fresh_variable, is_constant, is_variable

__all__ = ["ConjunctiveQuery"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``name(head) :- body, comparisons``.

    Parameters
    ----------
    head:
        Tuple of head terms.  Empty for boolean queries.  Head variables
        must appear in the body (safety).
    body:
        Relational subgoals.
    comparisons:
        Comparison predicates over the query's variables/constants.
    name:
        Cosmetic name used when printing the query.
    """

    head: Tuple[Term, ...]
    body: Tuple[Atom, ...]
    comparisons: Tuple[Comparison, ...] = field(default_factory=tuple)
    name: str = "Q"

    def __init__(
        self,
        head: Sequence[Term],
        body: Sequence[Atom],
        comparisons: Sequence[Comparison] = (),
        name: str = "Q",
    ):
        head = tuple(head)
        body = tuple(body)
        comparisons = tuple(comparisons)
        if not body:
            raise QueryError("a conjunctive query must have at least one subgoal")
        body_vars = {v for atom in body for v in atom.variables}
        for term in head:
            if is_variable(term) and term not in body_vars:
                raise QueryError(
                    f"unsafe query: head variable {term!r} does not appear in the body"
                )
        for comparison in comparisons:
            for var in comparison.variables:
                if var not in body_vars:
                    raise QueryError(
                        f"unsafe query: comparison variable {var!r} does not appear in the body"
                    )
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "comparisons", comparisons)
        object.__setattr__(self, "name", name)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def boolean(
        cls,
        body: Sequence[Atom],
        comparisons: Sequence[Comparison] = (),
        name: str = "Q",
    ) -> "ConjunctiveQuery":
        """A boolean (arity-0) conjunctive query."""
        return cls((), body, comparisons, name=name)

    @classmethod
    def fact_query(cls, fact: Fact, name: str = "Q") -> "ConjunctiveQuery":
        """The boolean query ``Q() :- t`` asserting the presence of one fact.

        This is the construction used in the reduction preceding
        Theorem 4.11: ``S() :- t`` so that ``t ∉ crit(Q)`` iff
        ``crit(S) ∩ crit(Q) = ∅``.
        """
        atom = Atom(fact.relation, tuple(Constant(v) for v in fact.values))
        return cls.boolean((atom,), name=name)

    # -- basic properties -----------------------------------------------------
    @property
    def arity(self) -> int:
        """Arity of the query (0 for boolean queries)."""
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        """True when the query has arity 0."""
        return not self.head

    @property
    def head_variables(self) -> Tuple[Variable, ...]:
        """Head variables in head order (without duplicates)."""
        seen: list[Variable] = []
        for term in self.head:
            if is_variable(term) and term not in seen:
                seen.append(term)
        return tuple(seen)

    @property
    def variables(self) -> FrozenSet[Variable]:
        """All variables of the query (body, head and comparisons)."""
        result = {v for atom in self.body for v in atom.variables}
        for comparison in self.comparisons:
            result |= comparison.variables
        for term in self.head:
            if is_variable(term):
                result.add(term)
        return frozenset(result)

    @property
    def existential_variables(self) -> FrozenSet[Variable]:
        """Variables that occur in the body but not in the head."""
        return self.variables - set(self.head_variables)

    @property
    def constants(self) -> FrozenSet[object]:
        """All constant values mentioned anywhere in the query."""
        result = {c for atom in self.body for c in atom.constants}
        for term in self.head:
            if is_constant(term):
                result.add(term.value)
        for comparison in self.comparisons:
            for term in (comparison.left, comparison.right):
                if is_constant(term):
                    result.add(term.value)
        return frozenset(result)

    @property
    def relation_names(self) -> FrozenSet[str]:
        """Names of the relations mentioned in the body."""
        return frozenset(atom.relation for atom in self.body)

    @property
    def has_order_predicates(self) -> bool:
        """True when any comparison is an order predicate (<, <=, >, >=)."""
        return any(c.is_order_predicate for c in self.comparisons)

    @property
    def is_monotone(self) -> bool:
        """Conjunctive queries (with comparisons) are always monotone."""
        return True

    def symbol_count(self) -> int:
        """Number of distinct variables plus constants (the ``n`` of Prop. 4.9)."""
        return len(self.variables) + len(self.constants)

    # -- transformations ------------------------------------------------------
    def substitute(self, mapping: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to head, body and comparisons."""
        head = tuple(
            mapping.get(t, t) if is_variable(t) else t for t in self.head
        )
        body = tuple(atom.substitute(mapping) for atom in self.body)
        comparisons = tuple(c.substitute(mapping) for c in self.comparisons)
        return ConjunctiveQuery(head, body, comparisons, name=self.name)

    def rename_apart(self, taken: Iterable[Variable]) -> "ConjunctiveQuery":
        """Rename variables so that none clashes with the ``taken`` set."""
        taken_set = set(taken)
        mapping: Dict[Variable, Term] = {}
        for var in sorted(self.variables):
            if var in taken_set:
                mapping[var] = fresh_variable(f"{var.name}_r")
        if not mapping:
            return self
        return self.substitute(mapping)

    def with_name(self, name: str) -> "ConjunctiveQuery":
        """A copy of this query with a different display name."""
        return ConjunctiveQuery(self.head, self.body, self.comparisons, name=name)

    def boolean_specialisation(
        self, answer: Sequence[object], name: Optional[str] = None
    ) -> "ConjunctiveQuery":
        """The boolean query ``Q^b_t(I) = (t ∈ Q(I))`` for one answer tuple ``t``.

        This is the construction used in Section 4.3 ("the non-boolean
        case"): head variables are bound to the answer's constants and the
        query becomes boolean.  Repeated head variables must be bound
        consistently, otherwise the specialisation is unsatisfiable and a
        :class:`QueryError` is raised.
        """
        answer = tuple(answer)
        if len(answer) != self.arity:
            raise QueryError(
                f"answer {answer!r} has arity {len(answer)}, query has arity {self.arity}"
            )
        mapping: Dict[Variable, Term] = {}
        extra_comparisons: list[Comparison] = []
        for term, value in zip(self.head, answer):
            if is_constant(term):
                if term.value != value:
                    raise QueryError(
                        f"answer {answer!r} conflicts with head constant {term.value!r}"
                    )
                continue
            bound = mapping.get(term)
            if bound is None:
                mapping[term] = Constant(value)
            elif bound != Constant(value):
                raise QueryError(
                    f"answer {answer!r} binds head variable {term!r} inconsistently"
                )
        substituted = self.substitute(mapping)
        return ConjunctiveQuery(
            (),
            substituted.body,
            tuple(substituted.comparisons) + tuple(extra_comparisons),
            name=name or f"{self.name}[{answer!r}]",
        )

    # -- rendering ------------------------------------------------------------
    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        parts = [repr(a) for a in self.body] + [repr(c) for c in self.comparisons]
        return f"{self.name}({head}) :- {', '.join(parts)}"
