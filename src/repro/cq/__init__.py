"""Conjunctive-query substrate: terms, atoms, queries, parsing, evaluation.

Implements the query language of Section 3.1 of the paper: conjunctive
queries with inequalities in datalog notation, plus homomorphisms,
unification and containment machinery used by the security analysis.
"""

from .atoms import Atom, Comparison
from .compiled import CompiledPlan, evaluation_stats, plan_for, reset_evaluation_stats
from .compose import conjoin, conjoin_all
from .containment import are_equivalent, determines, is_answerable_from, is_contained_in
from .evaluation import (
    EVAL_ENGINE_ENV,
    answer_contains,
    delta_apply,
    delta_apply_many,
    delta_changes,
    delta_with,
    eval_engine_scope,
    evaluate,
    evaluate_boolean,
    evaluation_engine,
    naive_evaluate,
    naive_evaluate_boolean,
    naive_satisfying_assignments,
    possible_answers,
    satisfying_assignments,
)
from .plan import plan_atom_order
from .homomorphism import (
    canonical_instance,
    find_query_homomorphism,
    has_homomorphism_into_instance,
    has_query_homomorphism,
)
from .parser import parse_atom, parse_query, parse_term, q
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable, fresh_variable
from .union import UnionQuery, union_of
from .unification import (
    atoms_unifiable,
    match_atom_to_fact,
    queries_share_unifiable_subgoals,
    unifiable_subgoal_pairs,
    unify_atoms,
)

__all__ = [
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "Term",
    "Variable",
    "fresh_variable",
    "parse_query",
    "parse_atom",
    "parse_term",
    "q",
    "evaluate",
    "evaluate_boolean",
    "possible_answers",
    "satisfying_assignments",
    "answer_contains",
    "delta_changes",
    "delta_with",
    "delta_apply",
    "delta_apply_many",
    "evaluation_engine",
    "eval_engine_scope",
    "EVAL_ENGINE_ENV",
    "naive_evaluate",
    "naive_evaluate_boolean",
    "naive_satisfying_assignments",
    "CompiledPlan",
    "plan_for",
    "plan_atom_order",
    "evaluation_stats",
    "reset_evaluation_stats",
    "find_query_homomorphism",
    "has_query_homomorphism",
    "has_homomorphism_into_instance",
    "canonical_instance",
    "unify_atoms",
    "atoms_unifiable",
    "match_atom_to_fact",
    "unifiable_subgoal_pairs",
    "queries_share_unifiable_subgoals",
    "is_contained_in",
    "are_equivalent",
    "determines",
    "is_answerable_from",
    "conjoin",
    "conjoin_all",
    "UnionQuery",
    "union_of",
]
