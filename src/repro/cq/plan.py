"""Join planning for compiled conjunctive-query evaluation.

A *plan* fixes, per (query, seed) pair, everything the evaluator would
otherwise re-derive per candidate fact:

* an **atom order**, chosen greedily by bound-variable connectivity and
  selectivity: at each step the subgoal with the most already-bound
  positions wins (ties broken towards more constants, fewer fresh
  variables, then original body order), so joins are driven by index
  probes instead of cross products;
* per atom, the **probe key** — the positions whose value is known when
  the atom is reached (constants plus previously-bound variables),
  matched via :meth:`repro.relational.instance.Instance.index` — and the
  **bind operations** for the remaining positions (bind a fresh slot, or
  check a slot bound earlier *within the same atom* for repeated
  variables);
* a **comparison schedule**: each comparison predicate is compiled
  against the slot layout and attached to the earliest step at which all
  of its operands are bound, so a failing comparison cuts the whole
  remaining subtree (constant-only comparisons are checked as soon as
  the first subgoal matches, mirroring the naive evaluator).

Plans are pure descriptions; :mod:`repro.cq.compiled` provides the
runtime that executes them against instances.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..exceptions import QueryError
from .atoms import COMPARISON_OPS, Atom, Comparison
from .query import ConjunctiveQuery
from .terms import Variable, is_constant, is_variable

__all__ = [
    "CompiledComparison",
    "AtomStep",
    "PlanSteps",
    "slot_assignment",
    "plan_atom_order",
    "build_steps",
]


def slot_assignment(query: ConjunctiveQuery) -> Dict[Variable, int]:
    """Assign each query variable a slot, by first occurrence in the body.

    Slots index the flat assignment array the compiled evaluator binds
    into (instead of copying dicts).  Comparison and head variables are
    body variables by the query's safety checks, but are swept anyway so
    a plan can never meet an unassigned variable.
    """
    slots: Dict[Variable, int] = {}
    for atom in query.body:
        for term in atom.terms:
            if is_variable(term) and term not in slots:
                slots[term] = len(slots)
    for comparison in query.comparisons:
        for variable in comparison.variables:
            if variable not in slots:
                slots[variable] = len(slots)
    for term in query.head:
        if is_variable(term) and term not in slots:
            slots[term] = len(slots)
    return slots


class CompiledComparison:
    """A comparison predicate resolved against the plan's slot layout."""

    __slots__ = ("comparison", "slots", "_op", "_left", "_right")

    def __init__(self, comparison: Comparison, slot_of: Dict[Variable, int]):
        self.comparison = comparison
        self._op = COMPARISON_OPS[comparison.op]
        # Each side is (slot, constant): slot is None for constants.
        self._left = self._side(comparison.left, slot_of)
        self._right = self._side(comparison.right, slot_of)
        self.slots: FrozenSet[int] = frozenset(
            side[0] for side in (self._left, self._right) if side[0] is not None
        )

    @staticmethod
    def _side(term, slot_of):
        if is_constant(term):
            return (None, term.value)
        return (slot_of[term], None)

    def evaluate(self, slots: List[object]) -> bool:
        """Evaluate against the slot array (operands must be bound)."""
        left_slot, left = self._left
        if left_slot is not None:
            left = slots[left_slot]
        right_slot, right = self._right
        if right_slot is not None:
            right = slots[right_slot]
        try:
            return self._op(left, right)
        except TypeError as exc:
            comparison = self.comparison
            raise QueryError(
                f"cannot compare {left!r} {comparison.op} {right!r}: incompatible types"
            ) from exc


class AtomStep:
    """One planned subgoal: an index probe plus slot bind/check operations.

    Attributes
    ----------
    atom / source_index:
        The subgoal and its position in the original body.
    key_positions / key_parts:
        The statically-bound positions probed through the instance index;
        ``key_parts`` aligns with them as ``(slot, constant)`` pairs
        (``slot`` is ``None`` for constants).
    bind_ops:
        ``(position, slot, check)`` triples for the remaining positions:
        ``check`` is true for a repeated variable's later occurrence
        within this atom (equality test instead of a fresh binding).
    comparisons:
        The comparison predicates scheduled at this step (their last free
        variable is bound here).
    """

    __slots__ = (
        "atom",
        "source_index",
        "relation",
        "arity",
        "key_positions",
        "key_parts",
        "bind_ops",
        "comparisons",
    )

    def __init__(
        self,
        atom: Atom,
        source_index: int,
        key_positions: Tuple[int, ...],
        key_parts: Tuple[Tuple[Optional[int], object], ...],
        bind_ops: Tuple[Tuple[int, int, bool], ...],
        comparisons: Tuple[CompiledComparison, ...],
    ):
        self.atom = atom
        self.source_index = source_index
        self.relation = atom.relation
        self.arity = atom.arity
        self.key_positions = key_positions
        self.key_parts = key_parts
        self.bind_ops = bind_ops
        self.comparisons = comparisons


class PlanSteps:
    """An executable atom ordering for one (seeded, excluded) variant.

    ``pre_comparisons`` are predicates fully bound before the first
    probe (seeded-variable comparisons in delta/row variants); ``order``
    lists the original body indices in execution order.
    """

    __slots__ = ("steps", "pre_comparisons", "order")

    def __init__(
        self,
        steps: Tuple[AtomStep, ...],
        pre_comparisons: Tuple[CompiledComparison, ...],
        order: Tuple[int, ...],
    ):
        self.steps = steps
        self.pre_comparisons = pre_comparisons
        self.order = order


def _order_atoms(
    body: Sequence[Atom],
    bound_variables: FrozenSet[Variable],
    excluded: Optional[int] = None,
) -> List[int]:
    """Greedy bound-connectivity / selectivity ordering of the subgoals.

    Repeatedly picks the atom with the most bound positions (constants +
    bound variables); ties prefer more constants, then the atom whose
    fresh variables connect the most remaining atoms (so a disconnected
    subgoal never interrupts a join chain), then fewer fresh variables,
    then the original body order (determinism).
    """
    remaining = [i for i in range(len(body)) if i != excluded]
    bound = set(bound_variables)
    order: List[int] = []

    def score(i: int) -> Tuple[int, int, int, int, int]:
        bound_terms = constants = 0
        fresh: set = set()
        for term in body[i].terms:
            if is_constant(term):
                constants += 1
                bound_terms += 1
            elif term in bound:
                bound_terms += 1
            else:
                fresh.add(term)
        connectivity = sum(
            1
            for j in remaining
            if j != i and any(v in fresh for v in body[j].variables)
        )
        return (bound_terms, constants, connectivity, -len(fresh), -i)

    while remaining:
        best = max(remaining, key=score)
        remaining.remove(best)
        order.append(best)
        for term in body[best].terms:
            if is_variable(term):
                bound.add(term)
    return order


def plan_atom_order(query: ConjunctiveQuery) -> Tuple[int, ...]:
    """The planner's subgoal ordering (original body indices, no seeds).

    Exposed so order-sensitive callers outside the compiled runtime —
    notably :func:`repro.cq.homomorphism.homomorphisms_into_instance` —
    share one ordering policy with the evaluator.
    """
    return tuple(_order_atoms(query.body, frozenset()))


def build_steps(
    query: ConjunctiveQuery,
    slot_of: Dict[Variable, int],
    seeded: FrozenSet[int] = frozenset(),
    excluded: Optional[int] = None,
) -> PlanSteps:
    """Compile one plan variant.

    ``seeded`` lists slots bound before evaluation starts (head slots in
    row-membership checks, the pinned atom's slots in delta evaluation);
    ``excluded`` drops one body atom (the delta-pinned subgoal, already
    satisfied by the removed fact).
    """
    body = query.body
    variable_of = {slot: variable for variable, slot in slot_of.items()}
    bound_vars = {variable_of[slot] for slot in seeded}
    order = _order_atoms(body, frozenset(bound_vars), excluded)

    raw_steps: List[Tuple[Atom, int, Tuple, Tuple, Tuple]] = []
    bound_at: Dict[Variable, int] = {variable: -1 for variable in bound_vars}
    for step_index, i in enumerate(order):
        atom = body[i]
        key_positions: List[int] = []
        key_parts: List[Tuple[Optional[int], object]] = []
        bind_ops: List[Tuple[int, int, bool]] = []
        fresh_here: set = set()
        for position, term in enumerate(atom.terms):
            if is_constant(term):
                key_positions.append(position)
                key_parts.append((None, term.value))
            elif term in bound_vars:
                key_positions.append(position)
                key_parts.append((slot_of[term], None))
            elif term in fresh_here:
                bind_ops.append((position, slot_of[term], True))
            else:
                fresh_here.add(term)
                bind_ops.append((position, slot_of[term], False))
        for variable in fresh_here:
            bound_vars.add(variable)
            bound_at[variable] = step_index
        raw_steps.append(
            (atom, i, tuple(key_positions), tuple(key_parts), tuple(bind_ops))
        )

    pre: List[CompiledComparison] = []
    per_step: List[List[CompiledComparison]] = [[] for _ in raw_steps]
    for comparison in query.comparisons:
        compiled = CompiledComparison(comparison, slot_of)
        variables = comparison.variables
        if not variables:
            # Constant-only comparisons: the naive evaluator checks these
            # as soon as the first subgoal matches; keep that laziness so
            # an unsatisfiable match never turns into an eager type error.
            (per_step[0] if per_step else pre).append(compiled)
            continue
        last = max(bound_at[variable] for variable in variables)
        if last < 0:
            pre.append(compiled)
        else:
            per_step[last].append(compiled)

    steps = tuple(
        AtomStep(atom, i, key_positions, key_parts, bind_ops, tuple(per_step[index]))
        for index, (atom, i, key_positions, key_parts, bind_ops) in enumerate(raw_steps)
    )
    return PlanSteps(steps, tuple(pre), tuple(order))
