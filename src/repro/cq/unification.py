"""Unification of atoms, and matching atoms against ground facts.

Unification is the workhorse of the paper's *practical algorithm*
(Section 4.2): two queries can only share a critical tuple if some pair
of their subgoals unifies, so comparing all pairs of subgoals gives a
fast, conservative security check.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..relational.tuples import Fact
from .atoms import Atom
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable, is_constant, is_variable

__all__ = [
    "unify_atoms",
    "atoms_unifiable",
    "match_atom_to_fact",
    "unifiable_subgoal_pairs",
    "queries_share_unifiable_subgoals",
]

Substitution = Dict[Variable, Term]


def _walk(term: Term, substitution: Substitution) -> Term:
    """Follow variable bindings until a constant or an unbound variable."""
    while is_variable(term) and term in substitution:
        term = substitution[term]
    return term


def _occurs_free(term: Term, substitution: Substitution) -> Term:
    return _walk(term, substitution)


def unify_atoms(
    left: Atom, right: Atom, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Most general unifier of two atoms, or ``None`` when they do not unify.

    The two atoms are assumed to use disjoint variable namespaces when a
    genuine most-general unifier is needed (callers rename apart first);
    when they share variables the shared variables are treated as the
    same logical variable, which is what the practical algorithm needs
    when comparing subgoals *within* one query.
    """
    if left.relation != right.relation or left.arity != right.arity:
        return None
    substitution = dict(substitution or {})
    for left_term, right_term in zip(left.terms, right.terms):
        lt = _walk(left_term, substitution)
        rt = _walk(right_term, substitution)
        if lt == rt:
            continue
        if is_variable(lt):
            substitution[lt] = rt
        elif is_variable(rt):
            substitution[rt] = lt
        else:  # two distinct constants
            return None
    return substitution


def atoms_unifiable(left: Atom, right: Atom) -> bool:
    """True when the two atoms unify (after implicit renaming apart)."""
    renamed_right = Atom(
        right.relation,
        tuple(
            Variable(f"__r_{t.name}") if is_variable(t) else t for t in right.terms
        ),
    )
    return unify_atoms(left, renamed_right) is not None


def match_atom_to_fact(
    atom: Atom, fact: Fact, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify an atom with a ground fact (one-way matching)."""
    ground_atom = Atom(fact.relation, tuple(Constant(v) for v in fact.values))
    return unify_atoms(atom, ground_atom, substitution)


def unifiable_subgoal_pairs(
    secret: ConjunctiveQuery, view: ConjunctiveQuery
) -> Tuple[Tuple[Atom, Atom], ...]:
    """All pairs (secret subgoal, view subgoal) that unify.

    This is the evidence returned by the practical algorithm: an empty
    result certifies security (no shared critical tuple is possible); a
    non-empty result flags *potential* insecurity.
    """
    view = view.rename_apart(secret.variables)
    pairs = []
    for secret_atom in secret.body:
        for view_atom in view.body:
            if unify_atoms(secret_atom, view_atom) is not None:
                pairs.append((secret_atom, view_atom))
    return tuple(pairs)


def queries_share_unifiable_subgoals(
    secret: ConjunctiveQuery, views: Iterable[ConjunctiveQuery]
) -> bool:
    """True when any view has a subgoal unifying with a secret subgoal."""
    return any(unifiable_subgoal_pairs(secret, view) for view in views)
