"""Composition helpers for conjunctive queries.

Security analyses frequently need the *conjunction* of two boolean
queries (``S ∧ V``, e.g. in Eq. (6) ``f_{S∧V} = f_S · f_V`` or when
computing ``μ_n[QV]`` in Section 6.2).  :func:`conjoin` builds it by
renaming the operands apart and concatenating their bodies.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..exceptions import QueryError
from .query import ConjunctiveQuery

__all__ = ["conjoin", "conjoin_all"]


def conjoin(
    left: ConjunctiveQuery, right: ConjunctiveQuery, name: str | None = None
) -> ConjunctiveQuery:
    """The boolean conjunction ``left ∧ right`` of two boolean queries.

    The right operand is renamed apart so that accidental variable
    sharing does not correlate the two bodies.
    """
    if not left.is_boolean or not right.is_boolean:
        raise QueryError("conjoin requires boolean (arity-0) queries")
    renamed = right.rename_apart(left.variables)
    return ConjunctiveQuery(
        (),
        tuple(left.body) + tuple(renamed.body),
        tuple(left.comparisons) + tuple(renamed.comparisons),
        name=name or f"{left.name}_and_{right.name}",
    )


def conjoin_all(queries: Sequence[ConjunctiveQuery], name: str = "Q_and") -> ConjunctiveQuery:
    """Conjunction of several boolean queries (left-associated)."""
    if not queries:
        raise QueryError("conjoin_all requires at least one query")
    result = queries[0]
    for query in queries[1:]:
        result = conjoin(result, query)
    return result.with_name(name)
