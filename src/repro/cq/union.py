"""Unions of conjunctive queries (UCQs).

The paper states its central results (Theorem 4.5, Theorem 4.8) for
*monotone* queries, and conjunctive queries are only the simplest such
class.  :class:`UnionQuery` extends the library to finite unions of
conjunctive queries — still monotone, still supported by the
minimal-instance critical-tuple search — so that secrets and views such
as "names of employees in HR **or** in Payroll" can be analysed.

A UCQ is a set of conjunctive *disjuncts* of equal arity; its answer on
an instance is the union of the disjuncts' answers.  All disjuncts are
renamed apart at construction so that accidental variable sharing
between disjuncts cannot change the semantics.

One caveat is documented rather than hidden: Proposition 4.9's
domain-size bound is proved for conjunctive queries.  For UCQs this
library applies the bound with ``n`` taken as the largest symbol count
of any disjunct, which follows from applying the paper's argument to
each pair of disjuncts; analyses that want to be conservative can pass
an explicitly larger domain.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..exceptions import QueryError
from .query import ConjunctiveQuery
from .terms import Variable

__all__ = ["UnionQuery", "union_of"]


class UnionQuery:
    """A union (disjunction) of conjunctive queries of equal arity."""

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], name: str = "U"):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise QueryError("a union query needs at least one disjunct")
        arity = disjuncts[0].arity
        for disjunct in disjuncts:
            if disjunct.arity != arity:
                raise QueryError(
                    f"all disjuncts must have the same arity; "
                    f"{disjunct.name} has arity {disjunct.arity}, expected {arity}"
                )
        renamed: List[ConjunctiveQuery] = []
        taken: set[Variable] = set()
        for disjunct in disjuncts:
            separated = disjunct.rename_apart(taken)
            taken |= separated.variables
            renamed.append(separated)
        self._disjuncts = tuple(renamed)
        self._name = name

    # -- basic properties ------------------------------------------------------
    @property
    def disjuncts(self) -> Tuple[ConjunctiveQuery, ...]:
        """The conjunctive disjuncts (renamed apart)."""
        return self._disjuncts

    @property
    def name(self) -> str:
        """Display name of the query."""
        return self._name

    @property
    def arity(self) -> int:
        """Arity shared by every disjunct."""
        return self._disjuncts[0].arity

    @property
    def is_boolean(self) -> bool:
        """True when the union has arity 0."""
        return self.arity == 0

    @property
    def is_monotone(self) -> bool:
        """Unions of conjunctive queries are monotone."""
        return True

    @property
    def variables(self) -> FrozenSet[Variable]:
        """All variables across the disjuncts."""
        result: set[Variable] = set()
        for disjunct in self._disjuncts:
            result |= disjunct.variables
        return frozenset(result)

    @property
    def constants(self) -> FrozenSet[object]:
        """All constants across the disjuncts."""
        result: set[object] = set()
        for disjunct in self._disjuncts:
            result |= disjunct.constants
        return frozenset(result)

    @property
    def relation_names(self) -> FrozenSet[str]:
        """Relations mentioned by any disjunct."""
        result: set[str] = set()
        for disjunct in self._disjuncts:
            result |= disjunct.relation_names
        return frozenset(result)

    @property
    def has_order_predicates(self) -> bool:
        """True when any disjunct uses an order predicate."""
        return any(d.has_order_predicates for d in self._disjuncts)

    @property
    def body(self):
        """All subgoals across the disjuncts (used by the practical check)."""
        return tuple(atom for disjunct in self._disjuncts for atom in disjunct.body)

    def symbol_count(self) -> int:
        """Largest variables-plus-constants count of any disjunct.

        See the module docstring for the domain-independence caveat.
        """
        return max(d.symbol_count() for d in self._disjuncts)

    # -- transformations ---------------------------------------------------------
    def with_name(self, name: str) -> "UnionQuery":
        """A copy with a different display name."""
        return UnionQuery(self._disjuncts, name=name)

    def rename_apart(self, taken: Iterable[Variable]) -> "UnionQuery":
        """Rename every disjunct apart from the ``taken`` variables."""
        taken = set(taken)
        return UnionQuery(
            [d.rename_apart(taken) for d in self._disjuncts], name=self._name
        )

    def boolean_specialisation(self, answer: Sequence[object], name: str | None = None) -> "UnionQuery":
        """The boolean UCQ ``answer ∈ Q(I)``: union of the disjuncts that can
        produce the answer (disjuncts whose head constants conflict are dropped)."""
        specialised = []
        for disjunct in self._disjuncts:
            try:
                specialised.append(disjunct.boolean_specialisation(answer))
            except QueryError:
                continue
        if not specialised:
            raise QueryError(f"no disjunct of {self._name} can produce {answer!r}")
        return UnionQuery(specialised, name=name or f"{self._name}[{tuple(answer)!r}]")

    def __repr__(self) -> str:
        return " UNION ".join(repr(d) for d in self._disjuncts)


def union_of(*queries: ConjunctiveQuery, name: str = "U") -> UnionQuery:
    """Convenience constructor: ``union_of(q("..."), q("..."))``."""
    return UnionQuery(queries, name=name)
