"""Deterministic fault injection for the audit service stack.

Production resilience features (deadlines, retries, stale-claim
recovery, circuit breakers) are only trustworthy if the failures they
guard against can be reproduced on demand.  This module provides a
seeded, declarative :class:`FaultPlan` that the server, fleet router,
and storage layer consult at **named fault points**:

``server.execute``
    In the worker thread, immediately before an analysis computation
    runs.  Supports ``delay`` (slow the computation), ``error`` (raise
    an analysis error), and ``kill`` (SIGKILL the worker process —
    simulates an OOM kill or segfault mid-computation).

``server.respond``
    In the event loop, immediately before a response line is written
    back to a connection.  Supports ``drop`` (close the connection
    without answering — simulates a network partition mid-response)
    and ``delay``.

``router.forward``
    In the fleet router, immediately before a request is forwarded to
    a shard.  Supports ``delay`` and ``error``.

``sql.execute``
    In the ``sql`` evaluation engine, before each compiled statement is
    executed.  Supports ``sqlite-error`` (raise
    :class:`sqlite3.OperationalError`, as a failing disk would) and
    ``delay``.

``storage.execute``
    In :class:`~repro.storage.sqlite.SQLiteFactStore`, before each raw
    statement.  Same actions as ``sql.execute``.

A plan is a JSON document — ``{"seed": 0, "faults": [...]}`` — where
each fault names a point, an action, and trigger bounds::

    {"point": "server.execute", "action": "kill", "shard": 0, "after": 10}
    {"point": "server.execute", "action": "delay", "op": "decide", "delay": 0.5}
    {"point": "sql.execute", "action": "sqlite-error", "after": 3, "count": 1}

``after`` skips that many matching hits before the rule starts firing;
``count`` bounds how many times it fires (``null`` = forever);
``probability`` (with the plan-level ``seed``) makes firing stochastic
but reproducible.  ``op`` and ``shard`` restrict a rule to one request
operation or one fleet shard (shard context is set per worker process
via :func:`set_context`).

Plans are installed process-globally (:func:`install`) or from the
``REPRO_FAULT_PLAN`` environment variable (:func:`install_from_env`),
which accepts inline JSON or a path to a JSON file; forked fleet
workers inherit the variable, so one plan configures a whole fleet.
When no plan is installed, :func:`fire` is a single ``None`` check —
the fault layer costs nothing in production.

This module deliberately imports nothing from the rest of the package
(beyond the shared exception type) so the storage and evaluation
layers can consult fault points without circular imports.
"""

from __future__ import annotations

import json
import os
import random
import signal
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .exceptions import ReproError

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_POINTS",
    "FAULT_ACTIONS",
    "FaultRule",
    "FaultPlan",
    "install",
    "uninstall",
    "install_from_env",
    "active_plan",
    "set_context",
    "fire",
    "perform",
    "stats",
]

#: Environment variable holding a fault plan: inline JSON (text starting
#: with ``{`` or ``[``) or a path to a JSON file.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The named fault points consulted by the service stack.
FAULT_POINTS = frozenset(
    {
        "server.execute",
        "server.respond",
        "router.forward",
        "sql.execute",
        "storage.execute",
    }
)

#: Supported fault actions (see the module docstring for which points
#: honour which actions).
FAULT_ACTIONS = frozenset({"delay", "error", "kill", "drop", "sqlite-error"})


@dataclass
class FaultRule:
    """One declarative fault: where it fires, what it does, how often."""

    point: str
    action: str
    #: Matching hits skipped before the rule starts firing.
    after: int = 0
    #: Number of times the rule fires once armed (``None`` = unbounded).
    count: Optional[int] = 1
    #: Restrict to one request operation (``decide``, ``audit``, ...).
    op: Optional[str] = None
    #: Restrict to one fleet shard (workers call :func:`set_context`).
    shard: Optional[int] = None
    #: Sleep duration for ``delay`` actions, in seconds.
    delay: float = 0.0
    #: Chance of firing per armed hit; drawn from the plan's seeded RNG.
    probability: float = 1.0
    #: Message carried by ``error`` / ``sqlite-error`` raises.
    message: str = ""
    #: Matching hits observed so far (mutated under the plan lock).
    hits: int = 0
    #: Times the rule has fired.
    fired: int = 0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ReproError(
                f"unknown fault point {self.point!r}; expected one of "
                f"{sorted(FAULT_POINTS)}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{sorted(FAULT_ACTIONS)}"
            )
        if self.after < 0:
            raise ReproError("fault 'after' must be >= 0")
        if self.count is not None and self.count < 0:
            raise ReproError("fault 'count' must be >= 0 or null")
        if self.delay < 0:
            raise ReproError("fault 'delay' must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError("fault 'probability' must be in [0, 1]")

    def matches(self, point: str, op: Optional[str], shard: Optional[int]) -> bool:
        if self.point != point:
            return False
        if self.op is not None and op != self.op:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        return True

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(document, Mapping):
            raise ReproError("each fault must be a JSON object")
        known = {
            "point", "action", "after", "count", "op", "shard",
            "delay", "probability", "message",
        }
        unknown = set(document) - known
        if unknown:
            raise ReproError(f"unknown fault fields: {sorted(unknown)}")
        try:
            return cls(
                point=str(document["point"]),
                action=str(document["action"]),
                after=int(document.get("after", 0)),
                count=(None if document.get("count", 1) is None
                       else int(document.get("count", 1))),
                op=document.get("op"),
                shard=(None if document.get("shard") is None
                       else int(document["shard"])),
                delay=float(document.get("delay", 0.0)),
                probability=float(document.get("probability", 1.0)),
                message=str(document.get("message", "")),
            )
        except KeyError as error:
            raise ReproError(f"fault is missing required field {error}") from None
        except (TypeError, ValueError) as error:
            raise ReproError(f"invalid fault field: {error}") from None


class FaultPlan:
    """A seeded collection of :class:`FaultRule` instances.

    Thread-safe: rules are matched and their counters advanced under
    one lock, so concurrent worker threads observe a single global
    ordering of hits — which is what makes ``after``/``count`` bounds
    deterministic under a deterministic workload.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), *, seed: int = 0) -> None:
        self._rules: List[FaultRule] = list(rules)
        self._seed = int(seed)
        self._rng = random.Random(self._seed)
        self._lock = threading.Lock()

    @classmethod
    def from_spec(
        cls, document: Union[Mapping[str, Any], Sequence[Any]]
    ) -> "FaultPlan":
        """Build a plan from a parsed JSON document.

        Accepts either ``{"seed": 0, "faults": [...]}`` or a bare list
        of fault objects (seed defaults to 0).
        """
        if isinstance(document, Mapping):
            seed = document.get("seed", 0)
            raw_rules = document.get("faults", [])
            unknown = set(document) - {"seed", "faults"}
            if unknown:
                raise ReproError(f"unknown fault plan fields: {sorted(unknown)}")
        elif isinstance(document, Sequence) and not isinstance(document, (str, bytes)):
            seed, raw_rules = 0, document
        else:
            raise ReproError("a fault plan must be a JSON object or list")
        if not isinstance(raw_rules, Sequence) or isinstance(raw_rules, (str, bytes)):
            raise ReproError("'faults' must be a list of fault objects")
        rules = [FaultRule.from_dict(rule) for rule in raw_rules]
        try:
            return cls(rules, seed=int(seed))
        except (TypeError, ValueError):
            raise ReproError("fault plan 'seed' must be an integer") from None

    @classmethod
    def from_text(cls, text: str) -> "FaultPlan":
        """Parse inline JSON, or read a path to a JSON file."""
        stripped = text.strip()
        if not stripped.startswith(("{", "[")):
            try:
                stripped = open(stripped, "r", encoding="utf-8").read()
            except OSError as error:
                raise ReproError(f"cannot read fault plan file: {error}") from None
        try:
            document = json.loads(stripped)
        except json.JSONDecodeError as error:
            raise ReproError(f"fault plan is not valid JSON: {error}") from None
        return cls.from_spec(document)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def rules(self) -> Tuple[FaultRule, ...]:
        return tuple(self._rules)

    def fire(
        self,
        point: str,
        *,
        op: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> Tuple[FaultRule, ...]:
        """Advance counters for ``point`` and return the rules that fire."""
        fired: List[FaultRule] = []
        with self._lock:
            for rule in self._rules:
                if not rule.matches(point, op, shard):
                    continue
                rule.hits += 1
                if rule.hits <= rule.after:
                    continue
                if rule.count is not None and rule.fired >= rule.count:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                fired.append(rule)
        return tuple(fired)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "seed": self._seed,
                "rules": [
                    {
                        "point": rule.point,
                        "action": rule.action,
                        "op": rule.op,
                        "shard": rule.shard,
                        "after": rule.after,
                        "count": rule.count,
                        "hits": rule.hits,
                        "fired": rule.fired,
                    }
                    for rule in self._rules
                ],
            }


_EMPTY: Tuple[FaultRule, ...] = ()
_ACTIVE: Optional[FaultPlan] = None
#: Whether the active plan came from ``REPRO_FAULT_PLAN`` rather than a
#: programmatic :func:`install` — env re-reads never clobber the latter.
_FROM_ENV: bool = False
#: Per-process shard index, set by fleet workers so ``shard``-scoped
#: rules only fire in the targeted worker.
_SHARD: Optional[int] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-globally (``None`` uninstalls)."""
    global _ACTIVE, _FROM_ENV
    _ACTIVE = plan
    _FROM_ENV = False


def uninstall() -> None:
    install(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def set_context(*, shard: Optional[int] = None) -> None:
    """Record this process's fleet shard index for ``shard`` selectors."""
    global _SHARD
    _SHARD = shard


def install_from_env() -> Optional[FaultPlan]:
    """Install the plan named by ``REPRO_FAULT_PLAN``, if set.

    Returns the active plan.  A plan installed programmatically with
    :func:`install` always wins over the ambient variable, and an
    unset/blank variable leaves any active plan untouched — so tests
    can install plans directly without the server clobbering them on
    start, even when the whole run executes under an outer
    ``REPRO_FAULT_PLAN`` (the CI enabled-but-empty configuration).
    Env-installed plans *are* re-read, which is what re-arms a fault
    plan in a freshly re-forked fleet worker.
    """
    global _ACTIVE, _FROM_ENV
    text = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if text and (_ACTIVE is None or _FROM_ENV):
        _ACTIVE = FaultPlan.from_text(text)
        _FROM_ENV = True
    return _ACTIVE


def fire(point: str, *, op: Optional[str] = None) -> Tuple[FaultRule, ...]:
    """Consult the active plan at a fault point (no-op when none is installed)."""
    plan = _ACTIVE
    if plan is None:
        return _EMPTY
    return plan.fire(point, op=op, shard=_SHARD)


def perform(rule: FaultRule) -> None:
    """Execute a fired rule's side effect in the calling thread.

    ``drop`` rules are intentionally inert here — dropping a connection
    is a transport-layer act the call site must perform itself.
    """
    if rule.action == "delay":
        time.sleep(rule.delay)
    elif rule.action == "error":
        raise ReproError(
            rule.message or f"injected fault at {rule.point}"
        )
    elif rule.action == "sqlite-error":
        raise sqlite3.OperationalError(
            rule.message or f"injected I/O error at {rule.point}"
        )
    elif rule.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def stats() -> Optional[Dict[str, Any]]:
    """Stats for the active plan, or ``None`` when faults are disabled."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.stats()
