"""Exception hierarchy for the query-view security library.

All library errors derive from :class:`ReproError` so that callers can
catch every library-specific failure with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "DomainError",
    "QueryError",
    "ParseError",
    "EvaluationError",
    "ProbabilityError",
    "SecurityAnalysisError",
    "KnowledgeError",
    "IntractableAnalysisError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(ReproError):
    """A relation schema or database schema is malformed or inconsistent."""


class DomainError(ReproError):
    """A finite domain is malformed (empty, wrong types, missing constants)."""


class QueryError(ReproError):
    """A query definition is malformed (unsafe variables, bad arity, ...)."""


class ParseError(QueryError):
    """A datalog-style query string could not be parsed."""


class EvaluationError(ReproError):
    """A query could not be evaluated over an instance."""


class ProbabilityError(ReproError):
    """A probability value or distribution is invalid."""


class SecurityAnalysisError(ReproError):
    """A query-view security analysis could not be carried out."""


class KnowledgeError(SecurityAnalysisError):
    """A prior-knowledge specification is invalid or unsupported."""


class IntractableAnalysisError(SecurityAnalysisError):
    """An exact analysis was requested but the search space is too large.

    The exact procedures in this library are intentionally faithful to the
    paper's exponential decision procedures; when the instance space or the
    valuation space exceeds the configured limits this error is raised so
    callers can fall back to sampling or to the practical algorithm.
    """

    def __init__(self, message: str, size_estimate: int | None = None):
        super().__init__(message)
        self.size_estimate = size_estimate
