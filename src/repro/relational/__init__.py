"""Relational substrate: domains, schemas, facts, instances and algebra.

This package implements the data model of Section 3.1 of the paper: a
finite domain ``D``, the tuple space ``tup(D)``, database instances
``inst(D)`` and a small relational algebra used by examples.
"""

from .algebra import (
    Relation,
    cartesian_product,
    difference,
    natural_join,
    project,
    relation_of,
    rename,
    select,
    union,
)
from .domain import AttributeDomain, Domain, union_domain
from .instance import (
    Instance,
    enumerate_instances,
    instance_space_size,
    satisfies_key_constraints,
)
from .schema import RelationSchema, Schema
from .tuples import Fact, facts_of_relation, tuple_space, tuple_space_size

__all__ = [
    "AttributeDomain",
    "Domain",
    "union_domain",
    "RelationSchema",
    "Schema",
    "Fact",
    "facts_of_relation",
    "tuple_space",
    "tuple_space_size",
    "Instance",
    "enumerate_instances",
    "instance_space_size",
    "satisfies_key_constraints",
    "Relation",
    "relation_of",
    "project",
    "select",
    "rename",
    "natural_join",
    "union",
    "difference",
    "cartesian_product",
]
