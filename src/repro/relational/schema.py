"""Relational schemas.

A :class:`RelationSchema` names a relation and its attributes, and
optionally restricts each attribute position to a per-attribute domain.
A :class:`Schema` is a collection of relation schemas plus the global
domain ``D`` used to enumerate ``tup(D)`` (Section 3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..exceptions import SchemaError
from .domain import Domain, union_domain

__all__ = ["RelationSchema", "Schema"]


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a single relation.

    Parameters
    ----------
    name:
        Relation name, e.g. ``"Employee"``.
    attributes:
        Ordered attribute names, e.g. ``("name", "department", "phone")``.
    attribute_domains:
        Optional mapping from attribute name to the :class:`Domain` of
        values it may take.  Attributes without an entry range over the
        schema's global domain.
    key:
        Optional tuple of attribute names forming a key (used by the
        prior-knowledge machinery, Corollary 5.3).
    """

    name: str
    attributes: Tuple[str, ...]
    attribute_domains: Mapping[str, Domain] = field(default_factory=dict)
    key: Optional[Tuple[str, ...]] = None

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        attribute_domains: Optional[Mapping[str, Domain]] = None,
        key: Optional[Sequence[str]] = None,
    ):
        if not name:
            raise SchemaError("relation name must be non-empty")
        attributes = tuple(attributes)
        if not attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        attribute_domains = dict(attribute_domains or {})
        for attr in attribute_domains:
            if attr not in attributes:
                raise SchemaError(
                    f"attribute domain given for unknown attribute {attr!r} of {name!r}"
                )
        if key is not None:
            key = tuple(key)
            for attr in key:
                if attr not in attributes:
                    raise SchemaError(f"key attribute {attr!r} not in relation {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "attribute_domains", attribute_domains)
        object.__setattr__(self, "key", key)

    @property
    def arity(self) -> int:
        """Number of attributes of the relation."""
        return len(self.attributes)

    def attribute_index(self, attribute: str) -> int:
        """Position of ``attribute`` in the relation (raises on unknown names)."""
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from exc

    def key_positions(self) -> Tuple[int, ...]:
        """Indices of the key attributes (empty tuple when no key is declared)."""
        if self.key is None:
            return ()
        return tuple(self.attribute_index(a) for a in self.key)

    def domain_for(self, attribute: str, default: Domain) -> Domain:
        """Domain of ``attribute``: its declared sub-domain or ``default``."""
        self.attribute_index(attribute)
        return self.attribute_domains.get(attribute, default)

    def position_domains(self, default: Domain) -> Tuple[Domain, ...]:
        """Domains of every attribute position, in order."""
        return tuple(self.domain_for(attr, default) for attr in self.attributes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(self.attributes)
        return f"RelationSchema({self.name}({attrs}))"


class Schema:
    """A database schema: a set of relation schemas and a global domain.

    The global domain is either supplied explicitly or derived as the
    union of all per-attribute domains.
    """

    def __init__(
        self,
        relations: Iterable[RelationSchema],
        domain: Optional[Domain] = None,
    ):
        self._relations: Dict[str, RelationSchema] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation name {relation.name!r}")
            self._relations[relation.name] = relation
        if not self._relations:
            raise SchemaError("a schema must contain at least one relation")
        if domain is None:
            attribute_domains = [
                d
                for rel in self._relations.values()
                for d in rel.attribute_domains.values()
            ]
            if not attribute_domains:
                raise SchemaError(
                    "no global domain supplied and no attribute domains to derive it from"
                )
            domain = union_domain(attribute_domains)
        self._domain = domain

    # -- access ---------------------------------------------------------------
    @property
    def domain(self) -> Domain:
        """The global domain ``D`` of the schema."""
        return self._domain

    @property
    def relations(self) -> Tuple[RelationSchema, ...]:
        """The relation schemas, in declaration order."""
        return tuple(self._relations.values())

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(f"schema has no relation named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    # -- derived schemas ------------------------------------------------------
    def with_domain(self, domain: Domain) -> "Schema":
        """A copy of this schema using a different global domain."""
        return Schema(self.relations, domain=domain)

    def with_relation(self, relation: RelationSchema) -> "Schema":
        """A copy of this schema with an additional relation."""
        return Schema(list(self.relations) + [relation], domain=self._domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rels = ", ".join(r.name for r in self.relations)
        return f"Schema([{rels}], |D|={len(self._domain)})"
