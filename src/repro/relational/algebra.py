"""A small relational algebra over materialised instances.

The paper's motivating examples describe views with relational-algebra
notation (``Π_{name,department}(Employee)``).  This module provides the
instance-level operators — projection, selection, natural join, rename,
union, difference — so that examples and tests can construct and check
view answers directly, independently of the conjunctive-query machinery
in :mod:`repro.cq` (which is what the security analysis itself uses).

Operators work on *relations* represented as a set of value-tuples
tagged with a named heading (:class:`Relation`), and on
:class:`~repro.relational.instance.Instance` objects via
:func:`relation_of`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Mapping, Sequence, Tuple

from ..exceptions import SchemaError
from .instance import Instance
from .schema import RelationSchema, Schema
from .tuples import Fact

__all__ = [
    "Relation",
    "relation_of",
    "project",
    "select",
    "rename",
    "natural_join",
    "union",
    "difference",
    "cartesian_product",
]


@dataclass(frozen=True)
class Relation:
    """A named heading plus a set of rows (value tuples)."""

    heading: Tuple[str, ...]
    rows: FrozenSet[Tuple[object, ...]]

    def __init__(self, heading: Sequence[str], rows: Iterable[Sequence[object]]):
        heading = tuple(heading)
        if len(set(heading)) != len(heading):
            raise SchemaError(f"duplicate attribute in heading {heading}")
        frozen_rows = frozenset(tuple(row) for row in rows)
        for row in frozen_rows:
            if len(row) != len(heading):
                raise SchemaError(
                    f"row {row} does not match heading {heading} (arity mismatch)"
                )
        object.__setattr__(self, "heading", heading)
        object.__setattr__(self, "rows", frozen_rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(sorted(self.rows, key=repr))

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self.rows

    def column(self, attribute: str) -> int:
        """Index of ``attribute`` in the heading."""
        try:
            return self.heading.index(attribute)
        except ValueError as exc:
            raise SchemaError(f"no attribute {attribute!r} in heading {self.heading}") from exc

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by attribute name (for reporting)."""
        return [dict(zip(self.heading, row)) for row in sorted(self.rows, key=repr)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.heading}, {len(self.rows)} rows)"


def relation_of(instance: Instance, schema: RelationSchema) -> Relation:
    """Extract one relation of an instance as a :class:`Relation`."""
    rows = [fact.values for fact in instance.relation(schema.name)]
    return Relation(schema.attributes, rows)


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Projection ``Π_attributes(relation)`` (set semantics, as in the paper)."""
    positions = [relation.column(a) for a in attributes]
    rows = {tuple(row[p] for p in positions) for row in relation.rows}
    return Relation(tuple(attributes), rows)


def select(
    relation: Relation, predicate: Callable[[Mapping[str, object]], bool]
) -> Relation:
    """Selection ``σ_predicate(relation)``; the predicate sees a row as a dict."""
    rows = [
        row
        for row in relation.rows
        if predicate(dict(zip(relation.heading, row)))
    ]
    return Relation(relation.heading, rows)


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """Rename attributes according to ``mapping`` (missing names are kept)."""
    new_heading = tuple(mapping.get(a, a) for a in relation.heading)
    return Relation(new_heading, relation.rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join on the shared attribute names."""
    shared = [a for a in left.heading if a in right.heading]
    left_shared = [left.column(a) for a in shared]
    right_shared = [right.column(a) for a in shared]
    right_rest = [i for i, a in enumerate(right.heading) if a not in shared]
    heading = left.heading + tuple(right.heading[i] for i in right_rest)

    index: dict[Tuple[object, ...], list[Tuple[object, ...]]] = {}
    for row in right.rows:
        key = tuple(row[i] for i in right_shared)
        index.setdefault(key, []).append(row)

    rows = []
    for row in left.rows:
        key = tuple(row[i] for i in left_shared)
        for other in index.get(key, ()):
            rows.append(row + tuple(other[i] for i in right_rest))
    return Relation(heading, rows)


def union(left: Relation, right: Relation) -> Relation:
    """Set union of two relations with identical headings."""
    if left.heading != right.heading:
        raise SchemaError("union requires identical headings")
    return Relation(left.heading, left.rows | right.rows)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference of two relations with identical headings."""
    if left.heading != right.heading:
        raise SchemaError("difference requires identical headings")
    return Relation(left.heading, left.rows - right.rows)


def cartesian_product(left: Relation, right: Relation) -> Relation:
    """Cartesian product; attribute names must not clash."""
    clash = set(left.heading) & set(right.heading)
    if clash:
        raise SchemaError(f"cartesian product with clashing attributes {sorted(clash)}")
    heading = left.heading + right.heading
    rows = [l + r for l in left.rows for r in right.rows]
    return Relation(heading, rows)


def instance_from_relation(schema: Schema, relation_name: str, relation: Relation) -> Instance:
    """Materialise a :class:`Relation` back into an :class:`Instance`."""
    rel_schema = schema.relation(relation_name)
    if relation.heading != rel_schema.attributes:
        raise SchemaError(
            f"heading {relation.heading} does not match schema of {relation_name!r}"
        )
    return Instance(Fact(relation_name, row) for row in relation.rows)
