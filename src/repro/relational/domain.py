"""Finite domains of constants.

The paper's security model is defined over a *finite* domain ``D`` that
contains every value that may occur in any attribute of any relation
(Section 3.1).  :class:`Domain` is an immutable, ordered collection of
hashable constants with a few convenience constructors.

Attributes may also be typed: :class:`AttributeDomain` restricts an
attribute position to a subset of the global domain (e.g. the set of
valid disease names), which keeps ``tup(D)`` small in examples and
benchmarks while remaining faithful to the model (the global domain is
the union of the attribute domains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from ..exceptions import DomainError

__all__ = ["Domain", "AttributeDomain", "union_domain"]


@dataclass(frozen=True)
class Domain:
    """An immutable finite domain of constants.

    Parameters
    ----------
    values:
        The constants of the domain.  Duplicates are removed; the original
        insertion order of first occurrences is preserved so results are
        deterministic across runs.
    name:
        Optional human-readable name (used in reports).
    """

    values: Tuple[object, ...]
    name: str = "D"

    def __init__(self, values: Iterable[object], name: str = "D"):
        seen = []
        seen_set = set()
        for value in values:
            if value not in seen_set:
                seen.append(value)
                seen_set.add(value)
        if not seen:
            raise DomainError("a domain must contain at least one constant")
        object.__setattr__(self, "values", tuple(seen))
        object.__setattr__(self, "name", name)

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[object]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: object) -> bool:
        return value in set(self.values)

    # -- constructors --------------------------------------------------------
    @classmethod
    def of(cls, *values: object, name: str = "D") -> "Domain":
        """Build a domain from positional constants: ``Domain.of('a', 'b')``."""
        return cls(values, name=name)

    @classmethod
    def integers(cls, n: int, start: int = 0, name: str = "D") -> "Domain":
        """A domain of ``n`` consecutive integers starting at ``start``."""
        if n <= 0:
            raise DomainError("integer domain size must be positive")
        return cls(range(start, start + n), name=name)

    @classmethod
    def symbols(cls, n: int, prefix: str = "c", name: str = "D") -> "Domain":
        """A domain of ``n`` symbolic constants ``c0, c1, ...``."""
        if n <= 0:
            raise DomainError("symbolic domain size must be positive")
        return cls((f"{prefix}{i}" for i in range(n)), name=name)

    # -- operations ----------------------------------------------------------
    def extend(self, extra: Iterable[object]) -> "Domain":
        """Return a new domain containing ``self``'s constants plus ``extra``."""
        return Domain(list(self.values) + list(extra), name=self.name)

    def restrict(self, keep: Iterable[object]) -> "Domain":
        """Return a new domain with only the constants in ``keep`` (preserving order)."""
        keep_set = set(keep)
        kept = [v for v in self.values if v in keep_set]
        if not kept:
            raise DomainError("restriction produced an empty domain")
        return Domain(kept, name=self.name)

    def index_of(self, value: object) -> int:
        """Position of ``value`` in the domain ordering (raises if absent)."""
        try:
            return self.values.index(value)
        except ValueError as exc:
            raise DomainError(f"constant {value!r} is not in domain {self.name}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shown = ", ".join(repr(v) for v in self.values[:6])
        suffix = ", ..." if len(self.values) > 6 else ""
        return f"Domain({self.name}: {{{shown}{suffix}}}, size={len(self.values)})"


@dataclass(frozen=True)
class AttributeDomain:
    """A named attribute together with the sub-domain of values it may take."""

    attribute: str
    domain: Domain

    def __iter__(self) -> Iterator[object]:
        return iter(self.domain)

    def __len__(self) -> int:
        return len(self.domain)


def union_domain(domains: Sequence[Domain], name: str = "D") -> Domain:
    """The union of several domains, preserving first-seen order."""
    values: list[object] = []
    for domain in domains:
        values.extend(domain.values)
    return Domain(values, name=name)
