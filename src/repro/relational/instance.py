"""Database instances and the instance space ``inst(D)``.

An :class:`Instance` is an immutable set of :class:`~repro.relational.tuples.Fact`
objects — exactly the paper's notion of a database instance (any subset
of ``tup(D)``).  :func:`enumerate_instances` enumerates ``inst(D)``, the
powerset of the tuple space, which is the sample space of the
probabilistic model; because it has size ``2^|tup(D)|`` callers should
bound the tuple space first (see
:class:`~repro.exceptions.IntractableAnalysisError`).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import IntractableAnalysisError
from ..obs.counters import StatCounters
from .domain import Domain
from .schema import Schema
from .tuples import Fact, tuple_space

__all__ = [
    "Instance",
    "INDEX_STATS",
    "enumerate_instances",
    "instance_space_size",
    "satisfies_key_constraints",
]

#: Default guard on the size of an exhaustively enumerated instance space.
MAX_ENUMERABLE_TUPLES = 24

#: Process-wide counters for the lazy per-instance hash indexes (monotone;
#: surfaced through :func:`repro.cq.compiled.evaluation_stats`).  A
#: :class:`~repro.obs.counters.StatCounters`: bumped through ``.bump()``
#: so counts survive concurrent evaluation on worker threads.
INDEX_STATS = StatCounters(("builds", "reuses", "patched"))


class Instance:
    """An immutable database instance (a set of facts)."""

    __slots__ = ("_facts", "_by_relation", "_indexes", "_sqlite_mirror")

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: FrozenSet[Fact] = frozenset(facts)
        self._by_relation: dict[str, FrozenSet[Fact]] = {}
        self._indexes: dict[
            Tuple[str, Tuple[int, ...]], Dict[Tuple[object, ...], Tuple[Fact, ...]]
        ] = {}
        # Lazily-populated sqlite mirror used by the sql evaluation
        # engine (repro.cq.sql.store_for); a cache like _indexes, but
        # holding a connection — which cannot cross process boundaries,
        # hence the custom pickling below.
        self._sqlite_mirror = None

    def __getstate__(self) -> FrozenSet[Fact]:
        # Only the facts travel (e.g. into criticality process-pool
        # workers); caches and the sqlite mirror are rebuilt on demand.
        return self._facts

    def __setstate__(self, facts: FrozenSet[Fact]) -> None:
        self.__init__(facts)

    # -- construction ---------------------------------------------------------
    @classmethod
    def of(cls, *facts: Fact) -> "Instance":
        """Build an instance from positional facts."""
        return cls(facts)

    @classmethod
    def empty(cls) -> "Instance":
        """The empty instance."""
        return cls()

    # -- set protocol ---------------------------------------------------------
    @property
    def facts(self) -> FrozenSet[Fact]:
        """The facts of the instance as a frozenset."""
        return self._facts

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(sorted(self._facts))

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._facts == other._facts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._facts)

    def __le__(self, other: "Instance") -> bool:
        return self._facts <= other._facts

    # -- operations -----------------------------------------------------------
    def relation(self, name: str) -> FrozenSet[Fact]:
        """All facts of one relation (cached per instance)."""
        cached = self._by_relation.get(name)
        if cached is None:
            cached = frozenset(f for f in self._facts if f.relation == name)
            self._by_relation[name] = cached
        return cached

    def index(
        self, relation: str, positions: Sequence[int]
    ) -> Mapping[Tuple[object, ...], Tuple[Fact, ...]]:
        """Hash index of one relation keyed by the values at ``positions``.

        Instances are immutable, so the index is computed lazily once and
        cached for the lifetime of the instance; every compiled query
        plan probing the same ``(relation, positions)`` pair shares it
        (a benign double build may happen under concurrent first use).
        Facts whose arity does not cover every indexed position are
        omitted — they can never match an atom probing those positions.
        """
        positions = tuple(positions)
        key = (relation, positions)
        cached = self._indexes.get(key)
        if cached is not None:
            INDEX_STATS.bump("reuses")
            return cached
        buckets: Dict[Tuple[object, ...], List[Fact]] = {}
        top = max(positions) if positions else -1
        for fact in self.relation(relation):
            values = fact.values
            if top >= len(values):
                continue
            buckets.setdefault(
                tuple(values[p] for p in positions), []
            ).append(fact)
        index = {k: tuple(v) for k, v in buckets.items()}
        self._indexes[key] = index
        INDEX_STATS.bump("builds")
        return index

    def add(self, *facts: Fact) -> "Instance":
        """A new instance with the given facts added.

        A single-fact delta inherits the parent's already-built caches:
        per-relation frozensets and hash indexes are *patched* around
        the one changed fact instead of being rebuilt lazily from
        scratch by the derived instance (counted as ``patched`` in
        :data:`INDEX_STATS`).
        """
        child = Instance(self._facts | set(facts))
        if len(facts) == 1:
            if facts[0] in self._facts:
                self._share_caches(child)
            else:
                self._inherit_caches(child, facts[0], added=True)
        return child

    def remove(self, *facts: Fact) -> "Instance":
        """A new instance with the given facts removed (missing facts are
        ignored).  Single-fact deltas patch the parent's caches forward;
        see :meth:`add`."""
        child = Instance(self._facts - set(facts))
        if len(facts) == 1:
            if facts[0] in self._facts:
                self._inherit_caches(child, facts[0], added=False)
            else:
                self._share_caches(child)
        return child

    def _share_caches(self, child: "Instance") -> None:
        """Alias the caches into a child holding the *same* fact set.

        Safe because both instances are immutable views of one fact
        set: lazy fills through either alias stay correct for both.
        """
        child._by_relation = self._by_relation
        child._indexes = self._indexes

    def _inherit_caches(self, child: "Instance", fact: Fact, added: bool) -> None:
        """Patch this instance's built caches into a single-fact child.

        Caches of relations the fact does not touch are shared
        verbatim; the touched relation's entries are shallow-copied
        with only the one affected index bucket adjusted.  Each index
        carried forward counts as one ``patched`` in
        :data:`INDEX_STATS`.
        """
        relation, values = fact.relation, fact.values
        for name, cached in self._by_relation.items():
            if name != relation:
                child._by_relation[name] = cached
            elif added:
                child._by_relation[name] = cached | {fact}
            else:
                child._by_relation[name] = cached - {fact}
        patched = 0
        for key, index in self._indexes.items():
            name, positions = key
            top = max(positions) if positions else -1
            if name != relation or top >= len(values):
                # The fact cannot appear in this index: share verbatim.
                child._indexes[key] = index
            else:
                bucket_key = tuple(values[p] for p in positions)
                updated = dict(index)
                bucket = updated.get(bucket_key, ())
                if added:
                    updated[bucket_key] = bucket + (fact,)
                else:
                    remaining = tuple(f for f in bucket if f != fact)
                    if remaining:
                        updated[bucket_key] = remaining
                    else:
                        updated.pop(bucket_key, None)
                child._indexes[key] = updated
            patched += 1
        if patched:
            INDEX_STATS.bump("patched", patched)

    def union(self, other: "Instance") -> "Instance":
        """Union of two instances."""
        return Instance(self._facts | other._facts)

    def intersection(self, other: "Instance") -> "Instance":
        """Intersection of two instances."""
        return Instance(self._facts & other._facts)

    def difference(self, other: "Instance") -> "Instance":
        """Facts of this instance that are not in ``other``."""
        return Instance(self._facts - other._facts)

    def restrict_to(self, facts: Iterable[Fact]) -> "Instance":
        """The sub-instance containing only the given facts."""
        return Instance(self._facts & set(facts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(f) for f in sorted(self._facts))
        return f"Instance({{{inner}}})"


def instance_space_size(schema: Schema, domain: Optional[Domain] = None) -> int:
    """Number of instances in ``inst(D)`` (``2^|tup(D)|``)."""
    from .tuples import tuple_space_size

    return 2 ** tuple_space_size(schema, domain)


def enumerate_instances(
    schema: Schema,
    domain: Optional[Domain] = None,
    over_facts: Optional[Sequence[Fact]] = None,
    max_tuples: int = MAX_ENUMERABLE_TUPLES,
) -> Iterator[Instance]:
    """Enumerate ``inst(D)``: every subset of the tuple space.

    Parameters
    ----------
    schema, domain:
        Define the tuple space when ``over_facts`` is not given.
    over_facts:
        Enumerate subsets of this explicit list of facts instead of the
        whole tuple space (useful when a query only depends on a small
        set of facts).
    max_tuples:
        Guard against accidental exponential blow-up; raise
        :class:`IntractableAnalysisError` when the tuple space is larger.
    """
    facts: List[Fact] = (
        list(over_facts) if over_facts is not None else tuple_space(schema, domain)
    )
    if len(facts) > max_tuples:
        raise IntractableAnalysisError(
            f"cannot enumerate 2^{len(facts)} instances; "
            f"restrict the domain or use sampling",
            size_estimate=2 ** len(facts),
        )
    for r in range(len(facts) + 1):
        for combo in itertools.combinations(facts, r):
            yield Instance(combo)


def satisfies_key_constraints(schema: Schema, instance: Instance) -> bool:
    """Check whether an instance satisfies every declared key constraint."""
    for relation in schema:
        positions = relation.key_positions()
        if not positions:
            continue
        seen: dict[Tuple[object, ...], Fact] = {}
        for fact in instance.relation(relation.name):
            key_value = fact.project(positions)
            other = seen.get(key_value)
            if other is not None and other != fact:
                return False
            seen[key_value] = fact
    return True
